//! # Swarm — a scalable striped-log storage system
//!
//! A full reproduction of *"The Swarm Scalable Storage System"* (Hartman,
//! Murdock, Spalink — ICDCS 1999): simple storage servers aggregated into
//! a high-performance, fault-tolerant store by client-side striped logs
//! with rotated parity, plus the stackable services (cleaner, ARU,
//! logical disk, caching, compression, encryption) and the Sting local
//! file system the paper builds on top.
//!
//! This crate is the facade: it re-exports every subsystem and provides
//! [`local::LocalCluster`], a one-liner for spinning up an in-process
//! cluster (the moral equivalent of the paper's switched-Ethernet lab).
//!
//! ```
//! use swarm::local::LocalCluster;
//! use swarm_types::ServiceId;
//!
//! let cluster = LocalCluster::new(4)?;
//! let log = cluster.create_log(1)?;
//! let addr = log.append_block(ServiceId::new(1), b"", b"hello swarm")?;
//! log.flush()?;
//!
//! // Kill a server: the block stays readable via parity reconstruction.
//! cluster.set_down(0, true);
//! assert_eq!(log.read(addr)?, b"hello swarm");
//! # Ok::<(), swarm_types::SwarmError>(())
//! ```
//!
//! See `README.md` for the architecture tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record of
//! every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use swarm_cleaner as cleaner;
pub use swarm_log as log;
pub use swarm_net as net;
pub use swarm_server as server;
pub use swarm_services as services;
pub use swarm_sim as sim;
pub use swarm_types as types;

pub use sting;

/// In-process cluster harness used by examples, tests, and quick starts.
pub mod local {
    use std::sync::Arc;

    use swarm_log::{Log, LogConfig};
    use swarm_net::{MemTransport, ServerStats};
    use swarm_server::{MemStore, StorageServer};
    use swarm_types::{ClientId, Result, ServerId};

    /// An in-process Swarm cluster: `n` memory-backed storage servers
    /// behind a fault-injectable transport.
    pub struct LocalCluster {
        transport: Arc<MemTransport>,
        servers: Vec<Arc<StorageServer<MemStore>>>,
    }

    impl std::fmt::Debug for LocalCluster {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("LocalCluster")
                .field("servers", &self.servers.len())
                .finish()
        }
    }

    impl LocalCluster {
        /// Spins up `n` storage servers.
        ///
        /// # Errors
        ///
        /// Currently infallible; returns `Result` so call sites read like
        /// the TCP variant's.
        pub fn new(n: u32) -> Result<LocalCluster> {
            let transport = Arc::new(MemTransport::new());
            let mut servers = Vec::new();
            for i in 0..n {
                let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
                transport.register(ServerId::new(i), srv.clone());
                servers.push(srv);
            }
            Ok(LocalCluster { transport, servers })
        }

        /// The shared transport (pass to [`Log`]s and recovery).
        pub fn transport(&self) -> Arc<MemTransport> {
            self.transport.clone()
        }

        /// Number of servers.
        pub fn len(&self) -> usize {
            self.servers.len()
        }

        /// Always false — a cluster has at least one server in practice.
        pub fn is_empty(&self) -> bool {
            self.servers.is_empty()
        }

        /// A default [`LogConfig`] striping across every server.
        ///
        /// # Errors
        ///
        /// Returns an error for clusters of fewer than 2 servers (no
        /// room for parity).
        pub fn log_config(&self, client: u32) -> Result<LogConfig> {
            LogConfig::new(
                ClientId::new(client),
                (0..self.servers.len() as u32).map(ServerId::new).collect(),
            )
        }

        /// Creates a fresh log for `client` striped across every server.
        ///
        /// # Errors
        ///
        /// Propagates configuration and transport errors.
        pub fn create_log(&self, client: u32) -> Result<Log> {
            Log::create(self.transport.clone(), self.log_config(client)?)
        }

        /// Marks server `i` down (or back up).
        pub fn set_down(&self, i: u32, down: bool) {
            self.transport.set_down(ServerId::new(i), down);
        }

        /// Statistics for server `i`.
        pub fn server_stats(&self, i: u32) -> ServerStats {
            self.servers[i as usize].stats()
        }
    }
}
