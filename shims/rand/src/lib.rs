//! API-compatible subset of the `rand` crate (no external deps).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the small slice of `rand` 0.8 the codebase uses is provided here:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, `gen_bool`, and `fill_bytes`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast, well
//! distributed, and deterministic for a given seed (the only properties the
//! test suite and simulator rely on). It is NOT the same stream as the real
//! `rand::rngs::StdRng` (ChaCha12), so seeds produce different sequences
//! than upstream — fine for this workspace, which never pins exact values.

#![forbid(unsafe_code)]

/// A type that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete random number generators.
pub mod rngs {
    /// The workspace's standard RNG (xoshiro256**; see crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut StdRng) -> Self {
                rng.next_u64_impl() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw(rng: &mut StdRng) -> Self {
        ((rng.next_u64_impl() as u128) << 64) | rng.next_u64_impl() as u128
    }
}

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64_impl() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64_impl() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw(rng: &mut StdRng) -> Self {
        (rng.next_u64_impl() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges samplable by [`Rng::gen_range`]; `T` is the element type, so the
/// compiler can infer integer literal types from the call site the same way
/// upstream `rand` does.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::draw(rng) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = u128::draw(rng) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t>::draw(rng) * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Random-value methods available on any supported generator.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T;

    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64_impl().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let f = rng.gen_range(0.2..2.0);
            assert!((0.2..2.0).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        // 37 zero bytes after filling would be astronomically unlikely.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
