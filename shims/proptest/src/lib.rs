//! API-compatible subset of the `proptest` crate (no external deps).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the property-testing surface the test suite uses is provided here:
//! the [`Strategy`] trait with `prop_map`/`boxed`, [`any`], [`Just`],
//! ranges and tuples as strategies, `collection::vec`, `sample::Index`,
//! weighted [`prop_oneof!`], and the [`proptest!`] macro with
//! `#![proptest_config(..)]`.
//!
//! Differences from upstream, deliberate for this workspace:
//!
//! * **No shrinking.** A failing case prints its fully generated inputs
//!   (everything is `Debug`) and the deterministic per-case seed instead.
//! * **Deterministic by default.** Case `i` of test `t` derives its RNG
//!   from `hash(module_path::t, i)`, so failures reproduce exactly across
//!   runs and machines. Set `PROPTEST_SEED` to explore other streams.
//! * String "regex" strategies support only the `".*"` pattern (arbitrary
//!   Unicode strings), which is all the suite uses.

#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng};

/// The RNG handed to strategies during generation.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Creates a generator for one test case from a 64-bit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(rand::rngs::StdRng::seed_from_u64(seed))
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: zero bound");
        self.0.gen_range(0..bound)
    }

    /// Uniform draw over the full `u64` range.
    pub fn bits(&mut self) -> u64 {
        self.0.gen()
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.bits() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bits() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Bias toward ASCII (common case for codecs) but cover all planes.
        if rng.below(4) > 0 {
            (rng.below(0x7f - 0x20) as u8 + 0x20) as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical arbitrary-value strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `".*"` (and only `".*"`): arbitrary Unicode strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        assert_eq!(
            *self, ".*",
            "only the \".*\" string strategy is supported by the proptest shim"
        );
        let len = rng.below(48) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+ ))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `elem` and a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "vec size range is empty");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (subset of `proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a collection of length `len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.bits())
        }
    }
}

/// A weighted union of type-erased strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Creates a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof: zero total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Derives the deterministic seed for case `case` of test `name`,
/// honouring a `PROPTEST_SEED` environment override.
pub fn case_seed(name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case number.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    h.wrapping_add(base)
        .wrapping_add((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// An explicit test-case failure, usable as `return Err(TestCaseError::
/// fail(..))` inside a property body (which implicitly returns
/// `Result<(), TestCaseError>`, as in upstream proptest).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace alias matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a property (plain `assert!` semantics here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let full_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let seed = $crate::case_seed(full_name, case);
                    let mut rng = $crate::TestRng::from_seed(seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let repr = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg),+
                    );
                    // The body implicitly returns Result<(), TestCaseError>
                    // (as in upstream proptest), so `return Ok(())` and
                    // `Err(TestCaseError::fail(..))` work inside it.
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body;
                                Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(err)) => {
                            panic!(
                                "proptest {full_name}: case {case}/{} failed (seed {seed}): {err}\ninputs:\n{repr}",
                                config.cases,
                            );
                        }
                        Err(panic) => {
                            eprintln!(
                                "proptest {full_name}: case {case}/{} failed (seed {seed})\ninputs:\n{repr}",
                                config.cases,
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        let strat = prop::collection::vec(3u8..9, 2..5);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| (3..9).contains(&b)));
        }
    }

    #[test]
    fn oneof_honours_weights() {
        let mut rng = crate::TestRng::from_seed(2);
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000)
            .filter(|_| crate::Strategy::generate(&strat, &mut rng))
            .count();
        assert!(trues > 800, "trues = {trues}");
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = crate::TestRng::from_seed(3);
        let strat = (0u32..10, any::<bool>()).prop_map(|(n, b)| if b { n + 100 } else { n });
        for _ in 0..100 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!(v < 10 || (100..110).contains(&v));
        }
    }

    #[test]
    fn index_resolves_in_bounds() {
        let mut rng = crate::TestRng::from_seed(4);
        for _ in 0..100 {
            let idx = crate::Strategy::generate(&any::<prop::sample::Index>(), &mut rng);
            assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(crate::case_seed("a::b", 3), crate::case_seed("a::b", 3));
        assert_ne!(crate::case_seed("a::b", 3), crate::case_seed("a::b", 4));
        assert_ne!(crate::case_seed("a::b", 0), crate::case_seed("a::c", 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn the_macro_itself_works(xs in prop::collection::vec(any::<u8>(), 0..16), n in 1u8..5) {
            prop_assert!(xs.len() < 16);
            prop_assert_ne!(n, 0);
            prop_assert_eq!(n as usize * xs.len() / n as usize, xs.len());
        }
    }
}
