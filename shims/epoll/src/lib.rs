//! In-tree stand-in for the `epoll`/`mio` crates: a minimal safe wrapper
//! over Linux `epoll(7)` and `eventfd(2)`.
//!
//! The workspace forbids unsafe code everywhere business logic lives, but
//! readiness-driven I/O needs a handful of raw syscalls. This shim
//! confines them: the `extern "C"` declarations bind symbols that `std`
//! already links from libc, every fd is held in an [`OwnedFd`], and the
//! public surface ([`Epoll`], [`Events`], [`Waker`]) is entirely safe.
//!
//! Only level-triggered mode is exposed — the reactor in `swarm-net`
//! re-arms interest explicitly, which keeps the state machines auditable.
//!
//! On non-Linux targets the same API compiles but every constructor
//! returns `ErrorKind::Unsupported`; callers fall back to the blocking
//! stack (see `swarm_net::reactor::Runtime::default_for_platform`).

#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::time::Duration;

#[cfg(target_os = "linux")]
pub use std::os::fd::RawFd;
#[cfg(target_os = "linux")]
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
#[cfg(not(target_os = "linux"))]
/// Raw file descriptor alias so the API compiles off-Linux.
pub type RawFd = i32;

/// Readiness interest to register a descriptor with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };

    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification returned by [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Descriptor is readable (includes peer hang-up, so a final `read`
    /// observing EOF is never missed).
    pub readable: bool,
    /// Descriptor is writable.
    pub writable: bool,
    /// Error or hang-up condition (`EPOLLERR`/`EPOLLHUP`): the owner
    /// should read to collect the error and close.
    pub error: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::*;

    // epoll_event is packed on x86_64 (kernel ABI quirk); matching libc's
    // definition exactly is what keeps this wrapper correct.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub(crate) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub(crate) const EPOLLIN: u32 = 0x001;
    pub(crate) const EPOLLOUT: u32 = 0x004;
    pub(crate) const EPOLLERR: u32 = 0x008;
    pub(crate) const EPOLLHUP: u32 = 0x010;
    pub(crate) const EPOLLRDHUP: u32 = 0x2000;

    pub(crate) const EPOLL_CTL_ADD: i32 = 1;
    pub(crate) const EPOLL_CTL_DEL: i32 = 2;
    pub(crate) const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: i32 = 7;

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub(crate) fn create() -> io::Result<OwnedFd> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    pub(crate) fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
    }

    pub(crate) fn wait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub(crate) fn new_eventfd() -> io::Result<OwnedFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    pub(crate) fn eventfd_write(fd: RawFd) -> io::Result<()> {
        let one = 1u64.to_ne_bytes();
        let n = unsafe { write(fd, one.as_ptr(), one.len()) };
        // EAGAIN means the counter is already non-zero: the wake is
        // pending, which is all the caller needs.
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::WouldBlock {
                return Err(err);
            }
        }
        Ok(())
    }

    pub(crate) fn eventfd_drain(fd: RawFd) {
        let mut buf = [0u8; 8];
        // Non-blocking: one read clears the counter entirely.
        let _ = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    }

    pub(crate) fn raise_nofile(min: u64) -> io::Result<u64> {
        let mut lim = Rlimit { cur: 0, max: 0 };
        cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
        if lim.cur >= min {
            return Ok(lim.cur);
        }
        let want = min.min(lim.max);
        let new = Rlimit {
            cur: want,
            max: lim.max,
        };
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &new) })?;
        Ok(want)
    }
}

/// An epoll instance (level-triggered).
#[derive(Debug)]
pub struct Epoll {
    #[cfg(target_os = "linux")]
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a new epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure; `Unsupported` off-Linux.
    pub fn new() -> io::Result<Epoll> {
        #[cfg(target_os = "linux")]
        {
            Ok(Epoll { fd: sys::create()? })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll is linux-only",
            ))
        }
    }

    #[cfg(target_os = "linux")]
    fn events_bits(interest: Interest) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if interest.readable {
            bits |= sys::EPOLLIN;
        }
        if interest.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    /// Registers `fd` with the given `token` and `interest`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. the fd is already registered).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::ctl(
                self.fd.as_raw_fd(),
                sys::EPOLL_CTL_ADD,
                fd,
                Self::events_bits(interest),
                token,
            )
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (fd, token, interest);
            unreachable!("Epoll cannot be constructed off-linux")
        }
    }

    /// Changes the interest set of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::ctl(
                self.fd.as_raw_fd(),
                sys::EPOLL_CTL_MOD,
                fd,
                Self::events_bits(interest),
                token,
            )
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (fd, token, interest);
            unreachable!("Epoll cannot be constructed off-linux")
        }
    }

    /// Deregisters `fd`. Closing the descriptor also deregisters it, so
    /// this is only needed when the fd outlives its registration.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::ctl(self.fd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, 0, 0)
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = fd;
            unreachable!("Epoll cannot be constructed off-linux")
        }
    }

    /// Blocks until at least one registered descriptor is ready or
    /// `timeout` elapses (`None` = block indefinitely), filling `events`.
    /// Returns the number of events. EINTR is retried internally.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        #[cfg(target_os = "linux")]
        {
            let timeout_ms = match timeout {
                None => -1,
                // Round up so a 100µs deadline does not spin at timeout 0.
                Some(d) => {
                    i32::try_from(d.as_millis().max(1).min(i32::MAX as u128)).unwrap_or(i32::MAX)
                }
            };
            let n = sys::wait(self.fd.as_raw_fd(), &mut events.buf, timeout_ms)?;
            events.len = n;
            Ok(n)
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (events, timeout);
            unreachable!("Epoll cannot be constructed off-linux")
        }
    }
}

/// Reusable buffer of readiness notifications for [`Epoll::wait`].
pub struct Events {
    #[cfg(target_os = "linux")]
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Events").field("len", &self.len).finish()
    }
}

impl Events {
    /// A buffer able to hold `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            #[cfg(target_os = "linux")]
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterates over the events delivered by the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        #[cfg(target_os = "linux")]
        {
            self.buf[..self.len].iter().map(|raw| {
                // Copy out of the (possibly packed) struct before use.
                let bits = raw.events;
                let token = raw.data;
                Event {
                    token,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                }
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            std::iter::empty()
        }
    }
}

/// Wakes an [`Epoll::wait`] from another thread (an `eventfd` registered
/// read-only under the caller's token).
#[derive(Debug)]
pub struct Waker {
    #[cfg(target_os = "linux")]
    fd: OwnedFd,
}

impl Waker {
    /// Creates a waker and registers it with `epoll` under `token`.
    ///
    /// # Errors
    ///
    /// Propagates `eventfd`/`epoll_ctl` failure; `Unsupported` off-Linux.
    pub fn new(epoll: &Epoll, token: u64) -> io::Result<Waker> {
        #[cfg(target_os = "linux")]
        {
            let fd = sys::new_eventfd()?;
            epoll.add(fd.as_raw_fd(), token, Interest::READABLE)?;
            Ok(Waker { fd })
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (epoll, token);
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "eventfd is linux-only",
            ))
        }
    }

    /// Makes the next (or current) `wait` return immediately. Safe to call
    /// from any thread; coalesces.
    ///
    /// # Errors
    ///
    /// Propagates the `write(2)` failure (never `EAGAIN`, which coalesces).
    pub fn wake(&self) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::eventfd_write(self.fd.as_raw_fd())
        }
        #[cfg(not(target_os = "linux"))]
        {
            unreachable!("Waker cannot be constructed off-linux")
        }
    }

    /// Clears the pending wake after its event is observed.
    pub fn drain(&self) {
        #[cfg(target_os = "linux")]
        {
            sys::eventfd_drain(self.fd.as_raw_fd());
        }
    }
}

/// Raises the process soft `RLIMIT_NOFILE` to at least `min` (clamped to
/// the hard limit). Returns the resulting soft limit. Used by
/// many-connection stress tests; a no-op when the limit is already high
/// enough.
///
/// # Errors
///
/// Propagates `getrlimit`/`setrlimit` failure; `Unsupported` off-Linux.
pub fn raise_nofile_soft_limit(min: u64) -> io::Result<u64> {
    #[cfg(target_os = "linux")]
    {
        sys::raise_nofile(min)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = min;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "rlimit adjustment is linux-only",
        ))
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let ep = Epoll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&ep, 0).unwrap());
        let w2 = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w2.wake().unwrap();
        });
        let mut events = Events::with_capacity(4);
        let n = ep.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token, 0);
        waker.drain();
        t.join().unwrap();
    }

    #[test]
    fn timeout_expires_with_no_events() {
        let ep = Epoll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let n = ep
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn socket_readability_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 7, Interest::READABLE).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Events::with_capacity(4);
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable);

        let mut buf = [0u8; 4];
        (&server).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // Interest can be switched to writable.
        ep.modify(server.as_raw_fd(), 7, Interest::WRITABLE)
            .unwrap();
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().next().unwrap().writable);
        ep.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn hangup_reports_readable_and_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 1, Interest::READABLE).unwrap();
        drop(client);
        let mut events = Events::with_capacity(4);
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().next().unwrap();
        assert!(ev.readable, "EOF must surface as readable");
    }

    #[test]
    fn nofile_limit_can_be_raised() {
        let got = raise_nofile_soft_limit(64).unwrap();
        assert!(got >= 64);
    }
}
