//! In-tree SIMD kernel shim: a safe wrapper over the x86 byte-shuffle
//! (`pshufb`) GF(2^8) multiply-fold.
//!
//! The workspace forbids unsafe code everywhere business logic lives,
//! but the Reed–Solomon encode kernel is bottlenecked on per-byte field
//! multiplies, and the classic fix — split each byte into nibbles and
//! look both halves up in 16-entry product tables with one vector
//! shuffle each — only exists as `core::arch` intrinsics. This shim
//! confines the `unsafe` exactly like `shims/epoll` confines syscalls:
//! feature-gated `#[target_feature]` functions guarded by runtime
//! detection, with a fully safe public surface.
//!
//! [`gf8_mul_fold`] folds `c · src` into `dst` given the two nibble
//! product tables for `c` (`lo[n] = c·n`, `hi[n] = c·(n<<4)`; the caller
//! owns the field arithmetic) and returns how many leading bytes it
//! handled — `0` on targets or CPUs without the shuffle unit, in which
//! case the caller runs its portable kernel instead. The tail shorter
//! than one vector is always left to the caller.

#![deny(unsafe_op_in_unsafe_fn)]

/// Folds `c · src[i]` into `dst[i]` for a prefix of `src`, using the
/// nibble product tables `lo` and `hi` (GF(2^8) multiplication is
/// GF(2)-linear, so `c·s = c·(s & 0x0f) ⊕ c·(s & 0xf0)`). Returns the
/// number of bytes processed: a multiple of the vector width, `0` when
/// no suitable SIMD unit exists. Never touches `dst` beyond
/// `min(dst.len(), src.len())`.
pub fn gf8_mul_fold(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) -> usize {
    let n = dst.len().min(src.len());
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 feature was just detected at runtime.
            return unsafe { x86::mul_fold_avx2(&mut dst[..n], &src[..n], lo, hi) };
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            // SAFETY: the SSSE3 feature was just detected at runtime.
            return unsafe { x86::mul_fold_ssse3(&mut dst[..n], &src[..n], lo, hi) };
        }
    }
    let _ = (n, lo, hi);
    0
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_fold_avx2(dst: &mut [u8], src: &[u8], lo: &[u8; 16], hi: &[u8; 16]) -> usize {
        let n = src.len() / 32 * 32;
        // SAFETY: unaligned 16-byte loads from 16-byte arrays.
        let (lo_t, hi_t) = unsafe {
            (
                _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr().cast())),
                _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr().cast())),
            )
        };
        let nib = _mm256_set1_epi8(0x0f);
        let mut off = 0usize;
        while off < n {
            // SAFETY: `off + 32 <= n <= src.len() <= dst.len()`; loads and
            // stores are unaligned.
            unsafe {
                let s = _mm256_loadu_si256(src.as_ptr().add(off).cast());
                let d_ptr = dst.as_mut_ptr().add(off).cast();
                let d = _mm256_loadu_si256(d_ptr as *const __m256i);
                let lo_part = _mm256_shuffle_epi8(lo_t, _mm256_and_si256(s, nib));
                let hi_part =
                    _mm256_shuffle_epi8(hi_t, _mm256_and_si256(_mm256_srli_epi16(s, 4), nib));
                let prod = _mm256_xor_si256(lo_part, hi_part);
                _mm256_storeu_si256(d_ptr, _mm256_xor_si256(d, prod));
            }
            off += 32;
        }
        n
    }

    /// # Safety
    ///
    /// The caller must have verified SSSE3 support at runtime.
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_fold_ssse3(
        dst: &mut [u8],
        src: &[u8],
        lo: &[u8; 16],
        hi: &[u8; 16],
    ) -> usize {
        let n = src.len() / 16 * 16;
        // SAFETY: unaligned 16-byte loads from 16-byte arrays.
        let (lo_t, hi_t) = unsafe {
            (
                _mm_loadu_si128(lo.as_ptr().cast()),
                _mm_loadu_si128(hi.as_ptr().cast()),
            )
        };
        let nib = _mm_set1_epi8(0x0f);
        let mut off = 0usize;
        while off < n {
            // SAFETY: `off + 16 <= n <= src.len() <= dst.len()`; loads and
            // stores are unaligned.
            unsafe {
                let s = _mm_loadu_si128(src.as_ptr().add(off).cast());
                let d_ptr = dst.as_mut_ptr().add(off).cast();
                let d = _mm_loadu_si128(d_ptr as *const __m128i);
                let lo_part = _mm_shuffle_epi8(lo_t, _mm_and_si128(s, nib));
                let hi_part = _mm_shuffle_epi8(hi_t, _mm_and_si128(_mm_srli_epi16(s, 4), nib));
                let prod = _mm_xor_si128(lo_part, hi_part);
                _mm_storeu_si128(d_ptr, _mm_xor_si128(d, prod));
            }
            off += 16;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A tiny independent GF(2^8) multiply (poly 0x11d) so the shim's
    // tests don't depend on the caller's tables.
    fn gf_mul(mut a: u8, mut b: u8) -> u8 {
        let mut p = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            let hi = a & 0x80;
            a <<= 1;
            if hi != 0 {
                a ^= 0x1d;
            }
            b >>= 1;
        }
        p
    }

    #[test]
    fn folds_match_scalar_for_every_coefficient_class() {
        for c in [0u8, 1, 2, 0x1d, 0x8e, 0xff] {
            let mut lo = [0u8; 16];
            let mut hi = [0u8; 16];
            for n in 0..16u8 {
                lo[n as usize] = gf_mul(c, n);
                hi[n as usize] = gf_mul(c, n << 4);
            }
            for len in [0usize, 15, 16, 17, 31, 32, 33, 257, 4096] {
                let src: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(31)).collect();
                let mut dst: Vec<u8> = (0..len).map(|i| (i as u8) ^ 0x5a).collect();
                let want: Vec<u8> = dst
                    .iter()
                    .zip(&src)
                    .map(|(&d, &s)| d ^ gf_mul(c, s))
                    .collect();
                let done = gf8_mul_fold(&mut dst, &src, &lo, &hi);
                assert!(
                    done <= len && done.is_multiple_of(16),
                    "done={done} len={len}"
                );
                assert_eq!(&dst[..done], &want[..done], "c={c:#x} len={len}");
                assert_eq!(
                    &dst[done..],
                    &{
                        let tail: Vec<u8> = (done..len).map(|i| (i as u8) ^ 0x5a).collect();
                        tail
                    }[..],
                    "tail must be untouched"
                );
            }
        }
    }
}
