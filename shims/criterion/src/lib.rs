//! API-compatible subset of the `criterion` crate (no external deps).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the benchmarking surface `swarm-bench` uses is provided here: `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! This is a measurement harness, not a statistics suite: each benchmark
//! gets a short warm-up, then `sample_size` timed samples of an adaptively
//! chosen batch of iterations. It reports mean ± spread per iteration and
//! derived throughput. Good enough to compare configurations in-tree;
//! numbers are not comparable with real criterion output.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (identity function with
/// an optimization barrier).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How much work one iteration processes, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batching policy for [`Bencher::iter_batched`]. The shim runs one input
/// per measured call regardless of variant.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to set up.
    SmallInput,
    /// Inputs are expensive to set up.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to every benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last measurement.
    result: Option<Stats>,
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    mean: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one sample lasts ~1ms.
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        while start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as u64 / warmup_iters.max(1);
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 100_000);

        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed() / batch as u32);
        }
        self.record(&samples);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed());
        }
        self.record(&samples);
    }

    /// Upstream's deprecated spelling of per-iteration setup; equivalent
    /// to `iter_batched` with `BatchSize::PerIteration` here.
    pub fn iter_with_setup<I, O, S, R>(&mut self, setup: S, routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iter_batched(setup, routine, BatchSize::PerIteration);
    }

    fn record(&mut self, samples: &[Duration]) {
        let total: Duration = samples.iter().sum();
        self.result = Some(Stats {
            mean: total / samples.len().max(1) as u32,
            min: samples.iter().min().copied().unwrap_or_default(),
            max: samples.iter().max().copied().unwrap_or_default(),
        });
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        run_one(&name.into(), self.sample_size, None, f);
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, self.throughput, f);
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, tput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(s) => {
            let rate = tput.map(|t| describe_rate(t, s.mean)).unwrap_or_default();
            println!(
                "bench {name:<52} {:>12} (min {:?}, max {:?}){rate}",
                format!("{:?}", s.mean),
                s.min,
                s.max,
            );
        }
        None => println!("bench {name:<52} (no measurement recorded)"),
    }
}

fn describe_rate(t: Throughput, mean: Duration) -> String {
    let secs = mean.as_secs_f64().max(1e-12);
    match t {
        Throughput::Bytes(n) => format!("  {:>9.1} MiB/s", n as f64 / secs / (1 << 20) as f64),
        Throughput::Elements(n) => format!("  {:>11.0} elem/s", n as f64 / secs),
    }
}

/// Declares a benchmark group entry point, in either the simple or the
/// `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(64));
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(
        name = shim_group;
        config = Criterion::default().sample_size(3);
        targets = quick
    );
    criterion_group!(simple_group, quick);

    #[test]
    fn groups_run_to_completion() {
        shim_group();
        simple_group();
    }
}
