//! API-compatible subset of the `crossbeam` crate, backed by
//! `std::sync::mpsc`.
//!
//! The build environment for this workspace has no access to crates.io;
//! only the `crossbeam::channel` APIs the codebase uses are provided.

#![forbid(unsafe_code)]

/// Multi-producer channels with bounded capacity (subset of
/// `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    /// The sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Receives a value, blocking until one is available.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Receives a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterates over received values until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(usize::MAX >> 3);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_after_receiver_drop_errors() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(tx.send(7).is_err());
        }

        #[test]
        fn bounded_blocks_then_drains() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }
    }
}
