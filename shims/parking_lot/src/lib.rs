//! API-compatible subset of the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `parking_lot` APIs the codebase uses are provided here.
//! Semantics match `parking_lot` where it matters to callers:
//!
//! * `Mutex::lock` / `RwLock::read` / `RwLock::write` return guards
//!   directly (no `Result`); poisoning is ignored, matching `parking_lot`'s
//!   poison-free behaviour.
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive (poison-free `lock()` signature).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (poison-free `read()`/`write()` signatures).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses. Returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        result.timed_out()
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = shared.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*s2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*shared;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
