//! ACL enforcement end-to-end (§2.3.2): byte-range protection on stored
//! fragments, membership changes, and the paper's "add a client with the
//! same privileges" scenario — over the full server/protocol path.

use swarm_net::{Request, Response, StoreRange, Transport};
use swarm_types::{Aid, ClientId, FragmentId, SwarmError};

use swarm::local::LocalCluster;

fn call(
    cluster: &LocalCluster,
    server: u32,
    client: u32,
    req: Request,
) -> Result<Response, SwarmError> {
    let transport = cluster.transport();
    let mut conn = transport.connect(swarm_types::ServerId::new(server), ClientId::new(client))?;
    conn.call(&req)?.into_result()
}

fn must(resp: Result<Response, SwarmError>) -> Response {
    resp.expect("operation should succeed")
}

#[test]
fn byte_range_protection_through_the_wire() {
    let cluster = LocalCluster::new(1).unwrap();
    let owner = 1u32;
    let stranger = 2u32;

    let aid = match must(call(
        &cluster,
        0,
        owner,
        Request::AclCreate {
            members: vec![ClientId::new(owner)],
        },
    )) {
        Response::AclCreated(aid) => aid,
        r => panic!("{r:?}"),
    };

    let fid = FragmentId::new(ClientId::new(owner), 0);
    must(call(
        &cluster,
        0,
        owner,
        Request::Store {
            fid,
            marked: false,
            ranges: vec![StoreRange {
                offset: 0,
                len: 6,
                aid,
            }],
            data: b"secretPUBLIC".into(),
        },
    ));

    // Stranger: protected range denied, public range allowed.
    let denied = call(
        &cluster,
        0,
        stranger,
        Request::Read {
            fid,
            offset: 0,
            len: 6,
        },
    );
    assert!(
        matches!(denied, Err(SwarmError::AccessDenied { .. })),
        "{denied:?}"
    );
    let public = must(call(
        &cluster,
        0,
        stranger,
        Request::Read {
            fid,
            offset: 6,
            len: 6,
        },
    ));
    assert_eq!(public, Response::Data(b"PUBLIC".into()));

    // Owner reads everything.
    let all = must(call(
        &cluster,
        0,
        owner,
        Request::Read {
            fid,
            offset: 0,
            len: 12,
        },
    ));
    assert_eq!(all, Response::Data(b"secretPUBLIC".into()));
}

#[test]
fn adding_a_member_opens_all_existing_data() {
    // §2.3.2: "This makes it easy to add a client to the system with the
    // same privileges as existing clients; once the client has been added
    // to the appropriate ACLs, all data protected by those ACLs will be
    // accessible."
    let cluster = LocalCluster::new(1).unwrap();
    let aid = match must(call(
        &cluster,
        0,
        1,
        Request::AclCreate {
            members: vec![ClientId::new(1)],
        },
    )) {
        Response::AclCreated(aid) => aid,
        r => panic!("{r:?}"),
    };
    // Two protected fragments.
    for seq in 0..2u64 {
        must(call(
            &cluster,
            0,
            1,
            Request::Store {
                fid: FragmentId::new(ClientId::new(1), seq),
                marked: false,
                ranges: vec![StoreRange {
                    offset: 0,
                    len: 4,
                    aid,
                }],
                data: format!("data{seq}").into_bytes().into(),
            },
        ));
    }
    let newcomer = 9u32;
    for seq in 0..2u64 {
        assert!(call(
            &cluster,
            0,
            newcomer,
            Request::Read {
                fid: FragmentId::new(ClientId::new(1), seq),
                offset: 0,
                len: 4,
            },
        )
        .is_err());
    }
    must(call(
        &cluster,
        0,
        1,
        Request::AclModify {
            aid,
            add: vec![ClientId::new(newcomer)],
            remove: vec![],
        },
    ));
    for seq in 0..2u64 {
        must(call(
            &cluster,
            0,
            newcomer,
            Request::Read {
                fid: FragmentId::new(ClientId::new(1), seq),
                offset: 0,
                len: 4,
            },
        ));
    }
}

#[test]
fn locate_respects_acls() {
    // Reconstruction's Locate returns fragment prefixes; protected
    // prefixes must not leak to non-members.
    let cluster = LocalCluster::new(1).unwrap();
    let aid = match must(call(
        &cluster,
        0,
        1,
        Request::AclCreate {
            members: vec![ClientId::new(1)],
        },
    )) {
        Response::AclCreated(aid) => aid,
        r => panic!("{r:?}"),
    };
    let fid = FragmentId::new(ClientId::new(1), 7);
    must(call(
        &cluster,
        0,
        1,
        Request::Store {
            fid,
            marked: false,
            ranges: vec![StoreRange {
                offset: 0,
                len: 100,
                aid,
            }],
            data: vec![0xaa; 100].into(),
        },
    ));
    let leak = call(
        &cluster,
        0,
        2,
        Request::Locate {
            fid,
            header_len: 64,
        },
    );
    assert!(
        matches!(leak, Err(SwarmError::AccessDenied { .. })),
        "{leak:?}"
    );
    // The owner can still locate.
    must(call(
        &cluster,
        0,
        1,
        Request::Locate {
            fid,
            header_len: 64,
        },
    ));
}

#[test]
fn world_acl_and_unprotected_stores_stay_open() {
    let cluster = LocalCluster::new(1).unwrap();
    let fid = FragmentId::new(ClientId::new(1), 0);
    must(call(
        &cluster,
        0,
        1,
        Request::Store {
            fid,
            marked: false,
            ranges: vec![StoreRange {
                offset: 0,
                len: 4,
                aid: Aid::WORLD,
            }],
            data: b"open".into(),
        },
    ));
    must(call(
        &cluster,
        0,
        99,
        Request::Read {
            fid,
            offset: 0,
            len: 4,
        },
    ));
}
