//! Multiple independent clients sharing one cluster — the paper's core
//! scalability scenario: separate logs, no coordination, concurrent
//! writers, per-client cleaning, per-client recovery.

use std::sync::Arc;

use parking_lot::Mutex;
use sting::{StingConfig, StingFs, StingService};
use swarm::local::LocalCluster;
use swarm_cleaner::{CleanPolicy, Cleaner};
use swarm_log::{recover, Log, LogConfig};
use swarm_services::{Service, ServiceStack};
use swarm_types::{ClientId, ServerId, ServiceId};

const STING_SVC: ServiceId = ServiceId::new(2);

fn config(client: u32, servers: u32) -> LogConfig {
    LogConfig::new(
        ClientId::new(client),
        (0..servers).map(ServerId::new).collect(),
    )
    .unwrap()
    .fragment_size(32 * 1024)
}

#[test]
fn four_clients_write_concurrently_without_interference() {
    let cluster = Arc::new(LocalCluster::new(4).unwrap());
    let mut threads = Vec::new();
    for c in 1..=4u32 {
        let cluster = cluster.clone();
        threads.push(std::thread::spawn(move || {
            let log = Arc::new(Log::create(cluster.transport(), config(c, 4)).unwrap());
            let fs = StingFs::format(log, StingConfig::default()).unwrap();
            for i in 0..25 {
                fs.write_file(
                    &format!("/c{c}-f{i}"),
                    0,
                    &vec![(c * 10 + i % 7) as u8; 3000],
                )
                .unwrap();
            }
            fs.unmount().unwrap();
            // Verify own data.
            for i in 0..25 {
                assert_eq!(
                    fs.read_to_end(&format!("/c{c}-f{i}")).unwrap(),
                    vec![(c * 10 + i % 7) as u8; 3000]
                );
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    // Each client recovers only its own namespace.
    for c in 1..=4u32 {
        let (log, replay) = recover(cluster.transport(), config(c, 4), &[STING_SVC]).unwrap();
        let fs = StingFs::bare(Arc::new(log), StingConfig::default());
        let mut svc = StingService::new(fs.clone());
        if let Some(d) = replay.checkpoint_data(STING_SVC) {
            svc.restore_checkpoint(d).unwrap();
        }
        for e in replay.records_for(STING_SVC) {
            svc.replay(e).unwrap();
        }
        let names: Vec<String> = fs
            .readdir("/")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names.len(), 25, "client {c} sees exactly its own files");
        assert!(
            names.iter().all(|n| n.starts_with(&format!("c{c}-"))),
            "client {c} namespace leak: {names:?}"
        );
    }
}

#[test]
fn one_client_cleans_while_another_writes() {
    let cluster = Arc::new(LocalCluster::new(3).unwrap());

    // Client 1: build churn worth cleaning.
    let log1 = Arc::new(Log::create(cluster.transport(), config(1, 3)).unwrap());
    let fs1 = StingFs::format(log1.clone(), StingConfig::default()).unwrap();
    for i in 0..20 {
        fs1.write_file(&format!("/f{i}"), 0, &vec![i as u8; 8000])
            .unwrap();
    }
    for i in 0..20 {
        if i % 2 == 0 {
            fs1.unlink(&format!("/f{i}")).unwrap();
        }
    }
    fs1.unmount().unwrap();

    // Client 2 writes concurrently with client 1's cleaning pass.
    let cluster2 = cluster.clone();
    let writer = std::thread::spawn(move || {
        let log2 = Arc::new(Log::create(cluster2.transport(), config(2, 3)).unwrap());
        let fs2 = StingFs::format(log2, StingConfig::default()).unwrap();
        for i in 0..40 {
            fs2.write_file(&format!("/w{i}"), 0, &vec![0xbb; 4000])
                .unwrap();
        }
        fs2.unmount().unwrap();
        for i in 0..40 {
            assert_eq!(
                fs2.read_to_end(&format!("/w{i}")).unwrap(),
                vec![0xbb; 4000]
            );
        }
    });

    let mut stack = ServiceStack::new();
    let svc: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(StingService::new(fs1.clone())));
    stack.register(svc).unwrap();
    let cleaner = Cleaner::new(log1, Arc::new(stack), CleanPolicy::CostBenefit);
    let stats = cleaner.clean_pass(50).unwrap();
    writer.join().unwrap();

    assert!(stats.stripes_cleaned > 0, "{stats:?}");
    // Client 1's surviving files are intact after concurrent activity.
    for i in (1..20).step_by(2) {
        assert_eq!(
            fs1.read_to_end(&format!("/f{i}")).unwrap(),
            vec![i as u8; 8000]
        );
    }
}

#[test]
fn clients_can_use_disjoint_stripe_groups() {
    // §2.1.2: "clients can stripe across disjoint stripe groups,
    // minimizing contention for servers".
    let cluster = LocalCluster::new(4).unwrap();
    let group_a = LogConfig::new(ClientId::new(1), vec![ServerId::new(0), ServerId::new(1)])
        .unwrap()
        .fragment_size(8 * 1024);
    let group_b = LogConfig::new(ClientId::new(2), vec![ServerId::new(2), ServerId::new(3)])
        .unwrap()
        .fragment_size(8 * 1024);
    let log_a = Log::create(cluster.transport(), group_a).unwrap();
    let log_b = Log::create(cluster.transport(), group_b).unwrap();
    let svc = ServiceId::new(1);
    for i in 0..30u32 {
        log_a.append_block(svc, b"", &vec![1u8; 2000]).unwrap();
        log_b.append_block(svc, b"", &vec![2u8; 2000]).unwrap();
        let _ = i;
    }
    log_a.flush().unwrap();
    log_b.flush().unwrap();
    // Fragments landed only in each client's own group.
    assert!(cluster.server_stats(0).fragments > 0);
    assert!(cluster.server_stats(1).fragments > 0);
    assert!(cluster.server_stats(2).fragments > 0);
    assert!(cluster.server_stats(3).fragments > 0);
    // Cross-check: client A never touched servers 2,3 and vice versa —
    // all of A's stores went to 0,1.
    let a_frags = cluster.server_stats(0).stores + cluster.server_stats(1).stores;
    let b_frags = cluster.server_stats(2).stores + cluster.server_stats(3).stores;
    assert!(a_frags > 0 && b_frags > 0);
    // A failure in group B cannot hurt client A at all.
    cluster.set_down(2, true);
    cluster.set_down(3, true);
    // (Any A address still reads; write more too.)
    let addr = log_a.append_block(svc, b"", b"group A unaffected").unwrap();
    log_a.flush().unwrap();
    assert_eq!(log_a.read(addr).unwrap(), b"group A unaffected");
}
