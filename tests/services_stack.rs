//! Multiple services stacked on one shared log — the paper's §2.2
//! architecture: Sting, a logical disk, and an ARU service coexist on a
//! single client's log, recover together through the ServiceStack, and
//! tolerate server failures together.

use std::sync::Arc;

use parking_lot::Mutex;
use sting::{StingConfig, StingFs, StingService};
use swarm::local::LocalCluster;
use swarm_log::{recover, Log};
use swarm_services::{
    AruService, AruServiceAdapter, ChecksumTransform, CompressTransform, EncryptTransform,
    LogicalDisk, LogicalDiskService, Service, ServiceStack, TransformStack,
};
use swarm_types::ServiceId;

const STING_SVC: ServiceId = ServiceId::new(2);
const DISK_SVC: ServiceId = ServiceId::new(3);
const ARU_SVC: ServiceId = ServiceId::new(5);

#[test]
fn three_services_share_one_log_and_recover_together() {
    let cluster = LocalCluster::new(3).unwrap();

    // --- Before the crash: all three services do work -------------------
    {
        let log =
            Arc::new(Log::create(cluster.transport(), cluster.log_config(1).unwrap()).unwrap());
        let fs = StingFs::format(
            log.clone(),
            StingConfig {
                service: STING_SVC,
                ..StingConfig::default()
            },
        )
        .unwrap();
        let disk = Arc::new(LogicalDisk::new(DISK_SVC, log.clone()));
        let aru = AruService::new(ARU_SVC, log.clone());

        fs.write_file("/shared-log.txt", 0, b"sting data").unwrap();
        disk.write(42, b"logical block forty-two").unwrap();
        disk.checkpoint().unwrap();
        disk.write(43, b"written after disk ckpt").unwrap();

        let unit = aru.begin().unwrap();
        aru.append(unit, b"transfer: debit account A").unwrap();
        aru.append(unit, b"transfer: credit account B").unwrap();
        aru.commit(unit).unwrap();
        let doomed = aru.begin().unwrap();
        aru.append(doomed, b"half-done work").unwrap();

        fs.checkpoint().unwrap();
        log.flush().unwrap();
        // Crash: nothing cleanly shut down.
    }

    // --- Recovery through one stack --------------------------------------
    let (log, replay) = recover(
        cluster.transport(),
        cluster.log_config(1).unwrap(),
        &[STING_SVC, DISK_SVC, ARU_SVC],
    )
    .unwrap();
    let log = Arc::new(log);
    let fs = StingFs::bare(
        log.clone(),
        StingConfig {
            service: STING_SVC,
            ..StingConfig::default()
        },
    );
    let disk = Arc::new(LogicalDisk::new(DISK_SVC, log.clone()));
    let aru = AruService::new(ARU_SVC, log.clone());

    let mut stack = ServiceStack::new();
    let s1: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(StingService::new(fs.clone())));
    let s2: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(LogicalDiskService::new(disk.clone())));
    let s3: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(AruServiceAdapter::new(aru.clone())));
    stack.register(s1).unwrap();
    stack.register(s2).unwrap();
    stack.register(s3).unwrap();
    stack.recover(&replay).unwrap();

    // Sting state.
    assert_eq!(fs.read_to_end("/shared-log.txt").unwrap(), b"sting data");
    // Logical disk state, across its own checkpoint.
    assert_eq!(disk.read(42).unwrap().unwrap(), b"logical block forty-two");
    assert_eq!(disk.read(43).unwrap().unwrap(), b"written after disk ckpt");
    // ARU: committed unit survives, uncommitted one is gone.
    let committed = aru.committed_units();
    assert_eq!(committed.len(), 1);
    assert_eq!(
        committed[0].1,
        vec![
            b"transfer: debit account A".to_vec(),
            b"transfer: credit account B".to_vec()
        ]
    );
}

#[test]
fn transformed_blocks_on_a_logical_disk() {
    // Compression + encryption + checksums layered under a logical disk:
    // the paper's "pick and choose the exact services needed".
    let cluster = LocalCluster::new(2).unwrap();
    let log = Arc::new(Log::create(cluster.transport(), cluster.log_config(1).unwrap()).unwrap());
    let disk = LogicalDisk::new(DISK_SVC, log.clone());
    let stack = TransformStack::new()
        .push(CompressTransform)
        .push(EncryptTransform::new(b"cluster secret"))
        .push(ChecksumTransform);

    let plaintext = b"confidential but very compressible: aaaaaaaaaaaaaaaaaaaaaaaa".to_vec();
    let encoded = stack.encode(plaintext.clone(), 42);
    disk.write(42, &encoded).unwrap();
    disk.flush().unwrap();

    let fetched = disk.read(42).unwrap().unwrap();
    assert_eq!(stack.decode(fetched.to_vec(), 42).unwrap(), plaintext);
    // The stored bytes are actually ciphertext.
    assert_ne!(fetched, plaintext);
    assert!(!fetched
        .windows(b"confidential".len())
        .any(|w| w == b"confidential"));
}

#[test]
fn services_survive_server_failure_together() {
    let cluster = LocalCluster::new(4).unwrap();
    let log = Arc::new(Log::create(cluster.transport(), cluster.log_config(1).unwrap()).unwrap());
    let fs = StingFs::format(
        log.clone(),
        StingConfig {
            service: STING_SVC,
            ..StingConfig::default()
        },
    )
    .unwrap();
    let disk = LogicalDisk::new(DISK_SVC, log.clone());

    fs.write_file("/a", 0, &vec![1u8; 20_000]).unwrap();
    for lba in 0..10 {
        disk.write(lba, &vec![lba as u8; 2_000]).unwrap();
    }
    log.flush().unwrap();

    for down in 0..4u32 {
        cluster.set_down(down, true);
        assert_eq!(fs.read_to_end("/a").unwrap(), vec![1u8; 20_000]);
        for lba in 0..10 {
            assert_eq!(disk.read(lba).unwrap().unwrap(), vec![lba as u8; 2_000]);
        }
        cluster.set_down(down, false);
    }
}
