//! The full space lifecycle of §2.1.4: servers with fixed fragment
//! slots fill up, writes fail with OutOfSpace, the cleaner (after demand
//! checkpoints) reclaims dead stripes, preallocation reserves room, and
//! writing resumes.

use std::sync::Arc;

use parking_lot::Mutex;
use swarm_cleaner::{CleanPolicy, Cleaner};
use swarm_log::{Log, LogConfig, ReplayEntry};
use swarm_net::MemTransport;
use swarm_server::{MemStore, StorageServer};
use swarm_services::{Service, ServiceStack};
use swarm_types::{BlockAddr, ClientId, Result, ServerId, ServiceId, SwarmError};

const SVC: ServiceId = ServiceId::new(1);

/// Minimal block-owning service so the cleaner can move live blocks.
#[derive(Default)]
struct Owner {
    blocks: std::collections::HashMap<Vec<u8>, BlockAddr>,
}

impl Service for Owner {
    fn id(&self) -> ServiceId {
        SVC
    }
    fn name(&self) -> &str {
        "owner"
    }
    fn restore_checkpoint(&mut self, _d: &[u8]) -> Result<()> {
        Ok(())
    }
    fn replay(&mut self, _e: &ReplayEntry) -> Result<()> {
        Ok(())
    }
    fn block_moved(&mut self, old: BlockAddr, new: BlockAddr, create: &[u8]) -> Result<()> {
        if let Some(slot) = self.blocks.get_mut(create) {
            if *slot == old {
                *slot = new;
            }
        }
        Ok(())
    }
    fn write_checkpoint(&mut self, log: &Log) -> Result<()> {
        log.checkpoint(SVC, b"owner-ckpt")?;
        Ok(())
    }
}

#[test]
fn fill_fail_clean_resume() {
    // 3 servers × 12 slots each; 2 KiB fragments.
    let transport = Arc::new(MemTransport::new());
    for i in 0..3 {
        let srv = StorageServer::new(ServerId::new(i), MemStore::with_capacity(12)).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    let config = LogConfig::new(ClientId::new(1), (0..3).map(ServerId::new).collect())
        .unwrap()
        .fragment_size(2048)
        .cache_fragments(0);
    let log = Arc::new(Log::create(transport.clone(), config).unwrap());
    let owner = Arc::new(Mutex::new(Owner::default()));
    let mut stack = ServiceStack::new();
    let svc_dyn: Arc<Mutex<dyn Service>> = owner.clone();
    stack.register(svc_dyn).unwrap();
    let stack = Arc::new(stack);

    // Fill until the servers run out of slots. Delete every block as we
    // go so everything is garbage (but the stripes still hold slots).
    let mut wrote = 0u32;
    let out_of_space = loop {
        let tag = vec![wrote as u8, (wrote >> 8) as u8];
        match log.append_block(SVC, &tag, &[wrote as u8; 1500]) {
            Ok(addr) => {
                log.delete_block(SVC, addr).unwrap();
                match log.flush() {
                    Ok(()) => {}
                    Err(e) => break e,
                }
                wrote += 1;
                if wrote > 100 {
                    panic!("capacity never exhausted");
                }
            }
            Err(e) => break e,
        }
    };
    assert!(
        matches!(out_of_space, SwarmError::OutOfSpace(_)),
        "{out_of_space}"
    );
    assert!(
        wrote >= 8,
        "should have written a fair amount first: {wrote}"
    );

    // The cleaner demands checkpoints (nothing ever checkpointed) and
    // reclaims the dead stripes.
    //
    // NOTE: the checkpoint itself needs free slots — the cleaner's
    // demand-checkpoint can only work if the system wasn't driven 100%
    // full. The write pool also still owes the servers the stripe whose
    // store hit OutOfSpace (failed stores are re-queued, not abandoned),
    // so the reserve must cover that stripe too. Real deployments keep
    // reserve slots; we emulate by manually releasing the two oldest
    // (fully dead) stripes first.
    for seq in 0..6u64 {
        let fid = swarm_types::FragmentId::new(ClientId::new(1), seq);
        log.delete_fragment(fid).unwrap();
    }
    let cleaner = Cleaner::new(log.clone(), stack, CleanPolicy::Greedy);
    let stats = cleaner.clean_pass(100).unwrap();
    assert!(stats.forced_checkpoints >= 1, "{stats:?}");
    assert!(stats.stripes_cleaned >= 2, "{stats:?}");

    // Preallocate the next stripe, then writing works again.
    log.preallocate_stripes(1).unwrap();
    let addr = log.append_block(SVC, b"fresh", b"after cleaning").unwrap();
    log.flush().unwrap();
    assert_eq!(log.read(addr).unwrap(), b"after cleaning");
}

#[test]
fn preallocation_reserves_slots_against_competitors() {
    // One server with 4 slots shared by two clients. Client 1
    // preallocates a stripe; client 2 then cannot squat on those slots.
    let transport = Arc::new(MemTransport::new());
    for i in 0..2 {
        let srv = StorageServer::new(ServerId::new(i), MemStore::with_capacity(2)).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    let config = |c: u32| {
        LogConfig::new(ClientId::new(c), (0..2).map(ServerId::new).collect())
            .unwrap()
            .fragment_size(2048)
    };
    let log1 = Log::create(transport.clone(), config(1)).unwrap();
    let log2 = Log::create(transport.clone(), config(2)).unwrap();

    log1.preallocate_stripes(1).unwrap(); // takes 1 slot on each server

    // Client 2 can fill the remaining slot per server…
    log2.append_block(SVC, b"", &[2u8; 1000]).unwrap();
    log2.flush().unwrap();
    // …but a second stripe must fail: the reserved slots are not for it.
    log2.append_block(SVC, b"", &[2u8; 1000]).unwrap();
    let err = log2.flush().unwrap_err();
    assert!(matches!(err, SwarmError::OutOfSpace(_)), "{err}");

    // Client 1's reservation still guarantees its write.
    log1.append_block(SVC, b"", &[1u8; 1000]).unwrap();
    log1.flush().unwrap();
}
