//! Replays the Figure 5 MAB op stream against the *real* Sting file
//! system (not the performance model), then crashes and recovers —
//! keeping the modelled workload and the implementation honest with each
//! other.

use std::sync::Arc;

use sting::{StingConfig, StingFs, StingService};
use swarm::local::LocalCluster;
use swarm_log::{recover, Log};
use swarm_sim::{mab_workload, FsOp, MabConfig};
use swarm_types::ServiceId;

const STING_SVC: ServiceId = ServiceId::new(2);

#[test]
fn mab_runs_on_real_sting_and_survives_a_crash() {
    let cluster = LocalCluster::new(2).unwrap();
    // A smaller MAB keeps the test quick while covering all five phases.
    let cfg = MabConfig {
        dirs: 8,
        files: 20,
        mean_file_size: 6 * 1024,
        ..MabConfig::default()
    };
    let ops = mab_workload(&cfg);

    let mut files: Vec<(String, u64)> = Vec::new();
    {
        let log =
            Arc::new(Log::create(cluster.transport(), cluster.log_config(1).unwrap()).unwrap());
        let fs = StingFs::format(log, StingConfig::default()).unwrap();
        for op in &ops {
            match op {
                FsOp::Mkdir(p) => {
                    fs.mkdir(p).unwrap();
                }
                FsOp::WriteFile { path, bytes } => {
                    // Deterministic content derived from the path.
                    let byte = path.bytes().fold(0u8, |a, b| a.wrapping_add(b));
                    fs.write_file(path, 0, &vec![byte; *bytes as usize])
                        .unwrap();
                    files.retain(|(p, _)| p != path);
                    files.push((path.clone(), *bytes));
                }
                FsOp::Stat(p) => {
                    fs.stat(p).unwrap();
                }
                FsOp::ReadFile { path, bytes } => {
                    assert_eq!(fs.read_to_end(path).unwrap().len() as u64, *bytes);
                }
                FsOp::Compute { .. } => {}
            }
        }
        fs.unmount().unwrap(); // the benchmark's unmount
    }

    // Crash + recover: the whole MAB result set must be intact.
    let (log, replay) = recover(
        cluster.transport(),
        cluster.log_config(1).unwrap(),
        &[STING_SVC],
    )
    .unwrap();
    let fs = StingFs::bare(Arc::new(log), StingConfig::default());
    let mut svc = StingService::new(fs.clone());
    {
        use swarm_services::Service;
        if let Some(d) = replay.checkpoint_data(STING_SVC) {
            svc.restore_checkpoint(d).unwrap();
        }
        for e in replay.records_for(STING_SVC) {
            svc.replay(e).unwrap();
        }
    }
    for (path, bytes) in &files {
        let byte = path.bytes().fold(0u8, |a, b| a.wrapping_add(b));
        let got = fs.read_to_end(path).unwrap();
        assert_eq!(got.len() as u64, *bytes, "{path}");
        assert!(got.iter().all(|&b| b == byte), "{path} content");
    }
    // Sources + objects + linked binary all present.
    assert!(files.iter().any(|(p, _)| p.ends_with(".c")));
    assert!(files.iter().any(|(p, _)| p.ends_with(".o")));
    assert!(files.iter().any(|(p, _)| p.ends_with("a.out")));
}
