//! Metrics-snapshot sanity over a full write/recover cycle: the global
//! registry must show store activity, the Metrics RPC must serve a
//! parseable snapshot, and counters must move monotonically.
//!
//! The registry is process-global and tests run in parallel, so every
//! assertion here compares before/after *deltas*, never absolute values.

use std::sync::Arc;

use swarm_log::{recover, Log, LogConfig};
use swarm_net::{MemTransport, Request, Response, Transport};
use swarm_server::{MemStore, StorageServer};
use swarm_types::{ClientId, ServerId, ServiceId};

fn cluster(n: u32) -> Arc<MemTransport> {
    let transport = Arc::new(MemTransport::new());
    for i in 0..n {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    transport
}

fn config(servers: u32) -> LogConfig {
    LogConfig::new(ClientId::new(7), (0..servers).map(ServerId::new).collect())
        .unwrap()
        .fragment_size(4096)
        .cache_fragments(0)
}

#[test]
fn snapshot_tracks_a_full_write_recover_cycle() {
    let svc = ServiceId::new(3);
    let before = swarm_metrics::snapshot();
    let transport = cluster(3);

    let addr = {
        let log = Log::create(transport.clone(), config(3)).unwrap();
        let addr = log.append_block(svc, b"tag", &[42u8; 2000]).unwrap();
        log.checkpoint(svc, b"ckpt").unwrap();
        log.flush().unwrap();
        addr
    };

    // Crash-recover the client and read the block back.
    let (log, replay) = recover(transport.clone(), config(3), &[svc]).unwrap();
    assert_eq!(replay.checkpoint_data(svc), Some(&b"ckpt"[..]));
    assert_eq!(log.read(addr).unwrap(), vec![42u8; 2000]);

    let after = swarm_metrics::snapshot();

    // Write path: fragments were sealed and stored, and the store
    // latency histogram accumulated samples.
    assert!(
        after.counter("log.fragments_sealed") > before.counter("log.fragments_sealed"),
        "seal counter did not move"
    );
    assert!(
        after.counter("server.stores") > before.counter("server.stores"),
        "server store counter did not move"
    );
    let stores_before = before.histogram("log.store_us").map_or(0, |h| h.count);
    let stores_after = after.histogram("log.store_us").map_or(0, |h| h.count);
    assert!(
        stores_after > stores_before,
        "store latency histogram gained no samples"
    );

    // Recovery path: the pass was counted and fragments were scanned.
    assert!(after.counter("recovery.recoveries") > before.counter("recovery.recoveries"));
    assert!(
        after.counter("recovery.fragments_scanned") > before.counter("recovery.fragments_scanned")
    );

    // Read path.
    assert!(after.counter("log.reads") > before.counter("log.reads"));

    // The snapshot JSON roundtrips and carries the histogram rollup.
    let parsed = swarm_metrics::Snapshot::from_json(&after.to_json()).unwrap();
    assert_eq!(
        parsed.counter("log.fragments_sealed"),
        after.counter("log.fragments_sealed")
    );
    let h = parsed.histogram("log.store_us").expect("store histogram");
    assert!(h.count >= stores_after - stores_before);
    // Quantiles are bucket upper bounds, so only their ordering (not a
    // relation to the exact max) is guaranteed.
    assert!(h.p50_us <= h.p99_us);
}

#[test]
fn read_engine_metrics_track_pool_and_read_sources() {
    let svc = ServiceId::new(5);
    let before = swarm_metrics::snapshot();
    let transport = cluster(3);

    // cache_fragments(0): every read goes to the servers, exercising the
    // connection pool.
    let log = Log::create(transport.clone(), config(3)).unwrap();
    let addr = log.append_block(svc, b"", &[9u8; 3000]).unwrap();
    log.flush().unwrap();

    // Two home reads: the second reuses the pooled connection.
    assert_eq!(log.read(addr).unwrap(), vec![9u8; 3000]);
    assert_eq!(log.read(addr).unwrap(), vec![9u8; 3000]);

    // Kill the holder and read again: locate broadcast sees a down server
    // (broadcast_errors) and the read is served by reconstruction.
    let (holder, _) = swarm_log::reconstruct::locate_fragment(log.engine(), addr.fid).unwrap();
    log.forget_fragment(addr.fid);
    transport.set_down(holder, true);
    assert_eq!(log.read(addr).unwrap(), vec![9u8; 3000]);

    let after = swarm_metrics::snapshot();
    assert!(
        after.counter("net.pool_connects") > before.counter("net.pool_connects"),
        "pool never dialed"
    );
    assert!(
        after.counter("net.pool_hits") > before.counter("net.pool_hits"),
        "repeat read did not reuse a pooled connection"
    );
    assert!(
        after.counter("net.broadcast_errors") > before.counter("net.broadcast_errors"),
        "down server not counted in broadcast_errors"
    );
    let count =
        |snap: &swarm_metrics::Snapshot, name: &str| snap.histogram(name).map_or(0, |h| h.count);
    assert!(
        count(&after, "log.read_us.home") > count(&before, "log.read_us.home"),
        "home-path read latency not recorded"
    );
    assert!(
        count(&after, "log.read_us.reconstruct") > count(&before, "log.read_us.reconstruct"),
        "reconstruct-path read latency not recorded"
    );
}

/// The pipelined write engine's instruments (DESIGN.md §15) are visible
/// through the same snapshot `swarm-admin stats` prints: the
/// `log.store_inflight` gauge exists (and is back to zero once flush
/// returns — every started store was harvested) and the
/// `log.store_window_occupancy` histogram gained a sample per store.
#[test]
fn write_window_metrics_appear_in_snapshot() {
    let svc = ServiceId::new(11);
    let before = swarm_metrics::snapshot();
    let transport = cluster(3);

    let log = Log::create(transport, config(3).write_window(4).queue_depth(4)).unwrap();
    for i in 0..12u8 {
        log.append_block(svc, b"", &[i; 1500]).unwrap();
    }
    log.flush().unwrap();

    let after = swarm_metrics::snapshot();
    let occupancy = |snap: &swarm_metrics::Snapshot| {
        snap.histogram("log.store_window_occupancy")
            .map_or(0, |h| h.count)
    };
    assert!(
        occupancy(&after) > occupancy(&before),
        "window occupancy histogram gained no samples"
    );
    assert!(
        after.gauges.contains_key("log.store_inflight"),
        "store_inflight gauge not registered"
    );

    // The JSON `swarm-admin stats` prints carries both instruments.
    let parsed = swarm_metrics::Snapshot::from_json(&after.to_json()).unwrap();
    assert!(parsed.gauges.contains_key("log.store_inflight"));
    assert!(parsed.histogram("log.store_window_occupancy").is_some());
}

/// The pipelined read engine's instruments (DESIGN.md §16) are the write
/// twin's mirror: the `log.read_inflight` gauge exists, the
/// `log.read_window_occupancy` histogram gains a sample per read RPC, and
/// the sharded server read cache reports hits, misses, and scan bypasses.
#[test]
fn read_window_and_cache_metrics_appear_in_snapshot() {
    let svc = ServiceId::new(13);
    let before = swarm_metrics::snapshot();
    // Servers with a deliberately tiny read cache (one fragment per
    // shard): stores admit fragments, so writing more fragments per
    // server than the cache holds guarantees evictions — and therefore
    // cache misses on single reads and bypasses on batched scans —
    // while the still-resident fragments guarantee hits.
    let transport = Arc::new(MemTransport::new());
    for i in 0..3 {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new())
            .with_read_cache(1)
            .into_shared();
        transport.register(ServerId::new(i), srv);
    }

    let log = Log::create(transport, config(3).read_window(4)).unwrap();
    let mut addrs = Vec::new();
    for i in 0..60u32 {
        addrs.push(log.append_block(svc, b"", &[i as u8; 1500]).unwrap());
    }
    log.flush().unwrap();

    // One scan: grouped by home server into ReadBatch RPCs, probing the
    // cache without admitting (hits on resident fragments, bypasses on
    // evicted ones).
    let scanned = log.read_many(&addrs).unwrap();
    assert_eq!(scanned.len(), addrs.len());
    // Single windowed reads: evicted fragments count ordinary misses.
    for (i, addr) in addrs.iter().enumerate() {
        assert_eq!(log.read(*addr).unwrap(), vec![i as u8; 1500]);
    }

    let after = swarm_metrics::snapshot();
    let count =
        |snap: &swarm_metrics::Snapshot, name: &str| snap.histogram(name).map_or(0, |h| h.count);
    assert!(
        count(&after, "log.read_window_occupancy") > count(&before, "log.read_window_occupancy"),
        "read window occupancy histogram gained no samples"
    );
    assert!(
        after.gauges.contains_key("log.read_inflight"),
        "read_inflight gauge not registered"
    );
    for name in [
        "server.read_cache_hits",
        "server.read_cache_misses",
        "server.read_cache_bypass",
    ] {
        assert!(
            after.counter(name) > before.counter(name),
            "{name} did not move"
        );
    }

    // The JSON `swarm-admin stats` prints carries the read instruments.
    let parsed = swarm_metrics::Snapshot::from_json(&after.to_json()).unwrap();
    assert!(parsed.gauges.contains_key("log.read_inflight"));
    assert!(parsed.histogram("log.read_window_occupancy").is_some());
    assert!(parsed.counter("server.read_cache_hits") >= after.counter("server.read_cache_hits"));
}

#[test]
fn metrics_rpc_serves_a_parseable_snapshot() {
    let transport = cluster(2);
    let mut conn = transport
        .connect(ServerId::new(0), ClientId::new(9))
        .unwrap();

    // Generate some server-side activity first.
    let log = Log::create(transport.clone(), config(2)).unwrap();
    log.append_block(ServiceId::new(1), b"", &[7u8; 512])
        .unwrap();
    log.flush().unwrap();

    match conn.call(&Request::Metrics).unwrap() {
        Response::Metrics(json) => {
            let snap = swarm_metrics::Snapshot::from_json(&json).unwrap();
            assert!(
                snap.counter("server.stores") > 0,
                "RPC snapshot missing store count: {json}"
            );
        }
        other => panic!("unexpected reply {other:?}"),
    }
}
