//! Regression test for multi-service recovery across cleaned regions
//! (needs the cleaner, so it lives at the workspace level).

use std::sync::Arc;
use swarm_log::{recover, Entry, Log, LogConfig};
use swarm_net::MemTransport;
use swarm_server::{MemStore, StorageServer};
use swarm_types::{ClientId, ServerId, ServiceId};

fn cluster(n: u32) -> Arc<MemTransport> {
    let transport = Arc::new(MemTransport::new());
    for i in 0..n {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    transport
}

fn config(servers: u32) -> LogConfig {
    LogConfig::new(ClientId::new(1), (0..servers).map(ServerId::new).collect())
        .unwrap()
        .fragment_size(4096)
        .cache_fragments(0)
}

#[test]
fn recovery_survives_cleaned_holes_between_service_checkpoints() {
    // Service B checkpoints early; service A churns (creating cleanable
    // stripes *between* B's checkpoint and A's much later checkpoint);
    // the cleaner reclaims that middle region. Recovery must still find
    // B's checkpoint and B's post-checkpoint records on the far side of
    // the hole — via the anchor fragment's checkpoint directory.
    let svc_a = ServiceId::new(1);
    let svc_b = ServiceId::new(2);
    let transport = cluster(3);
    {
        let log = Log::create(transport.clone(), config(3)).unwrap();
        log.checkpoint(svc_b, b"b-state").unwrap();
        log.append_record(svc_b, 77, b"b must replay").unwrap();
        log.flush().unwrap();

        // Middle churn: A-owned blocks, then deleted → fully dead stripes.
        let mut doomed = Vec::new();
        for i in 0..24u32 {
            doomed.push(log.append_block(svc_a, b"", &vec![i as u8; 1500]).unwrap());
        }
        log.flush().unwrap();
        for addr in doomed {
            log.delete_block(svc_a, addr).unwrap();
        }
        // A's (much later) checkpoint — the future anchor.
        log.checkpoint(svc_a, b"a-state").unwrap();

        // Clean the dead middle. Both services have checkpoints newer
        // than the dead stripes' records, so they are reclaimable.
        use swarm_services::ServiceStack;
        let log = std::sync::Arc::new(log);
        let stack = std::sync::Arc::new(ServiceStack::new());
        let cleaner =
            swarm_cleaner::Cleaner::new(log.clone(), stack, swarm_cleaner::CleanPolicy::Greedy);
        let stats = cleaner.clean_pass(100).unwrap();
        assert!(
            stats.stripes_cleaned >= 3,
            "need a real hole in the middle: {stats:?}"
        );
    }

    // Crash + recover.
    let (_log, replay) = recover(transport, config(3), &[svc_a, svc_b]).unwrap();
    assert_eq!(
        replay.checkpoint_data(svc_b).unwrap(),
        b"b-state",
        "B's checkpoint lies on the near side of the cleaned hole"
    );
    assert_eq!(replay.checkpoint_data(svc_a).unwrap(), b"a-state");
    let b_records: Vec<&[u8]> = replay
        .records_for(svc_b)
        .iter()
        .filter_map(|e| match &e.entry {
            Entry::Record { data, .. } => Some(data.as_slice()),
            _ => None,
        })
        .collect();
    assert_eq!(b_records, vec![&b"b must replay"[..]]);
}
