//! Long-running lifecycle test: sustained churn, periodic checkpoints,
//! cleaning passes, repeated crash/recovery cycles, and server failures —
//! all while a reference model tracks what the file system must contain.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};
use sting::{StingConfig, StingFs, StingService};
use swarm::local::LocalCluster;
use swarm_cleaner::{CleanPolicy, Cleaner};
use swarm_log::{recover, Log};
use swarm_services::{Service, ServiceStack};
use swarm_types::ServiceId;

const STING_SVC: ServiceId = ServiceId::new(2);

fn sting_config() -> StingConfig {
    StingConfig {
        service: STING_SVC,
        block_size: 4096,
        cache_blocks: 32,
    }
}

fn recover_fs(cluster: &LocalCluster) -> (Arc<Log>, Arc<StingFs>) {
    let config = cluster.log_config(1).unwrap().fragment_size(32 * 1024);
    let (log, replay) = recover(cluster.transport(), config, &[STING_SVC]).unwrap();
    let log = Arc::new(log);
    let fs = StingFs::bare(log.clone(), sting_config());
    let mut svc = StingService::new(fs.clone());
    if let Some(c) = replay.checkpoint_data(STING_SVC) {
        svc.restore_checkpoint(c).unwrap();
    }
    for e in replay.records_for(STING_SVC) {
        svc.replay(e).unwrap();
    }
    (log, fs)
}

#[test]
fn churn_clean_crash_repeat() {
    let cluster = LocalCluster::new(4).unwrap();
    let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(2026);
    let paths: Vec<String> = (0..12).map(|i| format!("/f{i}")).collect();

    // Epoch 0: format.
    {
        let config = cluster.log_config(1).unwrap().fragment_size(32 * 1024);
        let log = Arc::new(Log::create(cluster.transport(), config).unwrap());
        let fs = StingFs::format(log, sting_config()).unwrap();
        fs.unmount().unwrap();
    }

    for epoch in 0..5 {
        let (log, fs) = recover_fs(&cluster);

        // Verify the model after recovery.
        for (path, want) in &model {
            let got = fs
                .read_to_end(path)
                .unwrap_or_else(|e| panic!("epoch {epoch}: read {path}: {e}"));
            assert_eq!(&got, want, "epoch {epoch}: {path} after recovery");
        }

        // Churn.
        for _ in 0..60 {
            let path = paths[rng.gen_range(0..paths.len())].clone();
            match rng.gen_range(0..6) {
                0..=3 => {
                    let len = rng.gen_range(100..12_000);
                    let byte = rng.gen::<u8>();
                    // Full rewrite keeps the model simple.
                    if model.contains_key(&path) {
                        fs.truncate(&path, 0).unwrap();
                    }
                    fs.write_file(&path, 0, &vec![byte; len]).unwrap();
                    model.insert(path, vec![byte; len]);
                }
                4 => {
                    if model.remove(&path).is_some() {
                        fs.unlink(&path).unwrap();
                    }
                }
                _ => {
                    if let Some(content) = model.get_mut(&path) {
                        let add = rng.gen_range(1..4000);
                        let byte = rng.gen::<u8>();
                        let offset = content.len() as u64;
                        fs.write_file(&path, offset, &vec![byte; add]).unwrap();
                        content.extend(std::iter::repeat_n(byte, add));
                    }
                }
            }
        }
        fs.unmount().unwrap();

        // Every other epoch: run the cleaner, then kill a server and
        // verify reads still work.
        if epoch % 2 == 0 {
            let mut stack = ServiceStack::new();
            let svc: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(StingService::new(fs.clone())));
            stack.register(svc).unwrap();
            let cleaner = Cleaner::new(log.clone(), Arc::new(stack), CleanPolicy::CostBenefit);
            let stats = cleaner.clean_pass(50).unwrap();
            // After cleaning, re-checkpoint so the moved addresses are
            // anchored for the next crash.
            fs.unmount().unwrap();

            let down = (epoch % 4) as u32;
            cluster.set_down(down, true);
            for (path, want) in &model {
                assert_eq!(
                    &fs.read_to_end(path).unwrap(),
                    want,
                    "epoch {epoch}: {path} with server {down} down (cleaned {} stripes)",
                    stats.stripes_cleaned
                );
            }
            cluster.set_down(down, false);
        }
        // Crash (drop fs + log) and loop to recovery.
    }

    // Final verification pass.
    let (_log, fs) = recover_fs(&cluster);
    for (path, want) in &model {
        assert_eq!(&fs.read_to_end(path).unwrap(), want, "final: {path}");
    }
    // And the namespace contains exactly the model's files.
    let listed: Vec<String> = fs
        .readdir("/")
        .unwrap()
        .into_iter()
        .map(|e| format!("/{}", e.name))
        .collect();
    for path in &listed {
        assert!(model.contains_key(path), "unexpected file {path}");
    }
    assert_eq!(listed.len(), model.len());
}
