//! Soak test: sustained mixed workload with a live background cleaner,
//! rolling single-server outages during read phases, periodic crash +
//! recovery, and a reference model checking every byte.
//!
//! Ignored by default (it runs for a while); run with:
//! `cargo test --test soak -- --ignored --nocapture`

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};
use sting::{StingConfig, StingFs, StingService};
use swarm::local::LocalCluster;
use swarm_cleaner::{CleanPolicy, Cleaner};
use swarm_log::{recover, Log};
use swarm_services::{Service, ServiceStack};
use swarm_types::ServiceId;

const STING_SVC: ServiceId = ServiceId::new(2);

fn sting_config() -> StingConfig {
    StingConfig {
        service: STING_SVC,
        block_size: 4096,
        cache_blocks: 16,
    }
}

#[test]
#[ignore = "long-running soak; run explicitly with --ignored"]
fn soak_churn_outages_cleaning_recovery() {
    let cluster = Arc::new(LocalCluster::new(4).unwrap());
    let config = || cluster.log_config(1).unwrap().fragment_size(32 * 1024);
    let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(0x50AC);

    {
        let log = Arc::new(Log::create(cluster.transport(), config()).unwrap());
        let fs = StingFs::format(log, sting_config()).unwrap();
        fs.unmount().unwrap();
    }

    for epoch in 0..12 {
        // Recover.
        let (log, replay) = recover(cluster.transport(), config(), &[STING_SVC]).unwrap();
        let log = Arc::new(log);
        let fs = StingFs::bare(log.clone(), sting_config());
        let mut adapter = StingService::new(fs.clone());
        if let Some(c) = replay.checkpoint_data(STING_SVC) {
            adapter.restore_checkpoint(c).unwrap();
        }
        for e in replay.records_for(STING_SVC) {
            adapter.replay(e).unwrap();
        }

        // Background cleaner for this epoch.
        let mut stack = ServiceStack::new();
        let svc: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(StingService::new(fs.clone())));
        stack.register(svc).unwrap();
        let cleaner = Arc::new(Cleaner::new(
            log.clone(),
            Arc::new(stack),
            CleanPolicy::CostBenefit,
        ));
        let mut handle = cleaner
            .clone()
            .spawn_periodic(std::time::Duration::from_millis(20), 8);

        // Write churn (servers all up: writes need the full group).
        for _ in 0..150 {
            let f = rng.gen_range(0..16);
            let path = format!("/soak{f}");
            match rng.gen_range(0..8) {
                0..=4 => {
                    let len = rng.gen_range(100..20_000);
                    let byte = rng.gen::<u8>();
                    if model.contains_key(&path) {
                        fs.truncate(&path, 0).unwrap();
                    }
                    fs.write_file(&path, 0, &vec![byte; len]).unwrap();
                    model.insert(path, vec![byte; len]);
                }
                5 => {
                    if model.remove(&path).is_some() {
                        fs.unlink(&path).unwrap();
                    }
                }
                6 => {
                    if let Some(content) = model.get_mut(&path) {
                        let add = rng.gen_range(1..5000);
                        let byte = rng.gen::<u8>();
                        fs.write_file(&path, content.len() as u64, &vec![byte; add])
                            .unwrap();
                        content.extend(std::iter::repeat_n(byte, add));
                    }
                }
                _ => fs.checkpoint().unwrap(),
            }
        }
        fs.unmount().unwrap();

        // Read phase under a rolling outage.
        let down = rng.gen_range(0..4u32);
        cluster.set_down(down, true);
        for (path, want) in &model {
            let got = fs
                .read_to_end(path)
                .unwrap_or_else(|e| panic!("epoch {epoch}, server {down} down: {path}: {e}"));
            assert_eq!(&got, want, "epoch {epoch}: {path}");
        }
        cluster.set_down(down, false);

        handle.stop();
        let totals = handle.totals();
        println!("epoch {epoch}: {} files, cleaner {:?}", model.len(), totals);
        // Crash at epoch end (drop everything).
    }

    // Final recovery must still match the model exactly.
    let (log, replay) = recover(cluster.transport(), config(), &[STING_SVC]).unwrap();
    let fs = StingFs::bare(Arc::new(log), sting_config());
    let mut adapter = StingService::new(fs.clone());
    if let Some(c) = replay.checkpoint_data(STING_SVC) {
        adapter.restore_checkpoint(c).unwrap();
    }
    for e in replay.records_for(STING_SVC) {
        adapter.replay(e).unwrap();
    }
    for (path, want) in &model {
        assert_eq!(&fs.read_to_end(path).unwrap(), want, "final: {path}");
    }
    println!("soak complete: {} files verified", model.len());
}
