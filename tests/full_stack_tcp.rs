//! Full-stack integration over real TCP with disk-backed servers: the
//! closest configuration to the paper's actual prototype (user-level
//! storage server processes + network + Sting on a client).

use std::sync::Arc;

use sting::{StingConfig, StingFs, StingService};
use swarm_log::{recover, Log, LogConfig};
use swarm_net::tcp::{TcpServer, TcpTransport};
use swarm_server::{FileStore, StorageServer};
use swarm_services::Service;
use swarm_types::{ClientId, ServerId, ServiceId};

const STING_SVC: ServiceId = ServiceId::new(2);

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path =
            std::env::temp_dir().join(format!("swarm-itest-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct TcpCluster {
    servers: Vec<TcpServer>,
    transport: Arc<TcpTransport>,
    _dirs: Vec<TempDir>,
}

fn tcp_cluster(n: u32, tag: &str) -> TcpCluster {
    let transport = Arc::new(TcpTransport::new());
    let mut servers = Vec::new();
    let mut dirs = Vec::new();
    for i in 0..n {
        let dir = TempDir::new(&format!("{tag}-{i}"));
        // Non-durable file store: the semantics are identical, and tests
        // shouldn't hammer fsync.
        let store = FileStore::open_with(&dir.0, 0, false).unwrap();
        let handler = StorageServer::new(ServerId::new(i), store).into_shared();
        let server = TcpServer::spawn(ServerId::new(i), "127.0.0.1:0", handler).unwrap();
        transport.add_server(ServerId::new(i), server.addr());
        servers.push(server);
        dirs.push(dir);
    }
    TcpCluster {
        servers,
        transport,
        _dirs: dirs,
    }
}

fn config(n: u32) -> LogConfig {
    LogConfig::new(ClientId::new(1), (0..n).map(ServerId::new).collect())
        .unwrap()
        .fragment_size(32 * 1024)
}

#[test]
fn sting_over_tcp_with_disk_backed_servers() {
    let cluster = tcp_cluster(3, "fs");
    let log = Arc::new(Log::create(cluster.transport.clone(), config(3)).unwrap());
    let fs = StingFs::format(log, StingConfig::default()).unwrap();

    fs.mkdir("/data").unwrap();
    let payload: Vec<u8> = (0..60_000u32).map(|i| (i % 241) as u8).collect();
    fs.write_file("/data/blob", 0, &payload).unwrap();
    fs.write_file("/data/note", 0, b"over real sockets onto real files")
        .unwrap();
    fs.unmount().unwrap();

    assert_eq!(fs.read_to_end("/data/blob").unwrap(), payload);
    assert_eq!(
        fs.read_to_end("/data/note").unwrap(),
        b"over real sockets onto real files"
    );
}

#[test]
fn recovery_over_tcp_after_client_crash() {
    let cluster = tcp_cluster(3, "recover");
    {
        let log = Arc::new(Log::create(cluster.transport.clone(), config(3)).unwrap());
        let fs = StingFs::format(log, StingConfig::default()).unwrap();
        fs.write_file("/persist.txt", 0, b"checkpointed state")
            .unwrap();
        fs.checkpoint().unwrap();
        fs.write_file("/tail.txt", 0, b"rolled forward").unwrap();
        fs.flush().unwrap();
        // crash: drop fs + log; TCP servers keep running.
    }
    let (log, replay) = recover(cluster.transport.clone(), config(3), &[STING_SVC]).unwrap();
    let fs = StingFs::bare(Arc::new(log), StingConfig::default());
    let mut svc = StingService::new(fs.clone());
    if let Some(c) = replay.checkpoint_data(STING_SVC) {
        svc.restore_checkpoint(c).unwrap();
    }
    for e in replay.records_for(STING_SVC) {
        svc.replay(e).unwrap();
    }
    assert_eq!(
        fs.read_to_end("/persist.txt").unwrap(),
        b"checkpointed state"
    );
    assert_eq!(fs.read_to_end("/tail.txt").unwrap(), b"rolled forward");
}

#[test]
fn reconstruction_over_tcp_when_a_server_process_dies() {
    let mut cluster = tcp_cluster(4, "reconstruct");
    let log = Arc::new(Log::create(cluster.transport.clone(), config(4)).unwrap());
    let svc = ServiceId::new(1);
    let mut addrs = Vec::new();
    for i in 0..30u32 {
        addrs.push(log.append_block(svc, b"", &vec![i as u8; 5000]).unwrap());
    }
    log.flush().unwrap();

    // Kill one actual server process (not just a flag).
    let mut dead = cluster.servers.remove(1);
    dead.shutdown();
    drop(dead);

    for (i, addr) in addrs.iter().enumerate() {
        let data = log.read(*addr).unwrap_or_else(|e| panic!("block {i}: {e}"));
        assert_eq!(data, vec![i as u8; 5000]);
    }
}

#[test]
fn server_restart_preserves_fragments_on_disk() {
    let transport = Arc::new(TcpTransport::new());
    let dir = TempDir::new("restart");
    let svc = ServiceId::new(1);
    let addr;
    {
        let store = FileStore::open_with(&dir.0, 0, false).unwrap();
        let handler = StorageServer::new(ServerId::new(0), store).into_shared();
        let handler2 =
            StorageServer::new(ServerId::new(1), swarm_server::MemStore::new()).into_shared();
        let s0 = TcpServer::spawn(ServerId::new(0), "127.0.0.1:0", handler).unwrap();
        let s1 = TcpServer::spawn(ServerId::new(1), "127.0.0.1:0", handler2).unwrap();
        transport.add_server(ServerId::new(0), s0.addr());
        transport.add_server(ServerId::new(1), s1.addr());
        let log = Log::create(
            transport.clone() as Arc<dyn swarm_net::Transport>,
            config(2),
        )
        .unwrap();
        addr = log.append_block(svc, b"", b"durable bytes").unwrap();
        log.flush().unwrap();
        // Both server processes stop ("power cycle" of server 0's disk).
    }
    // Restart server 0 from the same directory; server 1's MemStore is
    // gone for good (that's the single-failure the parity covers).
    let store = FileStore::open_with(&dir.0, 0, false).unwrap();
    let handler = StorageServer::new(ServerId::new(0), store).into_shared();
    let s0 = TcpServer::spawn(ServerId::new(0), "127.0.0.1:0", handler).unwrap();
    let transport2 = Arc::new(TcpTransport::new());
    transport2.add_server(ServerId::new(0), s0.addr());

    // The fragment (or its mirror) is still on disk: read it directly.
    let pool = Arc::new(swarm_net::ConnectionPool::new(
        transport2.clone() as Arc<dyn swarm_net::Transport>,
        ClientId::new(1),
    ));
    let (server, _) = swarm_log::reconstruct::locate_fragment(&pool, addr.fid)
        .expect("fragment survived restart");
    let bytes = swarm_log::reconstruct::fetch_fragment(&pool, server, addr.fid).unwrap();
    let view = swarm_log::FragmentView::parse(&bytes).unwrap();
    assert!(view.entries.iter().any(
        |e| matches!(&e.entry, swarm_log::Entry::Block { data, .. } if data == b"durable bytes")
    ));
}

#[test]
fn pooled_connections_reconnect_across_server_restart() {
    let transport = Arc::new(TcpTransport::new());
    let mut dirs = Vec::new();
    let mut servers = Vec::new();
    for i in 0..2u32 {
        let dir = TempDir::new(&format!("poolrestart-{i}"));
        let store = FileStore::open_with(&dir.0, 0, false).unwrap();
        let handler = StorageServer::new(ServerId::new(i), store).into_shared();
        let server = TcpServer::spawn(ServerId::new(i), "127.0.0.1:0", handler).unwrap();
        transport.add_server(ServerId::new(i), server.addr());
        servers.push(server);
        dirs.push(dir);
    }
    // No client cache: both reads must cross the wire.
    let log = Log::create(
        transport.clone() as Arc<dyn swarm_net::Transport>,
        config(2).cache_fragments(0),
    )
    .unwrap();
    let svc = ServiceId::new(1);
    let addr = log.append_block(svc, b"", &vec![5u8; 4000]).unwrap();
    log.flush().unwrap();
    assert_eq!(log.read(addr).unwrap(), vec![5u8; 4000]); // warms the pool

    let before = swarm_metrics::snapshot();
    // Restart both server processes from the same directories. Every
    // socket the read engine pooled is now stale.
    for i in 0..2u32 {
        let mut old = servers.remove(0);
        old.shutdown();
        drop(old);
        let store = FileStore::open_with(&dirs[i as usize].0, 0, false).unwrap();
        let handler = StorageServer::new(ServerId::new(i), store).into_shared();
        let server = TcpServer::spawn(ServerId::new(i), "127.0.0.1:0", handler).unwrap();
        transport.remove_server(ServerId::new(i));
        transport.add_server(ServerId::new(i), server.addr());
        servers.push(server);
    }

    // The stale pooled connection must be detected and transparently
    // redialed — the read succeeds without the caller seeing an error.
    assert_eq!(log.read(addr).unwrap(), vec![5u8; 4000]);
    let after = swarm_metrics::snapshot();
    assert!(
        after.counter("net.pool_reconnects") > before.counter("net.pool_reconnects"),
        "restart did not register as a pool reconnect"
    );
}
