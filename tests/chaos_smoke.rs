//! Workspace-level chaos smoke test: a handful of seeded fault
//! schedules must complete with zero acked-write loss on every
//! transport, and each seed's schedule hash must be identical across
//! transports (the schedule is derived from the seed alone).
//!
//! The CI `chaos` job runs a wider matrix via the `swarm-chaos` binary;
//! this test keeps the core guarantee inside plain `cargo test`.

use swarm_chaos::{Runner, Schedule, ScheduleConfig, TransportKind};

#[test]
fn seeded_schedules_keep_every_acked_write_on_all_transports() {
    let cfg = ScheduleConfig::new(4, 40);
    for seed in [0u64, 1, 2] {
        let schedule = Schedule::generate(seed, &cfg);
        let mem = Runner::run(&schedule, TransportKind::Mem).unwrap();
        assert!(
            mem.passed(),
            "seed {seed} on mem: {:?}\nreplay: {}",
            mem.failures,
            mem.replay_command(40, 4)
        );
        for kind in TransportKind::all() {
            if kind == TransportKind::Mem {
                continue;
            }
            let tcp = Runner::run(&schedule, kind).unwrap();
            assert!(
                tcp.passed(),
                "seed {seed} on {kind}: {:?}\nreplay: {}",
                tcp.failures,
                tcp.replay_command(40, 4)
            );
            assert_eq!(mem.hash, tcp.hash, "seed {seed}: schedule hash diverged");
            assert_eq!(mem.acked_blocks, tcp.acked_blocks, "seed {seed} ({kind})");
        }
    }
}
