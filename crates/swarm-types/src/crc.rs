//! CRC32 (IEEE 802.3 polynomial), used to checksum fragment headers,
//! entry tables, and network frames.
//!
//! Implemented in-repo because Swarm defines its own on-disk format and the
//! workspace keeps its dependency set minimal. Slice-by-one with a
//! precomputed table; fast enough that fragment sealing is dominated by the
//! parity XOR, not the checksum.

/// The IEEE CRC32 polynomial in reversed bit order.
const POLY: u32 = 0xedb8_8320;

/// Lazily-built lookup table (built at first use; `const fn` keeps it
/// allocation-free and avoids a build script).
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC32 (IEEE) of `data`.
///
/// # Example
///
/// ```
/// // Standard test vector: CRC32("123456789") == 0xcbf43926.
/// assert_eq!(swarm_types::crc32(b"123456789"), 0xcbf43926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    update(0xffff_ffff, data) ^ 0xffff_ffff
}

/// Incremental CRC32: feed chunks through [`Crc32`] when data is not
/// contiguous (e.g. a fragment header plus its payload).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a new incremental checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// Finishes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

fn update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = TABLE[((state ^ b as u32) & 0xff) as usize] ^ (state >> 8);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"swarm striped log fragments";
        let mut inc = Crc32::new();
        inc.update(&data[..7]);
        inc.update(&data[7..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let orig = crc32(&data);
        data[512] ^= 0x10;
        assert_ne!(crc32(&data), orig);
    }

    #[test]
    fn empty_incremental_is_zero() {
        assert_eq!(Crc32::new().finish(), 0);
    }
}
