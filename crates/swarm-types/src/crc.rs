//! CRC32 (IEEE 802.3 polynomial), used to checksum fragment headers,
//! entry tables, and network frames.
//!
//! Implemented in-repo because Swarm defines its own on-disk format and
//! the workspace keeps its dependency set minimal. Slice-by-8: eight
//! precomputed tables let the hot loop fold one 64-bit word per step
//! instead of one byte, which matters because every network frame CRCs
//! its whole payload — at 1 MB fragments the checksum would otherwise
//! show up next to the parity XOR in profiles. The tables are built by
//! `const fn`, so there is no build script and no lazy initialization.

/// The IEEE CRC32 polynomial in reversed bit order.
const POLY: u32 = 0xedb8_8320;

/// The classic one-byte-at-a-time table (table 0 of the slice-by-8 set).
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Slice-by-8 table set: `TABLES[k][b]` is the CRC contribution of byte
/// `b` seen `k` positions before the end of an 8-byte word, i.e.
/// `TABLES[k][b] = crc_shift(TABLES[k-1][b])`.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    tables[0] = build_table();
    let mut i = 0;
    while i < 256 {
        let mut crc = tables[0][i];
        let mut k = 1;
        while k < 8 {
            crc = tables[0][(crc & 0xff) as usize] ^ (crc >> 8);
            tables[k][i] = crc;
            k += 1;
        }
        i += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Computes the CRC32 (IEEE) of `data`.
///
/// # Example
///
/// ```
/// // Standard test vector: CRC32("123456789") == 0xcbf43926.
/// assert_eq!(swarm_types::crc32(b"123456789"), 0xcbf43926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    update(0xffff_ffff, data) ^ 0xffff_ffff
}

/// Incremental CRC32: feed chunks through [`Crc32`] when data is not
/// contiguous (e.g. a fragment header plus its payload).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a new incremental checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// Finishes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

fn update(mut state: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        // Fold the running state into the low word, then look all eight
        // bytes up in parallel-independent tables. One iteration advances
        // the CRC by 64 bits.
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ state;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        state = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = TABLES[0][((state ^ b as u32) & 0xff) as usize] ^ (state >> 8);
    }
    state
}

/// Reference byte-at-a-time CRC32, kept for benchmarks and as a
/// cross-check oracle for the slice-by-8 kernel.
///
/// Not used on any hot path; `swarm-bench` measures [`crc32`] against it
/// and the kernel sanity tests assert they agree.
#[doc(hidden)]
pub fn crc32_baseline(data: &[u8]) -> u32 {
    let mut state = 0xffff_ffffu32;
    for &b in data {
        state = TABLES[0][((state ^ b as u32) & 0xff) as usize] ^ (state >> 8);
    }
    state ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"swarm striped log fragments";
        let mut inc = Crc32::new();
        inc.update(&data[..7]);
        inc.update(&data[7..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let orig = crc32(&data);
        data[512] ^= 0x10;
        assert_ne!(crc32(&data), orig);
    }

    #[test]
    fn empty_incremental_is_zero() {
        assert_eq!(Crc32::new().finish(), 0);
    }

    /// Quick-mode kernel sanity: slice-by-8 agrees with the byte-at-a-time
    /// oracle at every alignment and length around the 8-byte boundaries.
    #[test]
    fn slice_by_8_matches_baseline_at_all_alignments() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        for start in 0..9 {
            for end in start..data.len() {
                let s = &data[start..end];
                assert_eq!(crc32(s), crc32_baseline(s), "range {start}..{end}");
            }
        }
    }
}
