//! Binary codec for Swarm on-wire and on-disk structures.
//!
//! Swarm defines its own fragment format and server protocol, so every
//! structure that crosses a machine or disk boundary is encoded with this
//! little-endian, length-prefixed codec. It is deliberately boring: fixed
//! integer widths, `u32` length prefixes for variable data, and hard bounds
//! checks on decode so that a corrupt fragment or malicious peer can never
//! cause a panic or an over-read — only a [`SwarmError::Corrupt`] error.
//!
//! # Example
//!
//! ```
//! use swarm_types::{ByteReader, ByteWriter, Decode, Encode};
//!
//! let mut w = ByteWriter::new();
//! w.put_u32(7);
//! w.put_bytes(b"swarm");
//! let buf = w.into_bytes();
//!
//! let mut r = ByteReader::new(&buf);
//! assert_eq!(r.get_u32().unwrap(), 7);
//! assert_eq!(r.get_bytes().unwrap(), b"swarm");
//! assert!(r.is_empty());
//! ```
//!
//! [`SwarmError::Corrupt`]: crate::error::SwarmError::Corrupt

use crate::bytes::Bytes;
use crate::error::{Result, SwarmError};

/// Maximum length accepted for a length-prefixed field (64 MiB).
///
/// Decoding rejects anything larger; this bounds allocation from untrusted
/// input. Fragments themselves are at most a few MiB.
pub const MAX_FIELD_LEN: usize = 64 << 20;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// Unsigned integer types the codec can write generically.
///
/// This trait is sealed; it exists only so newtype identifiers of different
/// widths can share one `Encode` implementation.
pub trait UInt: sealed::Sealed + Copy {
    /// Width of the integer in bytes.
    const WIDTH: usize;
    /// Widens to u64.
    fn widen(self) -> u64;
    /// Narrows from u64; the caller guarantees the value fits.
    fn narrow(v: u64) -> Self;
}

impl UInt for u16 {
    const WIDTH: usize = 2;
    fn widen(self) -> u64 {
        self as u64
    }
    fn narrow(v: u64) -> Self {
        v as u16
    }
}

impl UInt for u32 {
    const WIDTH: usize = 4;
    fn widen(self) -> u64 {
        self as u64
    }
    fn narrow(v: u64) -> Self {
        v as u32
    }
}

impl UInt for u64 {
    const WIDTH: usize = 8;
    fn widen(self) -> u64 {
        self
    }
    fn narrow(v: u64) -> Self {
        v
    }
}

/// Growable little-endian byte sink.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends any sealed unsigned integer at its natural width.
    pub fn put_uint<T: UInt>(&mut self, v: u64) {
        match T::WIDTH {
            2 => self.put_u16(v as u16),
            4 => self.put_u32(v as u32),
            _ => self.put_u64(v),
        }
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends raw bytes with **no** length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` exceeds `u32::MAX`.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(u32::try_from(bytes.len()).expect("field too long"));
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Returns the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian byte source.
///
/// A reader constructed with [`ByteReader::shared`] additionally carries
/// a handle to the shared allocation it is reading from, which lets
/// [`ByteReader::get_shared_bytes`] return zero-copy [`Bytes`] views of
/// payload fields instead of copying them out.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Set when `buf` is exactly `source[..]`; enables zero-copy field
    /// extraction.
    source: Option<&'a Bytes>,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader {
            buf,
            pos: 0,
            source: None,
        }
    }

    /// Creates a reader over a shared buffer; byte fields read with
    /// [`ByteReader::get_shared_bytes`] will alias `source` instead of
    /// being copied.
    pub fn shared(source: &'a Bytes) -> Self {
        ByteReader {
            buf: source,
            pos: 0,
            source: Some(source),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(SwarmError::corrupt(format!(
                "truncated input: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if the input is exhausted.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if the input is exhausted.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if the input is exhausted.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if the input is exhausted.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if the input is exhausted.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads any sealed unsigned integer at its natural width.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if the input is exhausted.
    pub fn get_uint<T: UInt>(&mut self) -> Result<u64> {
        match T::WIDTH {
            2 => Ok(self.get_u16()? as u64),
            4 => Ok(self.get_u32()? as u64),
            _ => self.get_u64(),
        }
    }

    /// Reads a boolean written by [`ByteWriter::put_bool`].
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if the input is exhausted or the
    /// byte is neither 0 nor 1.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SwarmError::corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Returns the raw bytes between two positions (for checksumming
    /// exactly what was consumed).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> Result<&'a [u8]> {
        if start > end || end > self.buf.len() {
            return Err(SwarmError::corrupt(format!(
                "slice {start}..{end} out of bounds (len {})",
                self.buf.len()
            )));
        }
        Ok(&self.buf[start..end])
    }

    /// Reads exactly `n` raw bytes (no length prefix).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if fewer than `n` bytes remain.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed byte field.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if the prefix or payload is truncated
    /// or the length exceeds [`MAX_FIELD_LEN`].
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(SwarmError::corrupt(format!(
                "field length {len} exceeds limit {MAX_FIELD_LEN}"
            )));
        }
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed byte field as a shared [`Bytes`]
    /// view.
    ///
    /// For readers built with [`ByteReader::shared`] this is zero-copy:
    /// the returned value aliases the source allocation. For plain
    /// readers it copies, like `get_bytes().to_vec()`.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if the prefix or payload is truncated
    /// or the length exceeds [`MAX_FIELD_LEN`].
    pub fn get_shared_bytes(&mut self) -> Result<Bytes> {
        let slice = self.get_bytes()?;
        let end = self.pos;
        match self.source {
            Some(src) => Ok(src.slice(end - slice.len()..end)),
            None => Ok(Bytes::from(slice)),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SwarmError::corrupt("invalid utf-8 in string field"))
    }
}

/// Types that can be written to the Swarm binary format.
pub trait Encode {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);

    /// Convenience: encodes into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Types that can be read back from the Swarm binary format.
pub trait Decode: Sized {
    /// Decodes one value from `r`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] on truncated or malformed input.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self>;

    /// Convenience: decodes a value that occupies the whole buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] on malformed input or trailing bytes.
    fn decode_all(buf: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(buf);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(SwarmError::corrupt(format!(
                "{} trailing bytes after decode",
                r.remaining()
            )));
        }
        Ok(v)
    }

    /// Like [`Decode::decode_all`], but over a shared buffer: byte fields
    /// decoded via [`ByteReader::get_shared_bytes`] alias `buf` instead of
    /// being copied. This is how a received network frame becomes a stored
    /// fragment without another allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] on malformed input or trailing bytes.
    fn decode_all_shared(buf: &Bytes) -> Result<Self> {
        let mut r = ByteReader::shared(buf);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(SwarmError::corrupt(format!(
                "{} trailing bytes after decode",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

macro_rules! impl_codec_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut ByteWriter) {
                w.$put(*self);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
                r.$get()
            }
        }
    };
}

impl_codec_prim!(u8, put_u8, get_u8);
impl_codec_prim!(u16, put_u16, get_u16);
impl_codec_prim!(u32, put_u32, get_u32);
impl_codec_prim!(u64, put_u64, get_u64);
impl_codec_prim!(i64, put_i64, get_i64);
impl_codec_prim!(bool, put_bool, get_bool);

impl Encode for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_str()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(r.get_bytes()?.to_vec())
    }
}

/// `Bytes` encodes exactly like `Vec<u8>` (u32 length prefix + raw
/// bytes); the wire format cannot tell them apart.
impl Encode for Bytes {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(self);
    }
}

impl Decode for Bytes {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_shared_bytes()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        if r.get_bool()? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

/// Vectors of non-byte items: `u32` count followed by each element.
///
/// (`Vec<u8>` has its own denser impl above, so this is a macro-generated
/// set of impls for the element types Swarm actually stores.)
macro_rules! impl_codec_vec {
    ($($elem:ty),*) => {$(
        impl Encode for Vec<$elem> {
            fn encode(&self, w: &mut ByteWriter) {
                w.put_u32(u32::try_from(self.len()).expect("vec too long"));
                for item in self {
                    item.encode(w);
                }
            }
        }
        impl Decode for Vec<$elem> {
            fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
                let n = r.get_u32()? as usize;
                if n > MAX_FIELD_LEN {
                    return Err(SwarmError::corrupt("vec length exceeds limit"));
                }
                let mut v = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    v.push(<$elem>::decode(r)?);
                }
                Ok(v)
            }
        }
    )*};
}

impl_codec_vec!(
    u32,
    u64,
    crate::id::ServerId,
    crate::id::ClientId,
    crate::id::FragmentId,
    crate::id::BlockAddr
);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xab);
        w.put_u16(0xbeef);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_i64(-42);
        w.put_bool(true);
        w.put_bytes(b"hello");
        w.put_str("world");
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u16().unwrap(), 0xbeef);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "world");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let buf = [1u8, 2];
        let mut r = ByteReader::new(&buf);
        assert!(r.get_u32().is_err());
        // Position is unchanged semantics aren't promised, but no panic and
        // a clean error is.
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        let err = r.get_bytes().unwrap_err();
        assert!(err.to_string().contains("exceeds limit"));
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let buf = [7u8];
        let mut r = ByteReader::new(&buf);
        assert!(r.get_bool().is_err());
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u32> = Some(5);
        let none: Option<u32> = None;
        assert_eq!(
            Option::<u32>::decode_all(&some.encode_to_vec()).unwrap(),
            some
        );
        assert_eq!(
            Option::<u32>::decode_all(&none.encode_to_vec()).unwrap(),
            none
        );
    }

    #[test]
    fn decode_all_rejects_trailing_bytes() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_u8(0);
        let buf = w.into_bytes();
        assert!(u32::decode_all(&buf).is_err());
    }

    #[test]
    fn vec_of_ids_roundtrip() {
        use crate::id::ServerId;
        let v = vec![ServerId::new(1), ServerId::new(2), ServerId::new(3)];
        let buf = v.encode_to_vec();
        assert_eq!(Vec::<ServerId>::decode_all(&buf).unwrap(), v);
    }

    #[test]
    fn shared_reader_fields_alias_the_source() {
        let mut w = ByteWriter::new();
        w.put_u32(7);
        w.put_bytes(b"payload");
        w.put_bytes(b"tail");
        let src = Bytes::from(w.into_bytes());
        let mut r = ByteReader::shared(&src);
        assert_eq!(r.get_u32().unwrap(), 7);
        let payload = r.get_shared_bytes().unwrap();
        let tail = r.get_shared_bytes().unwrap();
        assert!(r.is_empty());
        assert_eq!(payload, b"payload");
        assert_eq!(tail, b"tail");
        // Zero-copy: both views point into `src`'s allocation.
        assert_eq!(payload.as_ptr(), src[8..].as_ptr());
        assert_eq!(tail.as_ptr(), src[8 + 7 + 4..].as_ptr());
    }

    #[test]
    fn unshared_reader_copies_shared_bytes() {
        let mut w = ByteWriter::new();
        w.put_bytes(b"copied");
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        let field = r.get_shared_bytes().unwrap();
        assert_eq!(field, b"copied");
        assert_ne!(field.as_ptr(), buf[4..].as_ptr());
    }

    #[test]
    fn bytes_codec_matches_vec_codec() {
        let v = b"wire format parity".to_vec();
        let b = Bytes::from(v.clone());
        assert_eq!(v.encode_to_vec(), b.encode_to_vec());
        let decoded = Bytes::decode_all(&v.encode_to_vec()).unwrap();
        assert_eq!(decoded, v);
        let shared = Bytes::decode_all_shared(&Bytes::from(v.encode_to_vec())).unwrap();
        assert_eq!(shared, v);
    }

    proptest! {
        #[test]
        fn prop_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let mut w = ByteWriter::new();
            w.put_bytes(&data);
            let buf = w.into_bytes();
            let mut r = ByteReader::new(&buf);
            prop_assert_eq!(r.get_bytes().unwrap(), &data[..]);
            prop_assert!(r.is_empty());
        }

        #[test]
        fn prop_u64_roundtrip(v in any::<u64>()) {
            let buf = v.encode_to_vec();
            prop_assert_eq!(u64::decode_all(&buf).unwrap(), v);
        }

        #[test]
        fn prop_reader_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Interpret arbitrary bytes as a sequence of fields; must never panic.
            let mut r = ByteReader::new(&data);
            let _ = r.get_u16();
            let _ = r.get_bytes();
            let _ = r.get_bool();
            let _ = r.get_u64();
        }

        #[test]
        fn prop_string_roundtrip(s in ".*") {
            let buf = s.clone().encode_to_vec();
            prop_assert_eq!(String::decode_all(&buf).unwrap(), s);
        }
    }
}
