//! Fundamental types shared by every Swarm crate.
//!
//! Swarm ("The Swarm Scalable Storage System", ICDCS '99) is built from a
//! small set of pervasive concepts: clients that own append-only logs,
//! fragments that hold pieces of those logs, stripes that bind fragments
//! together with parity, and storage servers that hold fragments. This crate
//! defines the identifiers for those concepts, the error type used across
//! the workspace, the binary wire/disk codec every on-disk and on-wire
//! structure is expressed in, and small utilities (CRC32) that the codec and
//! fragment formats rely on.
//!
//! # Example
//!
//! ```
//! use swarm_types::{ClientId, FragmentId, BlockAddr};
//!
//! let client = ClientId::new(7);
//! let fid = FragmentId::new(client, 42);
//! assert_eq!(fid.client(), client);
//! assert_eq!(fid.seq(), 42);
//!
//! let addr = BlockAddr::new(fid, 4096, 512);
//! assert_eq!(addr.end(), 4608);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod codec;
pub mod constants;
pub mod crc;
pub mod error;
pub mod geometry;
pub mod id;

pub use bytes::Bytes;
pub use codec::{ByteReader, ByteWriter, Decode, Encode};
pub use constants::{DEFAULT_BLOCK_SIZE, DEFAULT_FRAGMENT_SIZE, MAX_PARITY, MAX_STRIPE_WIDTH};
pub use crc::crc32;
pub use error::{Result, SwarmError};
pub use geometry::Geometry;
pub use id::{Aid, BlockAddr, ClientId, FragmentId, ServerId, ServiceId, StripeSeq};
