//! Workspace-wide constants.
//!
//! Defaults follow the paper's prototype: 1 MB log fragments stored on
//! servers that divide their disks into fragment-sized slots (§3.2), and
//! 4 KB blocks for the write benchmarks (§3.4).

/// Default size of a log fragment in bytes (the paper's prototype used
/// 1 MB fragments, §3.3).
pub const DEFAULT_FRAGMENT_SIZE: usize = 1 << 20;

/// Default block size used by services such as Sting and the benchmarks
/// (4 KB, §3.4).
pub const DEFAULT_BLOCK_SIZE: usize = 4 << 10;

/// Upper bound on stripe width (data + parity fragments). The paper's
/// prototype ran up to 8 servers; we allow wider stripes but bound them so
/// fragment headers stay small.
pub const MAX_STRIPE_WIDTH: usize = 64;

/// Upper bound on parity members per stripe. Reed–Solomon over GF(2^8)
/// with the normalized Cauchy matrix supports up to `256 - k` parities;
/// we bound far below that so recovery fan-out stays reasonable.
pub const MAX_PARITY: usize = 8;

/// Magic number identifying a Swarm fragment header on disk or on the wire.
pub const FRAGMENT_MAGIC: u32 = 0x5357_4D46; // "SWMF"

/// Magic number identifying a Swarm network frame.
pub const FRAME_MAGIC: u32 = 0x5357_4D4E; // "SWMN"

/// On-disk format version; bumped on incompatible layout changes.
pub const FORMAT_VERSION: u16 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_holds_many_blocks() {
        const { assert!(DEFAULT_FRAGMENT_SIZE.is_multiple_of(DEFAULT_BLOCK_SIZE)) };
        const { assert!(DEFAULT_FRAGMENT_SIZE / DEFAULT_BLOCK_SIZE >= 256) };
    }

    #[test]
    fn magics_differ() {
        assert_ne!(FRAGMENT_MAGIC, FRAME_MAGIC);
    }
}
