//! Identifiers for Swarm entities.
//!
//! All identifiers are small `Copy` newtypes ([C-NEWTYPE]) so that a
//! [`FragmentId`] can never be confused with a [`StripeSeq`] or a raw
//! integer. Every identifier round-trips through the binary codec defined in
//! [`crate::codec`].

use std::fmt;

use crate::codec::{ByteReader, ByteWriter, Decode, Encode};
use crate::error::Result;

/// Identifies a Swarm client (log owner).
///
/// Each client writes its own private log; the client id is embedded in the
/// upper bits of every [`FragmentId`] the client creates, which makes
/// fragment ids globally unique without any coordination between clients —
/// one of the paper's core design goals (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(u32);

impl ClientId {
    /// Number of bits of a [`FragmentId`] devoted to the client id.
    pub const BITS: u32 = 24;
    /// Largest representable client id.
    pub const MAX: u32 = (1 << Self::BITS) - 1;

    /// Creates a client id.
    ///
    /// # Panics
    ///
    /// Panics if `raw` exceeds [`ClientId::MAX`] (it must fit in the upper
    /// 24 bits of a fragment id).
    pub const fn new(raw: u32) -> Self {
        assert!(raw <= Self::MAX, "client id exceeds 24 bits");
        ClientId(raw)
    }

    /// Returns the raw integer value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies a storage server within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServerId(u32);

impl ServerId {
    /// Creates a server id.
    pub const fn new(raw: u32) -> Self {
        ServerId(raw)
    }

    /// Returns the raw integer value.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns this id as a `usize`, convenient for indexing server tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifies a service layered on the log (file system, cleaner, ARU, …).
///
/// The log layer routes recovery records and block-move notifications to the
/// service that created them using this id (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServiceId(u16);

impl ServiceId {
    /// Service id reserved for the log layer's own records.
    pub const LOG_LAYER: ServiceId = ServiceId(0);

    /// Creates a service id.
    pub const fn new(raw: u16) -> Self {
        ServiceId(raw)
    }

    /// Returns the raw integer value.
    pub fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc{}", self.0)
    }
}

/// Identifies an access control list on a storage server (§2.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Aid(u32);

impl Aid {
    /// The "world" ACL: every client is a member.
    pub const WORLD: Aid = Aid(0);

    /// Creates an ACL id.
    pub const fn new(raw: u32) -> Self {
        Aid(raw)
    }

    /// Returns the raw integer value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Aid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aid{}", self.0)
    }
}

/// A 64-bit fragment identifier (FID, §2.1.1).
///
/// The paper stores the log in fixed-size *fragments*, each identified by a
/// 64-bit integer. We partition the 64 bits as `client:24 | seq:40` so that
/// each client can mint fragment ids without coordinating with anyone else,
/// and so that consecutive fragments of one client's log have consecutive
/// ids — the property fragment reconstruction relies on to locate stripe
/// neighbours (§2.3.3: "numbering the fragments in the same stripe
/// consecutively").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FragmentId(u64);

impl FragmentId {
    /// Number of bits devoted to the per-client sequence number.
    pub const SEQ_BITS: u32 = 64 - ClientId::BITS;
    /// Largest representable sequence number.
    pub const MAX_SEQ: u64 = (1 << Self::SEQ_BITS) - 1;

    /// Creates a fragment id from its client and per-client sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `seq` exceeds [`FragmentId::MAX_SEQ`].
    pub fn new(client: ClientId, seq: u64) -> Self {
        assert!(seq <= Self::MAX_SEQ, "fragment seq {seq} exceeds 40 bits");
        FragmentId(((client.raw() as u64) << Self::SEQ_BITS) | seq)
    }

    /// Reconstructs a fragment id from its raw 64-bit representation.
    pub fn from_raw(raw: u64) -> Self {
        FragmentId(raw)
    }

    /// Returns the raw 64-bit representation.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the client that created this fragment.
    pub fn client(self) -> ClientId {
        ClientId::new((self.0 >> Self::SEQ_BITS) as u32)
    }

    /// Returns the position of this fragment in its client's log.
    pub fn seq(self) -> u64 {
        self.0 & Self::MAX_SEQ
    }

    /// The id of the fragment immediately after this one in the same log,
    /// or `None` at the sequence-space limit.
    pub fn next(self) -> Option<FragmentId> {
        let seq = self.seq();
        (seq < Self::MAX_SEQ).then(|| FragmentId::new(self.client(), seq + 1))
    }

    /// The id of the fragment immediately before this one in the same log,
    /// or `None` for the first fragment.
    pub fn prev(self) -> Option<FragmentId> {
        let seq = self.seq();
        (seq > 0).then(|| FragmentId::new(self.client(), seq - 1))
    }
}

impl fmt::Debug for FragmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FragmentId({}:{})", self.client(), self.seq())
    }
}

impl fmt::Display for FragmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.client(), self.seq())
    }
}

/// The position of a stripe within a client's log.
///
/// Stripe `k` of a client's log contains the fragments with sequence
/// numbers `k*w .. (k+1)*w` where `w` is the stripe width at the time the
/// stripe was written. Parity placement is rotated by this sequence number
/// (§2.1.2: "the parity fragment of successive stripes is rotated across
/// the servers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StripeSeq(u64);

impl StripeSeq {
    /// Creates a stripe sequence number.
    pub const fn new(raw: u64) -> Self {
        StripeSeq(raw)
    }

    /// Returns the raw integer value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The sequence number of the following stripe.
    pub fn next(self) -> StripeSeq {
        StripeSeq(self.0 + 1)
    }
}

impl fmt::Display for StripeSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stripe{}", self.0)
    }
}

/// The address of a byte range (usually a block) in the log (§2.1.1).
///
/// "Blocks within a fragment are addressed by an FID and an offset within
/// the fragment." We also carry the length so that a `BlockAddr` is
/// sufficient to issue a read without consulting any metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr {
    /// Fragment holding the block.
    pub fid: FragmentId,
    /// Byte offset of the block within the fragment.
    pub offset: u32,
    /// Length of the block in bytes.
    pub len: u32,
}

impl BlockAddr {
    /// Creates a block address.
    pub fn new(fid: FragmentId, offset: u32, len: u32) -> Self {
        BlockAddr { fid, offset, len }
    }

    /// First byte past the end of the block within its fragment.
    pub fn end(self) -> u32 {
        self.offset + self.len
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}+{}", self.fid, self.offset, self.len)
    }
}

macro_rules! impl_codec_newtype {
    ($ty:ty, $inner:ty, $ctor:expr) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut ByteWriter) {
                w.put_uint::<$inner>(self.raw() as u64);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
                Ok($ctor(r.get_uint::<$inner>()? as $inner))
            }
        }
    };
}

impl_codec_newtype!(ServerId, u32, ServerId::new);
impl_codec_newtype!(ServiceId, u16, ServiceId::new);
impl_codec_newtype!(Aid, u32, Aid::new);
impl_codec_newtype!(FragmentId, u64, FragmentId::from_raw);
impl_codec_newtype!(StripeSeq, u64, StripeSeq::new);

impl Encode for ClientId {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.0);
    }
}

impl Decode for ClientId {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let raw = r.get_u32()?;
        if raw > ClientId::MAX {
            return Err(crate::error::SwarmError::corrupt(format!(
                "client id {raw} exceeds 24 bits"
            )));
        }
        Ok(ClientId(raw))
    }
}

impl Encode for BlockAddr {
    fn encode(&self, w: &mut ByteWriter) {
        self.fid.encode(w);
        w.put_u32(self.offset);
        w.put_u32(self.len);
    }
}

impl Decode for BlockAddr {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(BlockAddr {
            fid: FragmentId::decode(r)?,
            offset: r.get_u32()?,
            len: r.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_id_packs_client_and_seq() {
        let fid = FragmentId::new(ClientId::new(3), 99);
        assert_eq!(fid.client(), ClientId::new(3));
        assert_eq!(fid.seq(), 99);
    }

    #[test]
    fn fragment_id_roundtrips_raw() {
        let fid = FragmentId::new(ClientId::new(ClientId::MAX), FragmentId::MAX_SEQ);
        assert_eq!(FragmentId::from_raw(fid.raw()), fid);
        assert_eq!(fid.client().raw(), ClientId::MAX);
        assert_eq!(fid.seq(), FragmentId::MAX_SEQ);
    }

    #[test]
    fn fragment_id_neighbours() {
        let fid = FragmentId::new(ClientId::new(1), 5);
        assert_eq!(fid.next().unwrap().seq(), 6);
        assert_eq!(fid.prev().unwrap().seq(), 4);
        let first = FragmentId::new(ClientId::new(1), 0);
        assert_eq!(first.prev(), None);
        let last = FragmentId::new(ClientId::new(1), FragmentId::MAX_SEQ);
        assert_eq!(last.next(), None);
    }

    #[test]
    #[should_panic(expected = "exceeds 24 bits")]
    fn client_id_rejects_overflow() {
        ClientId::new(ClientId::MAX + 1);
    }

    #[test]
    fn fragment_ids_of_one_client_are_ordered_by_seq() {
        let a = FragmentId::new(ClientId::new(2), 1);
        let b = FragmentId::new(ClientId::new(2), 2);
        assert!(a < b);
    }

    #[test]
    fn block_addr_end() {
        let addr = BlockAddr::new(FragmentId::new(ClientId::new(0), 0), 100, 28);
        assert_eq!(addr.end(), 128);
    }

    #[test]
    fn display_is_compact() {
        let fid = FragmentId::new(ClientId::new(4), 17);
        assert_eq!(fid.to_string(), "c4/17");
        let addr = BlockAddr::new(fid, 8, 4);
        assert_eq!(addr.to_string(), "c4/17@8+4");
    }

    #[test]
    fn codec_roundtrip_all_ids() {
        let mut w = ByteWriter::new();
        let fid = FragmentId::new(ClientId::new(9), 1234);
        let addr = BlockAddr::new(fid, 77, 88);
        ClientId::new(12).encode(&mut w);
        ServerId::new(34).encode(&mut w);
        ServiceId::new(56).encode(&mut w);
        Aid::new(78).encode(&mut w);
        fid.encode(&mut w);
        StripeSeq::new(90).encode(&mut w);
        addr.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(ClientId::decode(&mut r).unwrap(), ClientId::new(12));
        assert_eq!(ServerId::decode(&mut r).unwrap(), ServerId::new(34));
        assert_eq!(ServiceId::decode(&mut r).unwrap(), ServiceId::new(56));
        assert_eq!(Aid::decode(&mut r).unwrap(), Aid::new(78));
        assert_eq!(FragmentId::decode(&mut r).unwrap(), fid);
        assert_eq!(StripeSeq::decode(&mut r).unwrap(), StripeSeq::new(90));
        assert_eq!(BlockAddr::decode(&mut r).unwrap(), addr);
        assert!(r.is_empty());
    }
}
