//! The workspace-wide error type.

use std::fmt;
use std::io;

use crate::id::{Aid, BlockAddr, FragmentId, ServerId};

/// Convenient result alias used across the Swarm workspace.
pub type Result<T> = std::result::Result<T, SwarmError>;

/// Errors produced anywhere in the Swarm storage system.
///
/// The variants mirror the failure domains of the paper's architecture:
/// I/O on a storage server's disk, the network between client and servers,
/// corrupt or truncated on-disk/on-wire data, protocol violations, access
/// control denials, and unavailability that the striping layer may be able
/// to mask via reconstruction.
#[derive(Debug)]
#[non_exhaustive]
pub enum SwarmError {
    /// Underlying disk or file I/O failed.
    Io(io::Error),
    /// Data failed validation (bad checksum, truncated structure, bad magic).
    Corrupt(String),
    /// A peer spoke the protocol incorrectly.
    Protocol(String),
    /// The requested fragment does not exist on the contacted server.
    FragmentNotFound(FragmentId),
    /// A read extended past the end of the stored fragment data.
    RangeOutOfBounds {
        /// The offending address.
        addr: BlockAddr,
        /// Bytes actually stored for that fragment.
        stored: u32,
    },
    /// A fragment with this id has already been stored (fragments are
    /// immutable once written; §2.1.1).
    FragmentExists(FragmentId),
    /// The client is not a member of the ACL protecting the byte range.
    AccessDenied {
        /// ACL that denied the request.
        aid: Aid,
        /// What the client attempted.
        op: &'static str,
    },
    /// No ACL with this id exists on the server.
    AclNotFound(Aid),
    /// The server is unreachable or has crashed.
    ServerUnavailable(ServerId),
    /// The server is up but refused admission: its fair-queueing layer
    /// bounded this client's backlog. Retryable pushback, not a failure —
    /// the writer backs off and resubmits on the same connection.
    Busy(ServerId),
    /// Not enough surviving fragments in the stripe to reconstruct.
    ReconstructionFailed {
        /// Fragment we tried to rebuild.
        fid: FragmentId,
        /// Human-readable reason (which peers were missing, …).
        reason: String,
    },
    /// The log has run out of free stripes and the cleaner cannot free any
    /// (e.g. a service refuses to checkpoint; §2.1.4).
    OutOfSpace(String),
    /// An operation was attempted on a closed or shut-down component.
    Closed(&'static str),
    /// Invalid argument or configuration supplied by the caller.
    InvalidArgument(String),
    /// Anything that does not fit the categories above.
    Other(String),
}

impl SwarmError {
    /// Builds a [`SwarmError::Corrupt`] from anything displayable.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        SwarmError::Corrupt(msg.into())
    }

    /// Builds a [`SwarmError::Protocol`] from anything displayable.
    pub fn protocol(msg: impl Into<String>) -> Self {
        SwarmError::Protocol(msg.into())
    }

    /// Builds a [`SwarmError::InvalidArgument`] from anything displayable.
    pub fn invalid(msg: impl Into<String>) -> Self {
        SwarmError::InvalidArgument(msg.into())
    }

    /// Builds a [`SwarmError::Other`] from anything displayable.
    pub fn other(msg: impl Into<String>) -> Self {
        SwarmError::Other(msg.into())
    }

    /// `true` if retrying against a different replica/server could succeed
    /// (used by the read path to decide whether to attempt reconstruction).
    pub fn is_unavailability(&self) -> bool {
        matches!(
            self,
            SwarmError::ServerUnavailable(_) | SwarmError::FragmentNotFound(_) | SwarmError::Io(_)
        )
    }
}

impl fmt::Display for SwarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwarmError::Io(e) => write!(f, "i/o error: {e}"),
            SwarmError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            SwarmError::Protocol(m) => write!(f, "protocol violation: {m}"),
            SwarmError::FragmentNotFound(fid) => write!(f, "fragment {fid} not found"),
            SwarmError::RangeOutOfBounds { addr, stored } => {
                write!(
                    f,
                    "range {addr} out of bounds (fragment holds {stored} bytes)"
                )
            }
            SwarmError::FragmentExists(fid) => write!(f, "fragment {fid} already stored"),
            SwarmError::AccessDenied { aid, op } => {
                write!(f, "access denied by {aid} for {op}")
            }
            SwarmError::AclNotFound(aid) => write!(f, "no such acl {aid}"),
            SwarmError::ServerUnavailable(s) => write!(f, "server {s} unavailable"),
            SwarmError::Busy(s) => write!(f, "server {s} busy (admission throttled)"),
            SwarmError::ReconstructionFailed { fid, reason } => {
                write!(f, "cannot reconstruct fragment {fid}: {reason}")
            }
            SwarmError::OutOfSpace(m) => write!(f, "out of log space: {m}"),
            SwarmError::Closed(what) => write!(f, "{what} is closed"),
            SwarmError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            SwarmError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SwarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwarmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SwarmError {
    fn from(e: io::Error) -> Self {
        SwarmError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ClientId;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SwarmError>();
    }

    #[test]
    fn display_mentions_the_fragment() {
        let fid = FragmentId::new(ClientId::new(1), 9);
        let msg = SwarmError::FragmentNotFound(fid).to_string();
        assert!(msg.contains("c1/9"), "{msg}");
    }

    #[test]
    fn io_errors_convert() {
        let e: SwarmError = io::Error::new(io::ErrorKind::NotFound, "x").into();
        assert!(matches!(e, SwarmError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn unavailability_classification() {
        assert!(SwarmError::ServerUnavailable(ServerId::new(0)).is_unavailability());
        assert!(!SwarmError::corrupt("x").is_unavailability());
    }
}
