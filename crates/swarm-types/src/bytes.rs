//! Cheaply-shareable immutable byte buffers.
//!
//! The store path moves 1 MB fragments from the log writer through the
//! codec, the framing layer, and into the server stores. Before this type
//! existed each hop cloned the payload; [`Bytes`] is an `Arc<Vec<u8>>`
//! plus a byte range, so every layer holds a view of the *same*
//! allocation. Slicing ([`Bytes::slice`]) and sharing ([`Bytes::share`])
//! are O(1) and never copy.
//!
//! The buffer is immutable once wrapped: mutation requires [`Bytes::to_vec`]
//! (an explicit copy), which keeps aliasing sound without `unsafe`.
//!
//! # Example
//!
//! ```
//! use swarm_types::Bytes;
//!
//! let b = Bytes::from(vec![1u8, 2, 3, 4]);
//! let tail = b.slice(2..);
//! assert_eq!(&tail[..], &[3, 4]);
//! // `tail` views the same allocation as `b`:
//! assert_eq!(tail.as_ptr(), b[2..].as_ptr());
//! ```

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer with O(1) slicing.
///
/// `Clone` (and its named alias [`Bytes::share`]) copies only the
/// refcount and range, never the bytes. Dereferences to `[u8]`, so all
/// slice methods (`len`, indexing, `as_ptr`, iteration) work directly.
#[derive(Clone)]
pub struct Bytes {
    arc: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared, but none is needed).
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Returns another handle to the same underlying allocation.
    ///
    /// Identical to `clone()`, but named so hot paths read as what they
    /// are: sharing a buffer, not copying one.
    pub fn share(&self) -> Bytes {
        self.clone()
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if this view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of this buffer without copying.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted, matching slice
    /// indexing semantics.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            start <= end && end <= len,
            "slice {start}..{end} out of range for Bytes of len {len}"
        );
        Bytes {
            arc: Arc::clone(&self.arc),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// The bytes as a plain slice (also available via `Deref`).
    pub fn as_slice(&self) -> &[u8] {
        &self.arc[self.start..self.end]
    }

    /// Copies this view into an owned `Vec<u8>`.
    ///
    /// The only way to get mutable bytes back out — copies are explicit.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Wraps an owned vector without copying it.
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            arc: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    /// Copies a borrowed slice into a fresh buffer.
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    /// Copies a borrowed array into a fresh buffer (handy for literals).
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::from(s.as_slice().to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes", self.len())?;
        if self.len() <= 16 {
            write!(f, ": {:02x?}", self.as_slice())?;
        }
        write!(f, ")")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<Bytes> for [u8; N] {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_and_slice_alias_one_allocation() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.share();
        assert_eq!(b.as_ptr(), s.as_ptr());
        let mid = b.slice(2..6);
        assert_eq!(mid, [2u8, 3, 4, 5]);
        assert_eq!(mid.as_ptr(), b[2..].as_ptr());
        let inner = mid.slice(1..=2);
        assert_eq!(inner, [3u8, 4]);
        assert_eq!(inner.as_ptr(), b[3..].as_ptr());
    }

    #[test]
    fn equality_across_shapes() {
        let b = Bytes::from(b"hello");
        assert_eq!(b, *b"hello");
        assert_eq!(b, b"hello");
        assert_eq!(b, b"hello".to_vec());
        assert_eq!(b"hello".to_vec(), b);
        assert_eq!(b, &b"hello"[..]);
        assert_eq!(b, Bytes::from(b"hello".to_vec()));
        assert_ne!(b, Bytes::from(b"world".to_vec()));
    }

    #[test]
    fn empty_and_default() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
        let b = Bytes::from(vec![1u8]);
        let empty = b.slice(1..1);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![0u8; 4]).slice(2..8);
    }

    #[test]
    fn to_vec_copies() {
        let b = Bytes::from(vec![9u8; 32]);
        let v = b.to_vec();
        assert_eq!(v, b);
        assert_ne!(v.as_ptr(), b.as_ptr());
    }

    #[test]
    fn debug_is_compact() {
        let short = format!("{:?}", Bytes::from(b"ab"));
        assert!(short.contains("2 bytes"), "{short}");
        let long = format!("{:?}", Bytes::from(vec![0u8; 1024]));
        assert!(long.contains("1024 bytes"), "{long}");
        assert!(long.len() < 64, "{long}");
    }
}
