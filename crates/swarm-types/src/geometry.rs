//! Stripe geometry: how many data and parity members a stripe has.
//!
//! The paper's prototype stripes `k` data fragments with a single rotated
//! XOR parity (§2.1.2) — geometry `k+1`. Generalized Reed–Solomon stripes
//! keep the same rotation and fragment format but seal `m` parity members
//! per stripe, surviving any `m` concurrent member losses. Geometry is
//! written `k+m` everywhere user-facing (`4+2` = 4 data + 2 parity), and
//! `k+1` stays the default so the paper-faithful path is untouched.

use std::fmt;
use std::str::FromStr;

use crate::constants::{MAX_PARITY, MAX_STRIPE_WIDTH};
use crate::error::{Result, SwarmError};

/// A validated `(data, parity)` stripe shape.
///
/// Width (`data + parity`) is the stripe-group size: every member lives on
/// its own server. `parity == 1` is the paper's XOR configuration;
/// `parity > 1` selects the GF(2^8) Reed–Solomon kernel whose first parity
/// row is the same XOR (so `m = 1` RS is bit-identical to XOR parity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    data: u8,
    parity: u8,
}

impl Geometry {
    /// Creates a geometry of `data` data members and `parity` parity
    /// members per stripe.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] unless `data >= 1`,
    /// `1 <= parity <= MAX_PARITY`, and the total width fits in
    /// [`MAX_STRIPE_WIDTH`].
    pub fn new(data: u8, parity: u8) -> Result<Geometry> {
        if data == 0 {
            return Err(SwarmError::invalid("geometry needs at least 1 data member"));
        }
        if parity == 0 {
            return Err(SwarmError::invalid(
                "geometry needs at least 1 parity member",
            ));
        }
        if parity as usize > MAX_PARITY {
            return Err(SwarmError::invalid(format!(
                "{parity} parity members exceeds maximum {MAX_PARITY}"
            )));
        }
        let width = data as usize + parity as usize;
        if width > MAX_STRIPE_WIDTH {
            return Err(SwarmError::invalid(format!(
                "geometry {data}+{parity} exceeds maximum stripe width {MAX_STRIPE_WIDTH}"
            )));
        }
        Ok(Geometry { data, parity })
    }

    /// The paper's default shape for a `width`-server group: one XOR
    /// parity, `width - 1` data members.
    ///
    /// # Errors
    ///
    /// As for [`Geometry::new`] (`width` must be 2..=[`MAX_STRIPE_WIDTH`]).
    pub fn xor(width: u8) -> Result<Geometry> {
        if width < 2 {
            return Err(SwarmError::invalid(
                "a stripe needs at least 2 members (1 data + 1 parity)",
            ));
        }
        Geometry::new(width - 1, 1)
    }

    /// Number of data members per stripe (`k`).
    pub fn data(&self) -> u8 {
        self.data
    }

    /// Number of parity members per stripe (`m`).
    pub fn parity(&self) -> u8 {
        self.parity
    }

    /// Stripe width: data + parity (= servers per stripe group).
    pub fn width(&self) -> u8 {
        self.data + self.parity
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.data, self.parity)
    }
}

impl FromStr for Geometry {
    type Err = SwarmError;

    /// Parses the `k+m` form used by CLI flags (`3+1`, `4+2`, `8+3`).
    fn from_str(s: &str) -> Result<Geometry> {
        let (k, m) = s
            .split_once('+')
            .ok_or_else(|| SwarmError::invalid(format!("geometry {s:?} wants the form k+m")))?;
        let k: u8 = k
            .trim()
            .parse()
            .map_err(|e| SwarmError::invalid(format!("geometry {s:?}: bad data count: {e}")))?;
        let m: u8 = m
            .trim()
            .parse()
            .map_err(|e| SwarmError::invalid(format!("geometry {s:?}: bad parity count: {e}")))?;
        Geometry::new(k, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for text in ["1+1", "3+1", "4+2", "8+3", "61+3"] {
            let g: Geometry = text.parse().unwrap();
            assert_eq!(g.to_string(), text);
            assert_eq!(g.width() as usize, g.data() as usize + g.parity() as usize);
        }
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(Geometry::new(0, 1).is_err());
        assert!(Geometry::new(4, 0).is_err());
        assert!(Geometry::new(4, MAX_PARITY as u8 + 1).is_err());
        assert!(Geometry::new(62, 3).is_err()); // width 65 > 64
        assert!("4".parse::<Geometry>().is_err());
        assert!("4+".parse::<Geometry>().is_err());
        assert!("+2".parse::<Geometry>().is_err());
        assert!("4-2".parse::<Geometry>().is_err());
    }

    #[test]
    fn xor_default_is_single_parity() {
        let g = Geometry::xor(4).unwrap();
        assert_eq!((g.data(), g.parity()), (3, 1));
        assert!(Geometry::xor(1).is_err());
    }
}
