//! Process-wide metrics for Swarm: counters, gauges, and latency
//! histograms, plus a lightweight tracing facility.
//!
//! Every metric lives in one global registry keyed by a static name, so a
//! storage server, a client log, and the cleaner all contribute to the same
//! process snapshot — which is exactly what the `Metrics` RPC returns and
//! `swarm_admin stats` prints.
//!
//! Handles are cheap: a [`Counter`] is an `Arc<AtomicU64>`, and call sites
//! look a metric up once (typically through a `OnceLock`-backed struct) and
//! then record lock-free. [`snapshot`] walks the registry and produces a
//! [`Snapshot`] that serializes to JSON with no external dependencies.
//!
//! Tracing: [`Span`] measures a region and records its duration into a
//! histogram on drop; the [`trace!`] macro emits env-gated diagnostics
//! (`SWARM_TRACE=1` for everything, or a comma-separated list of target
//! prefixes such as `SWARM_TRACE=net,log.seal`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of power-of-two latency buckets; bucket `i` covers
/// `[2^(i-1), 2^i)` microseconds, bucket 0 is `< 1us`, and the last bucket
/// is open-ended (≈ 34 minutes and beyond).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depths, open connections).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

/// A latency histogram over fixed power-of-two microsecond buckets.
///
/// `record` is three relaxed atomic adds plus a max update — cheap enough
/// for per-fragment and per-request paths.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Creates a histogram that is NOT in the global registry.
    ///
    /// Detached histograms are for per-run measurement (e.g. a benchmark
    /// driver that wants one histogram per worker thread, merged at the
    /// end) where polluting the process-wide snapshot would be wrong.
    pub fn detached() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }))
    }

    /// Folds every observation recorded in `other` into `self`.
    ///
    /// Bucket counts are additive and the max is a max, so merging N
    /// per-thread histograms yields exactly the histogram a single shared
    /// one would have produced.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.0
            .count
            .fetch_add(other.0.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .sum_us
            .fetch_add(other.0.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .max_us
            .fetch_max(other.0.max_us.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn bucket_index(us: u64) -> usize {
        // 0 -> 0, 1 -> 1, 2..3 -> 2, ..., clamped to the open-ended top.
        ((64 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Upper bound (exclusive) of bucket `i` in microseconds.
    fn bucket_bound(i: usize) -> u64 {
        1u64 << i
    }

    /// Records one observation of `us` microseconds.
    pub fn record_us(&self, us: u64) {
        let inner = &self.0;
        inner.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum_us.fetch_add(us, Ordering::Relaxed);
        inner.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records one observation of an elapsed duration.
    pub fn record(&self, elapsed: std::time::Duration) {
        self.record_us(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Starts a [`Span`] that records into this histogram when dropped.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            name,
            hist: Some(self.clone()),
            start: Instant::now(),
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Rolls the current bucket counts up into quantile bounds.
    pub fn summarize(&self) -> HistogramSummary {
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Quantiles come from the bucket walk, so they are upper bounds
        // with power-of-two resolution — fine for p50/p99 reporting.
        let count: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return Self::bucket_bound(i);
                }
            }
            Self::bucket_bound(HISTOGRAM_BUCKETS - 1)
        };
        HistogramSummary {
            count,
            sum_us: self.0.sum_us.load(Ordering::Relaxed),
            max_us: self.0.max_us.load(Ordering::Relaxed),
            p50_us: quantile(0.50),
            p99_us: quantile(0.99),
            p999_us: quantile(0.999),
        }
    }
}

/// Point-in-time rollup of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations, microseconds.
    pub sum_us: u64,
    /// Largest observation, microseconds.
    pub max_us: u64,
    /// Median upper bound, microseconds (power-of-two resolution).
    pub p50_us: u64,
    /// 99th-percentile upper bound, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile upper bound, microseconds.
    pub p999_us: u64,
}

impl HistogramSummary {
    /// Mean observation in microseconds, or 0 with no data.
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

/// A timed region: records its lifetime into a histogram on drop and emits
/// a `trace!`-style line when tracing is enabled for its name.
pub struct Span {
    name: &'static str,
    hist: Option<Histogram>,
    start: Instant,
}

impl Span {
    /// Elapsed time since the span started.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        if let Some(h) = self.hist.take() {
            h.record(elapsed);
        }
        if trace_enabled(self.name) {
            eprintln!("[swarm-trace] {} {:?}", self.name, elapsed);
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn poison_ok<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(|e| e.into_inner())
}

/// Returns the counter named `name`, registering it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &'static str) -> Counter {
    let mut reg = poison_ok(registry().lock());
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Returns the gauge named `name`, registering it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &'static str) -> Gauge {
    let mut reg = poison_ok(registry().lock());
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0)))))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Returns the histogram named `name`, registering it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &'static str) -> Histogram {
    let mut reg = poison_ok(registry().lock());
    match reg.entry(name).or_insert_with(|| {
        Metric::Histogram(Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        })))
    }) {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram rollups by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// Value of a counter, defaulting to 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Rollup of a histogram, if it has been registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Serializes the snapshot as a stable, human-readable JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, self.gauges.iter(), |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\n  \"histograms\": {");
        push_entries(&mut out, self.histograms.iter(), |out, h| {
            out.push_str(&format!(
                "{{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}}}",
                h.count,
                h.mean_us(),
                h.p50_us,
                h.p99_us,
                h.p999_us,
                h.max_us
            ))
        });
        out.push_str("}\n}");
        out
    }

    /// Parses a snapshot previously produced by [`Snapshot::to_json`].
    ///
    /// This is intentionally a parser for our own output format (plus
    /// insignificant whitespace), not a general JSON parser; it lets the
    /// admin CLI and tests inspect values shipped over the `Metrics` RPC.
    pub fn from_json(text: &str) -> Option<Snapshot> {
        let mut p = JsonParser {
            s: text.as_bytes(),
            i: 0,
        };
        let snap = p.snapshot()?;
        p.skip_ws();
        if p.i == p.s.len() {
            Some(snap)
        } else {
            None
        }
    }
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut render: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (name, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        for c in name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str("\": ");
        render(out, value);
    }
    if !first {
        out.push_str("\n  ");
    }
}

struct JsonParser<'a> {
    s: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.s.get(self.i) == Some(&b) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match *self.s.get(self.i)? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match *self.s.get(self.i)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'u' => {
                            let hex = self.s.get(self.i + 1..self.i + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.s.len() && self.s[self.i] & 0xc0 == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.s[start..self.i]).ok()?);
                }
            }
        }
    }

    fn integer(&mut self) -> Option<i128> {
        self.skip_ws();
        let start = self.i;
        if self.s.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()?
            .parse()
            .ok()
    }

    fn object<F: FnMut(&mut Self, String) -> Option<()>>(&mut self, mut field: F) -> Option<()> {
        self.eat(b'{')?;
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Some(());
        }
        loop {
            let name = self.string()?;
            self.eat(b':')?;
            field(self, name)?;
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Some(());
                }
                _ => return None,
            }
        }
    }

    fn snapshot(&mut self) -> Option<Snapshot> {
        let mut snap = Snapshot::default();
        self.object(|p, section| match section.as_str() {
            "counters" => p.object(|p, name| {
                let v = p.integer()?;
                snap.counters.insert(name, u64::try_from(v).ok()?);
                Some(())
            }),
            "gauges" => p.object(|p, name| {
                let v = p.integer()?;
                snap.gauges.insert(name, i64::try_from(v).ok()?);
                Some(())
            }),
            "histograms" => p.object(|p, name| {
                let mut h = HistogramSummary {
                    count: 0,
                    sum_us: 0,
                    max_us: 0,
                    p50_us: 0,
                    p99_us: 0,
                    p999_us: 0,
                };
                let mut mean = 0u64;
                p.object(|p, field| {
                    let v = u64::try_from(p.integer()?).ok()?;
                    match field.as_str() {
                        "count" => h.count = v,
                        "mean_us" => mean = v,
                        "p50_us" => h.p50_us = v,
                        "p99_us" => h.p99_us = v,
                        "p999_us" => h.p999_us = v,
                        "max_us" => h.max_us = v,
                        _ => return None,
                    }
                    Some(())
                })?;
                h.sum_us = mean.saturating_mul(h.count);
                snap.histograms.insert(name, h);
                Some(())
            }),
            _ => None,
        })?;
        Some(snap)
    }
}

/// Captures the current value of every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = poison_ok(registry().lock());
    let mut snap = Snapshot::default();
    for (&name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => {
                snap.counters.insert(name.to_string(), c.get());
            }
            Metric::Gauge(g) => {
                snap.gauges.insert(name.to_string(), g.get());
            }
            Metric::Histogram(h) => {
                snap.histograms.insert(name.to_string(), h.summarize());
            }
        }
    }
    snap
}

fn trace_filter() -> &'static Option<Vec<String>> {
    static FILTER: OnceLock<Option<Vec<String>>> = OnceLock::new();
    FILTER.get_or_init(|| {
        let raw = std::env::var("SWARM_TRACE").ok()?;
        if raw.is_empty() || raw == "0" {
            return None;
        }
        Some(
            raw.split(',')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .map(str::to_string)
                .collect(),
        )
    })
}

/// Whether tracing is enabled for `target` (via `SWARM_TRACE`; the value
/// `1` enables everything, otherwise targets match by prefix).
pub fn trace_enabled(target: &str) -> bool {
    match trace_filter() {
        None => false,
        Some(filters) => filters
            .iter()
            .any(|f| f == "1" || target.starts_with(f.as_str())),
    }
}

/// Emits a diagnostic line to stderr when tracing is enabled for `target`.
///
/// ```
/// swarm_metrics::trace!("net.reconnect", "server {} attempt {}", 3, 1);
/// ```
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)*) => {
        if $crate::trace_enabled($target) {
            eprintln!("[swarm-trace] {} {}", $target, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = counter("test_counter");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(counter("test_counter").get(), before + 5);

        let g = gauge("test_gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(gauge("test_gauge").get(), 4);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = histogram("test_hist");
        for _ in 0..99 {
            h.record_us(100);
        }
        h.record_us(100_000);
        let s = h.summarize();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, 100_000);
        // 100us falls in the (64, 128] bucket -> p50 bound 128.
        assert_eq!(s.p50_us, 128);
        assert!(
            s.p99_us <= 128,
            "p99 {} should exclude the outlier",
            s.p99_us
        );
        assert!(s.mean_us() >= 100);
    }

    #[test]
    fn span_records_into_histogram() {
        let h = histogram("test_span_hist");
        let before = h.count();
        {
            let _span = h.span("test.span");
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        assert_eq!(h.count(), before + 1);
    }

    #[test]
    fn snapshot_json_roundtrips() {
        counter("test_json_counter").add(42);
        gauge("test_json_gauge").set(-7);
        histogram("test_json_hist").record_us(1000);
        let snap = snapshot();
        let json = snap.to_json();
        let parsed = Snapshot::from_json(&json).expect("parse own output");
        assert_eq!(
            parsed.counter("test_json_counter"),
            snap.counter("test_json_counter")
        );
        assert_eq!(
            parsed.gauges.get("test_json_gauge"),
            snap.gauges.get("test_json_gauge")
        );
        let (a, b) = (
            parsed.histogram("test_json_hist").unwrap(),
            snap.histogram("test_json_hist").unwrap(),
        );
        assert_eq!(a.count, b.count);
        assert_eq!(a.p99_us, b.p99_us);
        assert!(json.contains("\"counters\""));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Snapshot::from_json("not json").is_none());
        assert!(Snapshot::from_json("{\"counters\": {}").is_none());
        assert_eq!(
            Snapshot::from_json("{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}"),
            Some(Snapshot::default())
        );
    }

    #[test]
    fn detached_histograms_merge_like_a_shared_one() {
        let shared = Histogram::detached();
        let parts: Vec<Histogram> = (0..4).map(|_| Histogram::detached()).collect();
        for (i, part) in parts.iter().enumerate() {
            for k in 0..250 {
                let us = (i as u64 + 1) * 100 + k;
                part.record_us(us);
                shared.record_us(us);
            }
        }
        let merged = Histogram::detached();
        for part in &parts {
            merged.merge(part);
        }
        assert_eq!(merged.summarize(), shared.summarize());
        // Detached histograms must never leak into the global snapshot.
        assert!(!snapshot().histograms.values().any(|h| h.count == 1000));
    }

    #[test]
    fn p999_sits_between_p99_and_max() {
        let h = Histogram::detached();
        for _ in 0..9_980 {
            h.record_us(100);
        }
        for _ in 0..19 {
            h.record_us(10_000);
        }
        h.record_us(1_000_000);
        let s = h.summarize();
        assert_eq!(s.count, 10_000);
        assert!(s.p99_us <= 128, "p99 {}", s.p99_us);
        assert!(
            s.p999_us > s.p99_us && s.p999_us <= 16_384,
            "p999 {} should capture the 10ms stragglers",
            s.p999_us
        );
        assert_eq!(s.max_us, 1_000_000);
    }

    #[test]
    fn bucket_index_is_monotonic() {
        let mut last = 0;
        for us in [0u64, 1, 2, 3, 64, 1000, 1_000_000, u64::MAX] {
            let idx = Histogram::bucket_index(us);
            assert!(idx >= last);
            assert!(idx < HISTOGRAM_BUCKETS);
            last = idx;
        }
    }
}
