//! YCSB-style workload driver (DESIGN.md §15.4).
//!
//! Reproduces the shape of the YCSB core workloads against a Swarm log:
//! zipfian/uniform key choice, read/update/insert mixes, closed-loop or
//! open-loop arrival, and per-op latency percentiles from
//! [`swarm_metrics::Histogram`]s. Each driver thread is its own Swarm
//! client (own `ClientId`, own [`Log`], own transport instance from a
//! [`TransportFactory`]), so "8 threads" means 8 real clients — eight
//! workstations multiplexing onto the cluster exactly as the paper's
//! did, not eight threads queueing on one client-side reactor.
//!
//! The update/insert path is a log write: the new version is staged and
//! only becomes readable once a flush covers it (read-committed), so
//! reads never chase an address whose fragment is still open
//! client-side. Latency of a flush is attributed to the operation that
//! triggered it — the honest accounting for a log-structured client.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use swarm_log::{Log, LogConfig};
use swarm_metrics::{Histogram, HistogramSummary};
use swarm_net::Transport;
use swarm_types::{BlockAddr, ClientId, Result, ServerId, ServiceId, SwarmError};

/// Service id the driver writes blocks under.
pub const YCSB_SERVICE: ServiceId = ServiceId::new(9);

/// xorshift64* — deterministic, seedable, no dependencies.
pub struct Rng64(u64);

impl Rng64 {
    /// A generator seeded from `seed` (0 is remapped; the state must be
    /// non-zero).
    pub fn new(seed: u64) -> Rng64 {
        Rng64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// YCSB's zipfian generator (theta 0.99) with rank scrambling, so the
/// hot keys are spread across the keyspace instead of clustered at the
/// low indices.
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// YCSB's default skew.
    pub const THETA: f64 = 0.99;

    /// A generator over ranks `0..items`.
    pub fn new(items: u64) -> Zipfian {
        let items = items.max(1);
        let theta = Self::THETA;
        let zeta = |n: u64| (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum::<f64>();
        let zetan = zeta(items);
        let zeta2 = zeta(2.min(items));
        Zipfian {
            items,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Next rank in `0..items` (0 is the hottest).
    pub fn next_rank(&self, rng: &mut Rng64) -> u64 {
        if self.items == 1 {
            return 0;
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.items - 1)
    }

    /// Next key: the rank scrambled over `0..items` (splitmix-style
    /// finalizer, as YCSB's `ScrambledZipfian` hashes its ranks).
    pub fn next_key(&self, rng: &mut Rng64) -> u64 {
        let mut z = self.next_rank(rng).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % self.items
    }
}

/// How keys are drawn from the live keyspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    /// YCSB scrambled zipfian, theta 0.99.
    Zipfian,
    /// Uniform over the live keys.
    Uniform,
    /// YCSB's "latest" distribution: a zipfian over recency, so the most
    /// recently inserted keys are the hottest (workload D's read side).
    Latest,
}

/// Longest scan in records; YCSB core E draws the length uniformly.
pub const MAX_SCAN_LEN: usize = 16;

/// A read/scan/update/insert mix over a key distribution.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Workload name (the `BENCH_ycsb_<name>.json` suffix).
    pub name: &'static str,
    /// Percent of operations that read an existing key.
    pub read_pct: u32,
    /// Percent that scan a short run of keys starting at a drawn key
    /// (`read_many`, batched over the wire).
    pub scan_pct: u32,
    /// Percent that rewrite an existing key (log append + readdress).
    pub update_pct: u32,
    /// Remainder: inserts of fresh keys.
    pub dist: KeyDist,
}

impl Workload {
    /// The driver's workload table: YCSB core A/B/C/D/E plus the
    /// pure-insert `write` workload the pipelining scoreboard is judged
    /// on.
    pub fn all() -> &'static [Workload] {
        &[
            Workload {
                name: "a",
                read_pct: 50,
                scan_pct: 0,
                update_pct: 50,
                dist: KeyDist::Zipfian,
            },
            Workload {
                name: "b",
                read_pct: 95,
                scan_pct: 0,
                update_pct: 5,
                dist: KeyDist::Zipfian,
            },
            Workload {
                name: "c",
                read_pct: 100,
                scan_pct: 0,
                update_pct: 0,
                dist: KeyDist::Zipfian,
            },
            // YCSB D: read latest. 95% reads skewed to recent inserts,
            // 5% inserts of fresh keys.
            Workload {
                name: "d",
                read_pct: 95,
                scan_pct: 0,
                update_pct: 0,
                dist: KeyDist::Latest,
            },
            // YCSB E: short ranges. 95% scans of 1..=MAX_SCAN_LEN records
            // (served by the batched read path), 5% inserts.
            Workload {
                name: "e",
                read_pct: 0,
                scan_pct: 95,
                update_pct: 0,
                dist: KeyDist::Zipfian,
            },
            Workload {
                name: "write",
                read_pct: 0,
                scan_pct: 0,
                update_pct: 0,
                dist: KeyDist::Uniform,
            },
        ]
    }

    /// Looks a workload up by name.
    pub fn named(name: &str) -> Option<Workload> {
        Self::all().iter().copied().find(|w| w.name == name)
    }
}

/// One driver run: thread count, write window, and op counts.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Concurrent clients (each its own `ClientId` + [`Log`]).
    pub threads: usize,
    /// Pipelining window, applied to both sides of the client
    /// ([`LogConfig::write_window`] and [`LogConfig::read_window`]) so a
    /// scoreboard cell exercises one depth end to end.
    pub window: usize,
    /// Records preloaded per thread before the timed phase.
    pub records: usize,
    /// Timed operations per thread.
    pub ops: usize,
    /// Value size in bytes (YCSB default shape: 4 KiB here).
    pub value_bytes: usize,
    /// Client fragment size. Small enough that a batch of ops seals
    /// several stripes, so each server channel has a window's worth of
    /// stores outstanding between flushes.
    pub fragment_bytes: usize,
    /// Flush (group durability point) every this many ops.
    pub flush_every: usize,
    /// Open-loop arrival rate per thread in ops/s; `None` = closed loop.
    pub rate: Option<f64>,
    /// Stripe group size (servers 0..n).
    pub servers: u32,
    /// Stripe geometry over those servers; `None` keeps the default
    /// single-XOR-parity layout ((servers-1)+1). A `Some` geometry must
    /// have `width() == servers`; m=1 is bit-identical to the default.
    pub geometry: Option<swarm_types::Geometry>,
    /// Base RNG seed; thread `t` runs with `seed + t`.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            threads: 1,
            window: swarm_log::DEFAULT_WRITE_WINDOW,
            records: 200,
            ops: 1000,
            value_bytes: 4096,
            fragment_bytes: 16 * 1024,
            flush_every: 128,
            rate: None,
            servers: 5,
            geometry: None,
            seed: 42,
        }
    }
}

/// The outcome of one `(workload, threads, window)` cell.
pub struct RunResult {
    /// Total timed operations across all threads.
    pub ops: u64,
    /// Wall-clock of the timed phase.
    pub elapsed: Duration,
    /// Per-op latency, merged across threads.
    pub latency: Histogram,
}

impl RunResult {
    /// Aggregate throughput in operations per second.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Latency percentile rollup.
    pub fn summary(&self) -> HistogramSummary {
        self.latency.summarize()
    }
}

fn log_config(client: u32, cfg: &RunConfig) -> Result<LogConfig> {
    let config = LogConfig::new(
        ClientId::new(client),
        (0..cfg.servers).map(ServerId::new).collect(),
    )?
    .fragment_size(cfg.fragment_bytes)
    // Reads must hit the servers, not a client cache.
    .cache_fragments(0)
    .write_window(cfg.window)
    .read_window(cfg.window)
    // Enough queue that the window, not the queue, is the limiter.
    .queue_depth(cfg.window.max(2) * 2);
    match cfg.geometry {
        Some(g) => config.geometry(g),
        None => Ok(config),
    }
}

/// Per-thread key table: `live` keys are readable (covered by a flush),
/// `staged` versions become live when the next flush commits them.
struct KeyTable {
    live: Vec<BlockAddr>,
    staged: Vec<(usize, BlockAddr)>,
    staged_inserts: Vec<BlockAddr>,
}

impl KeyTable {
    fn commit(&mut self) {
        for (key, addr) in self.staged.drain(..) {
            self.live[key] = addr;
        }
        self.live.append(&mut self.staged_inserts);
    }
}

/// Builds the transport a driver thread runs on. Each thread gets its
/// own instance so clients do not share a client-side reactor — 8
/// threads model 8 workstations, not 8 threads of one process.
pub type TransportFactory = dyn Fn(usize) -> Result<Arc<dyn Transport>> + Send + Sync;

fn run_thread(
    transport: Arc<dyn Transport>,
    workload: Workload,
    cfg: RunConfig,
    thread: usize,
    start: Arc<Barrier>,
    latency: Histogram,
) -> Result<()> {
    let log = Log::create(transport, log_config(1000 + thread as u32, &cfg)?)?;
    let mut rng = Rng64::new(cfg.seed + thread as u64);
    let value = |k: u64, fill: &mut Vec<u8>| {
        fill.clear();
        fill.extend((0..cfg.value_bytes).map(|i| (k as usize ^ i) as u8));
    };
    let mut buf = Vec::with_capacity(cfg.value_bytes);

    // Load phase (untimed): the keyspace reads must hit.
    let mut table = KeyTable {
        live: Vec::with_capacity(cfg.records),
        staged: Vec::new(),
        staged_inserts: Vec::new(),
    };
    for k in 0..cfg.records {
        value(k as u64, &mut buf);
        table.live.push(log.append_block(YCSB_SERVICE, b"", &buf)?);
    }
    log.flush()?;

    let zipf = Zipfian::new(cfg.records.max(1) as u64);
    let interval = cfg.rate.map(|r| Duration::from_secs_f64(1.0 / r.max(1e-9)));

    start.wait();
    let t0 = Instant::now();
    for op in 0..cfg.ops {
        // Open loop: ops are *scheduled*; latency includes queueing
        // delay behind a slow predecessor. Closed loop: back-to-back.
        let scheduled = match interval {
            Some(step) => {
                let due = step * op as u32;
                let now = t0.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
                t0 + due
            }
            None => Instant::now(),
        };
        let key = match workload.dist {
            KeyDist::Zipfian => zipf.next_key(&mut rng),
            KeyDist::Uniform => rng.below(table.live.len().max(1) as u64),
            // Hottest key = most recent insert, zipfian over recency.
            KeyDist::Latest => {
                let n = table.live.len().max(1) as u64;
                n - 1 - (zipf.next_rank(&mut rng) % n)
            }
        } as usize;
        let draw = rng.below(100) as u32;
        if draw < workload.read_pct {
            let addr = table.live[key % table.live.len()];
            let got = log.read(addr)?;
            assert_eq!(got.len(), cfg.value_bytes, "short read");
        } else if draw < workload.read_pct + workload.scan_pct {
            // Short range scan: consecutive live keys from the drawn
            // start, clamped at the keyspace edge, one batched read.
            let start = key % table.live.len();
            let len = 1 + rng.below(MAX_SCAN_LEN as u64) as usize;
            let end = (start + len).min(table.live.len());
            let got = log.read_many(&table.live[start..end])?;
            assert_eq!(got.len(), end - start, "short scan");
            for b in &got {
                assert_eq!(b.len(), cfg.value_bytes, "short scan read");
            }
        } else {
            value(key as u64, &mut buf);
            let addr = log.append_block(YCSB_SERVICE, b"", &buf)?;
            if draw < workload.read_pct + workload.scan_pct + workload.update_pct {
                table.staged.push((key % table.live.len(), addr));
            } else {
                table.staged_inserts.push(addr);
            }
        }
        if (op + 1) % cfg.flush_every == 0 {
            log.flush()?;
            table.commit();
        }
        latency.record(scheduled.elapsed());
    }
    log.flush()?;
    table.commit();
    Ok(())
}

/// Runs `workload` at one `(threads, window)` point and returns the
/// merged result. Each thread is its own client on its own transport
/// instance (see [`TransportFactory`]). Threads rendezvous on a barrier
/// after their untimed load phase, so the timed window measures
/// steady-state traffic only.
///
/// # Errors
///
/// Propagates the first log/setup error from any driver thread.
pub fn run_workload(
    transport_for: Arc<TransportFactory>,
    workload: Workload,
    cfg: RunConfig,
) -> Result<RunResult> {
    let start = Arc::new(Barrier::new(cfg.threads + 1));
    let mut parts = Vec::with_capacity(cfg.threads);
    let mut handles = Vec::with_capacity(cfg.threads);
    for t in 0..cfg.threads {
        let hist = Histogram::detached();
        parts.push(hist.clone());
        let transport = transport_for(t)?;
        let start = start.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("ycsb-{t}"))
                .spawn(move || run_thread(transport, workload, cfg, t, start, hist))
                .map_err(|e| SwarmError::protocol(format!("spawn driver thread: {e}")))?,
        );
    }
    start.wait();
    let t0 = Instant::now();
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or(Some(SwarmError::protocol("ycsb driver thread panicked")));
            }
        }
    }
    let elapsed = t0.elapsed();
    if let Some(e) = first_err {
        return Err(e);
    }
    let latency = Histogram::detached();
    for p in &parts {
        latency.merge(p);
    }
    Ok(RunResult {
        ops: (cfg.threads * cfg.ops) as u64,
        elapsed,
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem_cluster;

    #[test]
    fn rng_is_deterministic_and_nonzero() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
            assert!(a.next_f64() < 1.0);
            let _ = b.next_f64();
        }
        let mut z = Rng64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn zipfian_is_skewed_and_in_bounds() {
        let n = 1000u64;
        let zipf = Zipfian::new(n);
        let mut rng = Rng64::new(1);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..20_000 {
            let rank = zipf.next_rank(&mut rng);
            assert!(rank < n);
            counts[rank as usize] += 1;
        }
        // Rank 0 is the hottest by far; the tail is cold.
        assert!(counts[0] > counts[n as usize / 2] * 10);
        // Scrambled keys stay in bounds too.
        for _ in 0..1000 {
            assert!(zipf.next_key(&mut rng) < n);
        }
    }

    #[test]
    fn mixed_workload_runs_on_a_mem_cluster() {
        let transport = mem_cluster(3);
        let cfg = RunConfig {
            threads: 2,
            window: 4,
            records: 20,
            ops: 60,
            value_bytes: 512,
            flush_every: 16,
            servers: 3,
            ..RunConfig::default()
        };
        let factory: Arc<TransportFactory> =
            Arc::new(move |_| Ok(transport.clone() as Arc<dyn Transport>));
        let result = run_workload(factory, Workload::named("a").unwrap(), cfg).expect("workload a");
        assert_eq!(result.ops, 120);
        let summary = result.summary();
        assert_eq!(summary.count, 120);
        assert!(result.throughput() > 0.0);
    }

    #[test]
    fn scan_and_latest_workloads_run_on_a_mem_cluster() {
        let transport = mem_cluster(3);
        let cfg = RunConfig {
            threads: 2,
            window: 4,
            records: 30,
            ops: 60,
            value_bytes: 256,
            flush_every: 16,
            servers: 3,
            ..RunConfig::default()
        };
        for name in ["d", "e"] {
            let transport = transport.clone();
            let factory: Arc<TransportFactory> =
                Arc::new(move |_| Ok(transport.clone() as Arc<dyn Transport>));
            let result =
                run_workload(factory, Workload::named(name).unwrap(), cfg).expect("workload");
            assert_eq!(result.ops, 120, "workload {name}");
            assert_eq!(result.summary().count, 120, "workload {name}");
        }
    }

    #[test]
    fn mixed_workload_runs_on_a_4p2_rs_geometry() {
        let transport = mem_cluster(6);
        let cfg = RunConfig {
            threads: 2,
            window: 4,
            records: 20,
            ops: 60,
            value_bytes: 512,
            flush_every: 16,
            servers: 6,
            geometry: Some(swarm_types::Geometry::new(4, 2).unwrap()),
            ..RunConfig::default()
        };
        let factory: Arc<TransportFactory> =
            Arc::new(move |_| Ok(transport.clone() as Arc<dyn Transport>));
        let result =
            run_workload(factory, Workload::named("a").unwrap(), cfg).expect("workload a at 4+2");
        assert_eq!(result.ops, 120);
        assert_eq!(result.summary().count, 120);
    }

    #[test]
    fn open_loop_records_every_op() {
        let transport = mem_cluster(3);
        let cfg = RunConfig {
            threads: 1,
            window: 2,
            records: 5,
            ops: 20,
            value_bytes: 128,
            flush_every: 8,
            rate: Some(2000.0),
            servers: 3,
            ..RunConfig::default()
        };
        let factory: Arc<TransportFactory> =
            Arc::new(move |_| Ok(transport.clone() as Arc<dyn Transport>));
        let result =
            run_workload(factory, Workload::named("write").unwrap(), cfg).expect("open loop");
        assert_eq!(result.summary().count, 20);
    }
}
