//! Multi-client interference scoreboard (DESIGN.md §18.4): YCSB write
//! traffic at 1/8/32 concurrent client logs while a *cleaner* churns the
//! same servers from its own client log.
//!
//! The paper's scalability story says clients never synchronize through
//! the servers — but they do *share* them, and the cleaner is the one
//! background tenant that can monopolize server channels with relocation
//! I/O. Each scoreboard cell therefore runs the same foreground workload
//! three ways:
//!
//! * **idle** — no cleaner; the interference-free baseline.
//! * **unpaced** — a cleaner relocating live blocks as fast as the
//!   servers let it (the pre-budget behaviour, recorded for contrast).
//! * **budgeted** — the same cleaner throttled by
//!   [`CleanerConfig::budget_bytes_per_sec`]; the acceptance bar is that
//!   foreground write p99 inflates ≤ 2× over idle.
//!
//! The churn rig is also a correctness check: after the run, every live
//! churn block — most of them relocated several times by then — must
//! read back byte-exact.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use swarm_cleaner::{CleanPolicy, CleanStats, Cleaner, CleanerConfig, CleanerHandle};
use swarm_log::{Log, LogConfig, ReplayEntry};
use swarm_services::{Service, ServiceStack};
use swarm_types::{BlockAddr, ClientId, Result, ServerId, ServiceId, SwarmError};

use crate::ycsb::{run_workload, RunConfig, RunResult, TransportFactory, Workload};

/// Service id the churn rig writes blocks under.
pub const CHURN_SERVICE: ServiceId = ServiceId::new(11);

/// Client id of the churn log — below the YCSB driver range (1000+).
pub const CHURN_CLIENT: ClientId = ClientId::new(999);

/// Whether (and how) the concurrent cleaner runs during a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanerMode {
    /// No cleaner: the interference-free baseline.
    Idle,
    /// Cleaner with no throughput budget (worst case, kept for contrast).
    Unpaced,
    /// Cleaner paced to this many bytes/sec of relocation I/O.
    Budgeted(u64),
}

impl CleanerMode {
    /// Stable row tag; the `ycsb diff` gate keys cells on it.
    pub fn tag(self) -> &'static str {
        match self {
            CleanerMode::Idle => "idle",
            CleanerMode::Unpaced => "unpaced",
            CleanerMode::Budgeted(_) => "budgeted",
        }
    }

    fn budget(self) -> Option<u64> {
        match self {
            CleanerMode::Budgeted(b) => Some(b),
            _ => None,
        }
    }
}

/// Shape of the churn log the cleaner works over.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Blocks preloaded before the foreground run starts.
    pub blocks: usize,
    /// Size of each churn block.
    pub value_bytes: usize,
    /// Churn-log fragment size (small, so the preload spans many stripes).
    pub fragment_bytes: usize,
    /// Stripes reclaimed per clean pass.
    pub stripes_per_pass: usize,
}

impl Default for ChurnConfig {
    fn default() -> ChurnConfig {
        ChurnConfig {
            blocks: 96,
            value_bytes: 4096,
            fragment_bytes: 8 * 1024,
            stripes_per_pass: 2,
        }
    }
}

/// One `(clients, cleaner-mode)` scoreboard cell.
pub struct ContentionCell {
    /// Concurrent foreground client logs.
    pub clients: usize,
    /// Cleaner mode the cell ran under.
    pub mode: CleanerMode,
    /// The foreground workload's merged result.
    pub result: RunResult,
    /// Cleaner totals across every pass that ran alongside the workload.
    pub clean: CleanStats,
    /// Block-move notifications the churn service absorbed.
    pub moves: u64,
}

fn churn_value(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| (i.wrapping_mul(131) ^ j) as u8).collect()
}

/// Minimal block-owning service for the churn log: tracks live blocks by
/// creation tag so cleaner relocations keep the directory current.
#[derive(Default)]
struct ChurnOwner {
    blocks: HashMap<Vec<u8>, BlockAddr>,
    moves: u64,
}

impl Service for ChurnOwner {
    fn id(&self) -> ServiceId {
        CHURN_SERVICE
    }

    fn name(&self) -> &str {
        "churn-owner"
    }

    fn restore_checkpoint(&mut self, _data: &[u8]) -> Result<()> {
        Ok(())
    }

    fn replay(&mut self, _entry: &ReplayEntry) -> Result<()> {
        Ok(())
    }

    fn block_moved(&mut self, old: BlockAddr, new: BlockAddr, create: &[u8]) -> Result<()> {
        match self.blocks.get_mut(create) {
            Some(addr) if *addr == old => {
                *addr = new;
                self.moves += 1;
                Ok(())
            }
            _ => Err(SwarmError::invalid("cleaner moved an unknown churn block")),
        }
    }

    fn write_checkpoint(&mut self, log: &Log) -> Result<()> {
        log.checkpoint(CHURN_SERVICE, b"churn-ckpt")?;
        Ok(())
    }
}

/// The background tenant: a churn log plus a periodic cleaner over it.
struct ChurnRig {
    log: Arc<Log>,
    owner: Arc<Mutex<ChurnOwner>>,
    handle: CleanerHandle,
    value_bytes: usize,
}

impl ChurnRig {
    /// Preloads the churn log (every 4th block deleted so stripes mix
    /// dead space with live blocks to relocate) and starts the cleaner.
    fn start(
        transport_for: &Arc<TransportFactory>,
        cfg: &RunConfig,
        budget: Option<u64>,
        churn: &ChurnConfig,
    ) -> Result<ChurnRig> {
        // Index past the driver threads: each factory invocation hands
        // out an independent transport instance.
        let transport = transport_for(cfg.threads)?;
        let config = LogConfig::new(CHURN_CLIENT, (0..cfg.servers).map(ServerId::new).collect())?
            .fragment_size(churn.fragment_bytes)
            // Relocated blocks must be re-read from the servers, not a
            // stale client cache.
            .cache_fragments(0);
        let log = match cfg.geometry {
            Some(g) => Arc::new(Log::create(transport, config.geometry(g)?)?),
            None => Arc::new(Log::create(transport, config)?),
        };
        let owner: Arc<Mutex<ChurnOwner>> = Arc::new(Mutex::new(ChurnOwner::default()));
        let mut stack = ServiceStack::new();
        stack.register(owner.clone() as Arc<Mutex<dyn Service>>)?;

        let mut addrs = Vec::with_capacity(churn.blocks);
        for i in 0..churn.blocks {
            let tag = (i as u64).to_be_bytes();
            let addr = log.append_block(CHURN_SERVICE, &tag, &churn_value(i, churn.value_bytes))?;
            owner.lock().blocks.insert(tag.to_vec(), addr);
            addrs.push((i, addr));
        }
        log.flush()?;
        for (i, addr) in addrs {
            if i % 4 == 3 {
                log.delete_block(CHURN_SERVICE, addr)?;
                owner.lock().blocks.remove(&(i as u64).to_be_bytes()[..]);
            }
        }
        // Anchor past the preload so its stripes are cleanable at once;
        // later passes force their own checkpoints when starved.
        log.checkpoint(CHURN_SERVICE, b"churn-ckpt")?;

        let cleaner = Arc::new(Cleaner::with_config(
            log.clone(),
            Arc::new(stack),
            CleanerConfig {
                policy: CleanPolicy::CostBenefit,
                budget_bytes_per_sec: budget,
            },
        ));
        let handle = cleaner.spawn_periodic(Duration::from_millis(1), churn.stripes_per_pass);
        Ok(ChurnRig {
            log,
            owner,
            handle,
            value_bytes: churn.value_bytes,
        })
    }

    /// Stops the cleaner (waiting briefly for it to have reclaimed at
    /// least one stripe, so even a fast foreground run records real
    /// cleaner work) and verifies every live churn block byte-exact.
    fn finish(mut self) -> Result<(CleanStats, u64)> {
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.handle.totals().stripes_cleaned == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.handle.stop();
        let owner = self.owner.lock();
        for (tag, addr) in &owner.blocks {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(tag);
            let i = u64::from_be_bytes(raw) as usize;
            let got = self.log.read(*addr)?;
            if got[..] != churn_value(i, self.value_bytes)[..] {
                return Err(SwarmError::corrupt(format!(
                    "churn block {i} read back wrong bytes after relocation"
                )));
            }
        }
        Ok((self.handle.totals(), owner.moves))
    }
}

/// Runs one contention cell: the foreground `workload` at `cfg.threads`
/// client logs, with the churn rig's cleaner running (or not) per `mode`.
///
/// # Errors
///
/// Propagates foreground driver errors, churn-rig setup failures, and
/// byte-exactness violations on the relocated churn blocks.
pub fn run_contention_cell(
    transport_for: Arc<TransportFactory>,
    workload: Workload,
    cfg: RunConfig,
    mode: CleanerMode,
    churn: &ChurnConfig,
) -> Result<ContentionCell> {
    let rig = match mode {
        CleanerMode::Idle => None,
        _ => Some(ChurnRig::start(&transport_for, &cfg, mode.budget(), churn)?),
    };
    let result = run_workload(transport_for, workload, cfg)?;
    let (clean, moves) = match rig {
        Some(rig) => rig.finish()?,
        None => (CleanStats::default(), 0),
    };
    Ok(ContentionCell {
        clients: cfg.threads,
        mode,
        result,
        clean,
        moves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem_cluster;
    use swarm_net::Transport;

    fn small_cfg(threads: usize) -> RunConfig {
        RunConfig {
            threads,
            window: 4,
            records: 16,
            ops: 80,
            value_bytes: 512,
            fragment_bytes: 4096,
            flush_every: 16,
            servers: 3,
            ..RunConfig::default()
        }
    }

    fn factory() -> Arc<TransportFactory> {
        let transport = mem_cluster(3);
        Arc::new(move |_| Ok(transport.clone() as Arc<dyn Transport>))
    }

    #[test]
    fn idle_cell_runs_without_a_cleaner() {
        let cell = run_contention_cell(
            factory(),
            Workload::named("write").unwrap(),
            small_cfg(2),
            CleanerMode::Idle,
            &ChurnConfig::default(),
        )
        .expect("idle cell");
        assert_eq!(cell.result.ops, 160);
        assert_eq!(cell.clean, CleanStats::default());
        assert_eq!(cell.mode.tag(), "idle");
    }

    #[test]
    fn cleaner_churns_alongside_the_workload_and_blocks_stay_exact() {
        let churn = ChurnConfig {
            blocks: 24,
            value_bytes: 1024,
            fragment_bytes: 4096,
            stripes_per_pass: 2,
        };
        for mode in [
            CleanerMode::Unpaced,
            CleanerMode::Budgeted(64 * 1024 * 1024),
        ] {
            let cell = run_contention_cell(
                factory(),
                Workload::named("write").unwrap(),
                small_cfg(2),
                mode,
                &churn,
            )
            .expect("contention cell");
            assert_eq!(cell.result.ops, 160, "{mode:?}");
            // finish() waits for at least one reclaimed stripe, and the
            // preload leaves live blocks in every stripe — so the
            // cleaner demonstrably relocated data while the foreground
            // ran, and ChurnRig::finish re-read it all byte-exact.
            assert!(cell.clean.stripes_cleaned > 0, "{mode:?}: {:?}", cell.clean);
            assert!(cell.clean.blocks_moved > 0, "{mode:?}: {:?}", cell.clean);
            assert_eq!(cell.moves, cell.clean.blocks_moved, "{mode:?}");
        }
    }

    #[test]
    fn mode_tags_are_stable_scoreboard_keys() {
        assert_eq!(CleanerMode::Idle.tag(), "idle");
        assert_eq!(CleanerMode::Unpaced.tag(), "unpaced");
        assert_eq!(CleanerMode::Budgeted(1).tag(), "budgeted");
        assert_eq!(CleanerMode::Budgeted(5).budget(), Some(5));
        assert_eq!(CleanerMode::Unpaced.budget(), None);
    }
}
