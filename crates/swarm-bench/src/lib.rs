//! Benchmark harness utilities: table printing and cluster setup shared
//! by the figure binaries (`fig3_raw_bandwidth`, `fig4_useful_bandwidth`,
//! `fig5_mab`, `text_read_bandwidth`, `text_server_bound`) and the
//! criterion benches.
//!
//! Every table and figure in the paper's evaluation (§3.4) has a binary
//! here that regenerates it; see `EXPERIMENTS.md` at the workspace root
//! for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod ycsb;

use std::sync::Arc;

use swarm_net::MemTransport;
use swarm_server::{MemStore, StorageServer};
use swarm_types::{ClientId, ServerId};

/// Prints a row-aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Builds an in-process cluster of `n` memory-backed storage servers.
pub fn mem_cluster(n: u32) -> Arc<MemTransport> {
    let transport = Arc::new(MemTransport::new());
    for i in 0..n {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    transport
}

/// A default log config over servers `0..n` for `client`.
pub fn log_config(client: u32, n: u32) -> swarm_log::LogConfig {
    swarm_log::LogConfig::new(ClientId::new(client), (0..n).map(ServerId::new).collect())
        .expect("valid group")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "demo",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn mem_cluster_builds() {
        use swarm_net::Transport;
        let t = mem_cluster(3);
        assert_eq!(t.servers().len(), 3);
    }

    /// Quick-mode sanity for the kernels `benches/kernels.rs` measures:
    /// the optimized CRC and XOR must agree with their byte-at-a-time
    /// baselines on unaligned, odd-length data. Runs under `cargo test`
    /// so CI catches a broken kernel without running the benches.
    #[test]
    fn crc_kernel_matches_baseline() {
        use swarm_types::{crc::crc32_baseline, crc32};
        let buf: Vec<u8> = (0..4099u32).map(|i| (i * 31 % 256) as u8).collect();
        for start in [0usize, 1, 3, 7] {
            assert_eq!(crc32(&buf[start..]), crc32_baseline(&buf[start..]));
        }
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn xor_kernel_matches_baseline() {
        use swarm_log::parity::{xor_into, xor_into_baseline};
        let src: Vec<u8> = (0..4097u32).map(|i| (i * 17 % 256) as u8).collect();
        let mut fast = vec![0x5au8; 129];
        let mut slow = fast.clone();
        xor_into(&mut fast, &src);
        xor_into_baseline(&mut slow, &src);
        assert_eq!(fast, slow);
    }
}
