//! In-text measurement (§3.3): the storage server's disk upper bound.
//!
//! "Each storage server contains a Quantum Viking II SCSI disk dedicated
//! to holding log fragments. The size of a log fragment is 1 MB. The
//! storage server can write fragment-sized blocks to the disk at
//! 10.3 MB/s, providing an upper bound on the server performance."

use swarm_bench::print_table;
use swarm_sim::disk::Locality;
use swarm_sim::{Calibration, SimDisk};

fn main() {
    let disk = SimDisk::viking_ii();
    let mut rows = Vec::new();
    for (label, bytes, locality) in [
        ("4 KB random", 4096u64, Locality::Random),
        ("64 KB random", 65536, Locality::Random),
        ("256 KB slot", 262_144, Locality::Nearby),
        ("1 MB slot (fragment)", 1 << 20, Locality::Nearby),
        ("4 MB slot", 4 << 20, Locality::Nearby),
        ("pure sequential", 1 << 20, Locality::Sequential),
    ] {
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", disk.effective_mb_per_s(bytes, locality)),
        ]);
    }
    print_table(
        "Server disk write bandwidth by access pattern (Quantum Viking II model)",
        &["pattern", "MB/s"],
        &rows,
    );
    println!(
        "\npaper anchor: 1 MB fragment slots at 10.3 MB/s (ours: {:.2});",
        disk.effective_mb_per_s(1 << 20, Locality::Nearby)
    );
    let cal = Calibration::testbed_1999();
    println!(
        "with per-fragment server processing the sustained service rate is {:.1} MB/s (paper: 7.7)",
        cal.server_mb_per_s
    );
}
