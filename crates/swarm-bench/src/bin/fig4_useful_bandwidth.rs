//! Figure 4: useful write throughput.
//!
//! Same workload as Figure 3 but counting only application payload — the
//! bandwidth a service actually gets. The minimum configuration is one
//! client and **two** servers (one data, one parity).
//!
//! Paper anchors: 1 client + 2 servers = 3.0 MB/s (parity halves the
//! useful rate); rising as stripes widen ("the cost of computing and
//! writing the parity fragment is amortized over more data fragments");
//! 4 clients + 8 servers = 16.0 MB/s, "only 17% less than the raw
//! bandwidth".

use swarm_bench::print_table;
use swarm_sim::{simulate_write, Calibration};

fn main() {
    let cal = Calibration::testbed_1999();
    let blocks = 50_000;
    let mut rows = Vec::new();
    for servers in 2..=8u32 {
        let mut row = vec![servers.to_string()];
        for clients in [1u32, 2, 4] {
            let p = simulate_write(&cal, clients, servers, blocks, 4096);
            row.push(format!("{:.1}", p.useful_mb_per_s));
        }
        rows.push(row);
    }
    print_table(
        "Figure 4: useful write throughput (MB/s), 4 KB blocks",
        &["servers", "1 client", "2 clients", "4 clients"],
        &rows,
    );
    let p2 = simulate_write(&cal, 1, 2, blocks, 4096);
    let p8 = simulate_write(&cal, 4, 8, blocks, 4096);
    println!(
        "\npaper anchors: 1 client @2 = 3.0 (ours {:.1}); 4 clients @8 = 16.0 (ours {:.1});",
        p2.useful_mb_per_s, p8.useful_mb_per_s
    );
    println!(
        "useful/raw gap @4×8 = {:.0}% (paper: 17%)",
        (1.0 - p8.useful_mb_per_s / p8.raw_mb_per_s) * 100.0
    );
}
