//! Extension experiment: degraded-mode read bandwidth.
//!
//! The paper claims qualitatively that stripe groups bound
//! reconstruction's performance impact ("in the event of a server
//! failure, fragment reconstruction involves fewer servers, lessening
//! its impact on performance", §2.1.2) and that rotated parity balances
//! reconstruction load. This binary quantifies the claim on the 1999
//! testbed model: sequential fragment-read bandwidth with one group
//! member down, by stripe width.

use swarm_bench::print_table;
use swarm_sim::{simulate_degraded_read, Calibration};

fn main() {
    let cal = Calibration::testbed_1999();
    let mut rows = Vec::new();
    for width in [2u32, 3, 4, 6, 8, 16] {
        let (healthy, degraded) = simulate_degraded_read(&cal, width, 400);
        rows.push(vec![
            width.to_string(),
            format!("{healthy:.2}"),
            format!("{degraded:.2}"),
            format!("{:.2}×", healthy / degraded),
        ]);
    }
    print_table(
        "Extension: sequential read bandwidth with one group member down",
        &["width", "healthy MB/s", "degraded MB/s", "slowdown"],
        &rows,
    );
    println!("\nwidth 2 degrades for free (parity is a mirror); wider groups approach a");
    println!("bounded ~2× worst case — and smaller stripe groups involve fewer servers in");
    println!("each rebuild, the paper's argument for groups smaller than the cluster.");
}
