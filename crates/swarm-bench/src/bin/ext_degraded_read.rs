//! Extension experiment: degraded-mode read bandwidth.
//!
//! The paper claims qualitatively that stripe groups bound
//! reconstruction's performance impact ("in the event of a server
//! failure, fragment reconstruction involves fewer servers, lessening
//! its impact on performance", §2.1.2) and that rotated parity balances
//! reconstruction load. This binary quantifies the claim on the 1999
//! testbed model: sequential fragment-read bandwidth with one group
//! member down, by stripe width.

use std::sync::Arc;
use std::time::Instant;

use swarm_bench::print_table;
use swarm_log::{Log, LogConfig};
use swarm_net::tcp::{TcpServer, TcpTransport};
use swarm_server::{MemStore, StorageServer};
use swarm_sim::{simulate_degraded_read, Calibration};
use swarm_types::{ClientId, ServerId, ServiceId};

fn main() {
    let cal = Calibration::testbed_1999();
    let mut rows = Vec::new();
    for width in [2u32, 3, 4, 6, 8, 16] {
        let (healthy, degraded) = simulate_degraded_read(&cal, width, 400);
        rows.push(vec![
            width.to_string(),
            format!("{healthy:.2}"),
            format!("{degraded:.2}"),
            format!("{:.2}×", healthy / degraded),
        ]);
    }
    print_table(
        "Extension: sequential read bandwidth with one group member down",
        &["width", "healthy MB/s", "degraded MB/s", "slowdown"],
        &rows,
    );
    println!("\nwidth 2 degrades for free (parity is a mirror); wider groups approach a");
    println!("bounded ~2× worst case — and smaller stripe groups involve fewer servers in");
    println!("each rebuild, the paper's argument for groups smaller than the cluster.");

    measure_real_stack();
    measure_rs_two_down();
}

/// Degraded reads on the real stack over TCP loopback: the serial read
/// engine (`set_fanout(false)`, one member fetch at a time) against the
/// parallel fan-out. The sim above models the 1999 testbed; this measures
/// this implementation.
fn measure_real_stack() {
    const BLOCK: usize = 8 * 1024;
    const BLOCKS: usize = 64;
    const ROUNDS: usize = 10;

    let mut rows = Vec::new();
    for (name, fanout) in [("serial baseline", false), ("parallel fan-out", true)] {
        let transport = Arc::new(TcpTransport::new());
        let mut servers = Vec::new();
        for i in 0..4u32 {
            let handler = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            let server = TcpServer::spawn(ServerId::new(i), "127.0.0.1:0", handler).unwrap();
            transport.add_server(ServerId::new(i), server.addr());
            servers.push(server);
        }
        let config = LogConfig::new(ClientId::new(1), (0..4).map(ServerId::new).collect())
            .unwrap()
            .fragment_size(32 * 1024)
            .cache_fragments(0);
        let log = Log::create(transport.clone() as Arc<dyn swarm_net::Transport>, config).unwrap();
        log.engine().set_fanout(fanout);
        let svc = ServiceId::new(1);
        let mut addrs = Vec::new();
        for i in 0..BLOCKS {
            addrs.push(
                log.append_block(svc, b"", &vec![(i % 251) as u8; BLOCK])
                    .unwrap(),
            );
        }
        log.flush().unwrap();

        // Kill one server process: every read of its fragments must
        // reconstruct. Forgetting the fragment each round forces the
        // locate + rebuild path instead of the home fast path.
        let mut dead = servers.remove(0);
        dead.shutdown();
        drop(dead);

        let start = Instant::now();
        for _ in 0..ROUNDS {
            for addr in &addrs {
                log.forget_fragment(addr.fid);
                let data = log.read(*addr).unwrap();
                assert_eq!(data.len(), BLOCK);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let mb_s = (ROUNDS * BLOCKS * BLOCK) as f64 / 1e6 / secs;
        rows.push(vec![name.to_string(), format!("{mb_s:.2}")]);
    }
    print_table(
        "Real stack (TCP loopback, width 4, one server down): degraded reads",
        &["read engine", "MB/s"],
        &rows,
    );
}

/// Reed–Solomon degraded reads on the real stack: a 4+2 stripe group
/// with zero, one, and then two servers down at once. Every read with a
/// dead home server runs the full locate + k-survivor fetch + GF(2^8)
/// matrix decode path; the two-down row is the multi-failure case XOR
/// parity cannot serve at all.
fn measure_rs_two_down() {
    const BLOCK: usize = 8 * 1024;
    const BLOCKS: usize = 64;
    const ROUNDS: usize = 10;
    const WIDTH: u32 = 6;

    let mut rows = Vec::new();
    for (name, kill) in [
        ("healthy (0 down)", 0usize),
        ("degraded (1 down)", 1),
        ("degraded (2 down)", 2),
    ] {
        let transport = Arc::new(TcpTransport::new());
        let mut servers = Vec::new();
        for i in 0..WIDTH {
            let handler = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            let server = TcpServer::spawn(ServerId::new(i), "127.0.0.1:0", handler).unwrap();
            transport.add_server(ServerId::new(i), server.addr());
            servers.push(server);
        }
        let config = LogConfig::new(ClientId::new(1), (0..WIDTH).map(ServerId::new).collect())
            .unwrap()
            .geometry(swarm_types::Geometry::new(4, 2).unwrap())
            .unwrap()
            .fragment_size(32 * 1024)
            .cache_fragments(0);
        let log = Log::create(transport.clone() as Arc<dyn swarm_net::Transport>, config).unwrap();
        let svc = ServiceId::new(1);
        let mut addrs = Vec::new();
        for i in 0..BLOCKS {
            addrs.push(
                log.append_block(svc, b"", &vec![(i % 251) as u8; BLOCK])
                    .unwrap(),
            );
        }
        log.flush().unwrap();

        for _ in 0..kill {
            let mut dead = servers.remove(0);
            dead.shutdown();
            drop(dead);
        }

        let start = Instant::now();
        for _ in 0..ROUNDS {
            for (i, addr) in addrs.iter().enumerate() {
                log.forget_fragment(addr.fid);
                let data = log.read(*addr).unwrap();
                assert_eq!(data.len(), BLOCK);
                assert!(
                    data.iter().all(|&b| b == (i % 251) as u8),
                    "degraded read returned wrong bytes"
                );
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let mb_s = (ROUNDS * BLOCKS * BLOCK) as f64 / 1e6 / secs;
        rows.push(vec![name.to_string(), format!("{mb_s:.2}")]);
    }
    print_table(
        "Real stack (TCP loopback, 4+2 Reed–Solomon): reads by failure count",
        &["cluster state", "MB/s"],
        &rows,
    );
}
