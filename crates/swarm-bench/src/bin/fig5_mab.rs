//! Figure 5: the Modified Andrew Benchmark, Sting vs ext2fs.
//!
//! "This shows the elapsed time to complete the Modified Andrew
//! Benchmark. Sting accesses a single storage server via the network;
//! ext2fs accesses a local disk. … Sting outperforms ext2fs by nearly a
//! factor of two, completing the benchmark in 9.4 seconds as compared to
//! ext2fs's 17.9 seconds. … Sting achieves 93% CPU utilization, while
//! ext2fs is more disk-bound and achieves only 57%."
//!
//! Both systems run the identical five-phase op stream; only the storage
//! architecture differs (batched 1 MB log fragments vs update-in-place
//! small writes). As a cross-check, the same op stream is replayed
//! against the *real* Sting file system on an in-process cluster to
//! verify it executes cleanly end-to-end.

use std::sync::Arc;

use sting::{StingConfig, StingFs};
use swarm_bench::{log_config, mem_cluster, print_table};
use swarm_log::Log;
use swarm_sim::{mab_workload, run_ext2_model, run_sting_model, Calibration, FsOp, MabConfig};

fn main() {
    let cal = Calibration::testbed_1999();
    let ops = mab_workload(&MabConfig::default());
    let sting = run_sting_model(&cal, &ops);
    let ext2 = run_ext2_model(&cal, &ops);

    let row = |name: &str, r: &swarm_sim::MabResult| {
        vec![
            name.to_string(),
            format!("{:.1}", r.elapsed_us as f64 / 1e6),
            format!("{:.1}", r.cpu_us as f64 / 1e6),
            format!("{:.1}", r.io_us as f64 / 1e6),
            format!("{:.0}%", r.cpu_utilization * 100.0),
        ]
    };
    print_table(
        "Figure 5: Modified Andrew Benchmark",
        &["system", "elapsed (s)", "cpu (s)", "io (s)", "cpu util"],
        &[
            row("Sting (1 client, 1 server)", &sting),
            row("ext2fs (local disk)", &ext2),
        ],
    );
    println!(
        "\npaper anchors: Sting 9.4 s @ 93% util; ext2fs 17.9 s @ 57% util; speedup ~1.9× \
         (ours: {:.2}×)",
        ext2.elapsed_us as f64 / sting.elapsed_us as f64
    );

    // Functional cross-check: the same op stream runs on the real Sting.
    let transport = mem_cluster(2);
    let log = Arc::new(Log::create(transport, log_config(1, 2)).expect("log"));
    let fs = StingFs::format(log, StingConfig::default()).expect("format");
    let mut verified_bytes = 0u64;
    for op in &ops {
        match op {
            FsOp::Mkdir(p) => {
                fs.mkdir(p).expect("mkdir");
            }
            FsOp::WriteFile { path, bytes } => {
                fs.write_file(path, 0, &vec![0xa5u8; *bytes as usize])
                    .expect("write");
                verified_bytes += bytes;
            }
            FsOp::Stat(p) => {
                fs.stat(p).expect("stat");
            }
            FsOp::ReadFile { path, bytes } => {
                let data = fs.read_to_end(path).expect("read");
                assert_eq!(data.len() as u64, *bytes, "{path}");
            }
            FsOp::Compute { .. } => {}
        }
    }
    fs.unmount().expect("unmount");
    println!(
        "cross-check: replayed {} ops ({:.1} MB written) on the real StingFs — all verified",
        ops.len(),
        verified_bytes as f64 / 1e6
    );

    // Live metrics from the real run: store latency distribution plus the
    // client-side counters the cross-check exercised.
    let snap = swarm_metrics::snapshot();
    if let Some(h) = snap.histogram("log.store_us") {
        println!(
            "store latency: {} stores, p50 {} us, p99 {} us, max {} us",
            h.count, h.p50_us, h.p99_us, h.max_us
        );
    }
    println!(
        "retries {}  reconnects {}  bytes out {}  bytes in {}",
        snap.counter("log.store_retries"),
        snap.counter("log.reconnects"),
        snap.counter("net.mem.bytes_out"),
        snap.counter("net.mem.bytes_in"),
    );
    println!("metrics snapshot: {}", snap.to_json());
}
