//! Figure 3: raw write bandwidth.
//!
//! "This graph shows the aggregate bandwidth of writing 10,000 4 KB
//! blocks to the log, including the overhead of writing the log metadata
//! and the parity fragments." Clients ∈ {1, 2, 4}, servers 1–8, on the
//! simulated 1999 testbed (200 MHz clients, 100 Mb/s switched Ethernet,
//! servers sustaining 7.7 MB/s).
//!
//! Paper anchors: 1 client: 6.1 → 6.4 MB/s (client-saturated, flat);
//! 2 clients → 12.9 @ 8 servers; 4 clients → 19.3 @ 8 servers; a single
//! server sustains 7.7 MB/s when multiple clients write to it.

use swarm_bench::print_table;
use swarm_sim::{simulate_write, Calibration};

fn main() {
    let cal = Calibration::testbed_1999();
    // More blocks than the paper's 10,000 so pipeline fill/drain doesn't
    // distort the steady-state rate (the paper averaged three runs).
    let blocks = 50_000;
    let mut rows = Vec::new();
    for servers in 1..=8u32 {
        let mut row = vec![servers.to_string()];
        for clients in [1u32, 2, 4] {
            let p = simulate_write(&cal, clients, servers, blocks, 4096);
            row.push(format!("{:.1}", p.raw_mb_per_s));
        }
        rows.push(row);
    }
    print_table(
        "Figure 3: raw write bandwidth (MB/s), 4 KB blocks",
        &["servers", "1 client", "2 clients", "4 clients"],
        &rows,
    );
    println!(
        "\npaper anchors: 1 client 6.1→6.4 (flat, client-bound); \
         2 clients @8 = 12.9; 4 clients @8 = 19.3;"
    );
    let sat = simulate_write(&cal, 2, 1, blocks, 4096);
    println!(
        "single server sustains {:.1} MB/s under 2 clients (paper: 7.7)",
        sat.raw_mb_per_s
    );
}
