//! In-text measurement (§3.4): uncached 4 KB read bandwidth.
//!
//! "The prototype servers do not cache log fragments in memory, and the
//! clients do not prefetch blocks from the servers. … As a result, a
//! Swarm client can read 4 KB blocks from the servers at only 1.7 MB/s."
//!
//! Each read is a synchronous RPC: request processing and disk
//! positioning on the server, the 4 KB transfer on the 100 Mb/s link,
//! and the client-side copy — no pipelining to hide any of it.

use std::sync::Arc;
use std::time::Instant;

use swarm_bench::print_table;
use swarm_log::{Log, LogConfig};
use swarm_net::tcp::{TcpServer, TcpTransport};
use swarm_server::{MemStore, StorageServer};
use swarm_sim::{simulate_read, simulate_read_prefetch, Calibration};
use swarm_types::{ClientId, ServerId, ServiceId};

fn main() {
    let cal = Calibration::testbed_1999();
    let mut rows = Vec::new();
    for block_kb in [1u64, 2, 4, 8, 16, 64] {
        let r = simulate_read(&cal, 10_000, block_kb * 1024);
        rows.push(vec![
            format!("{block_kb} KB"),
            format!("{:.2}", r.mb_per_s),
            format!("{:.2}", r.block_latency_us as f64 / 1000.0),
        ]);
    }
    print_table(
        "Uncached read bandwidth vs block size (no server cache, no prefetch)",
        &["block", "MB/s", "latency (ms)"],
        &rows,
    );
    let r = simulate_read(&cal, 10_000, 4096);
    println!(
        "\npaper anchor: 4 KB blocks read at 1.7 MB/s (ours: {:.2} MB/s)",
        r.mb_per_s
    );
    println!("larger transfers amortize the RPC: the paper notes client caching and prefetch");
    println!("\"would greatly improve the performance of reads that miss in the client cache\"");
    let p = simulate_read_prefetch(&cal, 10_000, 4096);
    println!(
        "\nextension (this repo implements it as LogConfig::prefetch): whole-fragment\n\
         prefetch lifts sequential 4 KB reads to {:.2} MB/s ({:.1}×)",
        p.mb_per_s,
        p.mb_per_s / r.mb_per_s
    );

    measure_real_stack();
}

/// Sequential 4 KB read bandwidth on the real stack over TCP loopback:
/// the serial engine with no prefetch (the paper's uncached-read setup)
/// against the pooled engine with prefetch + read-ahead. The sim above
/// models the 1999 testbed; this measures this implementation.
fn measure_real_stack() {
    const BLOCK: usize = 4 * 1024;
    const BLOCKS: usize = 256;
    const ROUNDS: usize = 10;

    let mut rows = Vec::new();
    for (name, fanout, prefetch) in [
        ("serial, no prefetch", false, false),
        ("pooled fan-out + read-ahead", true, true),
    ] {
        let transport = Arc::new(TcpTransport::new());
        let mut servers = Vec::new();
        for i in 0..4u32 {
            let handler = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            let server = TcpServer::spawn(ServerId::new(i), "127.0.0.1:0", handler).unwrap();
            transport.add_server(ServerId::new(i), server.addr());
            servers.push(server);
        }
        let config = LogConfig::new(ClientId::new(1), (0..4).map(ServerId::new).collect())
            .unwrap()
            .fragment_size(64 * 1024)
            .cache_fragments(if prefetch { 8 } else { 0 })
            .prefetch(prefetch)
            .read_ahead(if prefetch { 4 } else { 0 });
        let log = Log::create(transport.clone() as Arc<dyn swarm_net::Transport>, config).unwrap();
        log.engine().set_fanout(fanout);
        let svc = ServiceId::new(1);
        let mut addrs = Vec::new();
        for i in 0..BLOCKS {
            addrs.push(
                log.append_block(svc, b"", &vec![(i % 251) as u8; BLOCK])
                    .unwrap(),
            );
        }
        log.flush().unwrap();

        let start = Instant::now();
        for _ in 0..ROUNDS {
            for addr in &addrs {
                // Evict so every round misses the client cache the same
                // way; prefetch refills it a whole fragment at a time.
                if !prefetch {
                    log.evict_cached(addr.fid);
                }
                let data = log.read(*addr).unwrap();
                assert_eq!(data.len(), BLOCK);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let mb_s = (ROUNDS * BLOCKS * BLOCK) as f64 / 1e6 / secs;
        rows.push(vec![name.to_string(), format!("{mb_s:.2}")]);
    }
    print_table(
        "Real stack (TCP loopback, width 4): sequential 4 KB reads",
        &["read engine", "MB/s"],
        &rows,
    );
}
