//! In-text measurement (§3.4): uncached 4 KB read bandwidth.
//!
//! "The prototype servers do not cache log fragments in memory, and the
//! clients do not prefetch blocks from the servers. … As a result, a
//! Swarm client can read 4 KB blocks from the servers at only 1.7 MB/s."
//!
//! Each read is a synchronous RPC: request processing and disk
//! positioning on the server, the 4 KB transfer on the 100 Mb/s link,
//! and the client-side copy — no pipelining to hide any of it.

use swarm_bench::print_table;
use swarm_sim::{simulate_read, simulate_read_prefetch, Calibration};

fn main() {
    let cal = Calibration::testbed_1999();
    let mut rows = Vec::new();
    for block_kb in [1u64, 2, 4, 8, 16, 64] {
        let r = simulate_read(&cal, 10_000, block_kb * 1024);
        rows.push(vec![
            format!("{block_kb} KB"),
            format!("{:.2}", r.mb_per_s),
            format!("{:.2}", r.block_latency_us as f64 / 1000.0),
        ]);
    }
    print_table(
        "Uncached read bandwidth vs block size (no server cache, no prefetch)",
        &["block", "MB/s", "latency (ms)"],
        &rows,
    );
    let r = simulate_read(&cal, 10_000, 4096);
    println!(
        "\npaper anchor: 4 KB blocks read at 1.7 MB/s (ours: {:.2} MB/s)",
        r.mb_per_s
    );
    println!("larger transfers amortize the RPC: the paper notes client caching and prefetch");
    println!("\"would greatly improve the performance of reads that miss in the client cache\"");
    let p = simulate_read_prefetch(&cal, 10_000, 4096);
    println!(
        "\nextension (this repo implements it as LogConfig::prefetch): whole-fragment\n\
         prefetch lifts sequential 4 KB reads to {:.2} MB/s ({:.1}×)",
        p.mb_per_s,
        p.mb_per_s / r.mb_per_s
    );
}
