//! YCSB-style workload scoreboard over a real TCP cluster.
//!
//! ```text
//! ycsb                                  # workload `write`, full scoreboard
//! ycsb --workload all                   # A, B, C, D, E, and write
//! ycsb --smoke --out target/bench       # CI configuration
//! ycsb --workload a --threads 8 --windows 8 --rate 500
//! ycsb diff --fresh target/bench        # gate fresh results vs committed
//! ```
//!
//! Stands up an in-process cluster of real TCP servers (epoll runtime on
//! Linux), drives it with [`swarm_bench::ycsb`], and writes one
//! `BENCH_ycsb_<workload>.json` per workload: throughput and
//! p50/p99/p999 latency for every `(threads, window)` cell, plus the
//! window-8-over-window-1 speedup at 8 threads — the number the write
//! pipelining (DESIGN.md §15) is judged on.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use swarm_bench::contention::{run_contention_cell, ChurnConfig, CleanerMode, ContentionCell};
use swarm_bench::print_table;
use swarm_bench::ycsb::{run_workload, RunConfig, RunResult, Workload};
use swarm_net::tcp::{ServerConfig, TcpServer, TcpTransport};
use swarm_net::{RequestHandler, Runtime};
use swarm_server::{Durability, FileStore, FragmentStore, MemStore, StorageServer};
use swarm_types::{Result, ServerId};

struct Args {
    workloads: Vec<Workload>,
    threads: Vec<usize>,
    windows: Vec<usize>,
    records: usize,
    ops: usize,
    value_bytes: usize,
    fragment_bytes: usize,
    flush_every: usize,
    servers: u32,
    /// Reed–Solomon stripe geometry; `None` is the default XOR layout
    /// over `--servers`. Setting it also fixes the cluster size to the
    /// geometry width and suffixes output files (`_<k>p<m>`), so an RS
    /// run never overwrites the committed XOR-baseline scoreboard.
    geometry: Option<swarm_types::Geometry>,
    file_store: bool,
    /// Server-side sharded read cache capacity in fragments; 0 disables.
    cache_fragments: usize,
    /// Group-commit window for file-backed servers: long enough that
    /// serial stores visibly wait on it, short enough to keep runs quick.
    group_ms: u64,
    rate: Option<f64>,
    out: PathBuf,
    seed: u64,
    dump_metrics: bool,
    /// Multi-client interference scoreboard: the `write` workload at
    /// 1/8/32 concurrent client logs with a concurrent cleaner in
    /// idle/unpaced/budgeted modes (`BENCH_ycsb_contention.json`).
    contention: bool,
    /// Cleaner relocation budget for the budgeted contention cells.
    cleaner_budget: u64,
}

const USAGE: &str = "usage: ycsb [--workload a|b|c|d|e|write|all] [--threads N,N,..] \
[--windows N,N,..] [--records N] [--ops N] [--value BYTES] [--fragment BYTES] \
[--flush-every N] [--servers N] [--geometry K+M] [--store mem|file] [--cache FRAGMENTS] [--group-ms N] \
[--rate OPS_PER_SEC] [--smoke] [--out DIR] [--seed N]\n       \
ycsb --contention [--cleaner-budget BYTES_PER_SEC] [--threads N,N,..] [..]\n       \
ycsb diff [--baseline DIR] [--fresh DIR] [--threshold PCT]";

fn parse_usize_list(v: &str, flag: &str) -> std::result::Result<Vec<usize>, String> {
    v.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|e| format!("{flag} {v}: {e}"))
                .and_then(|n| {
                    if n == 0 {
                        Err(format!("{flag} entries must be >= 1"))
                    } else {
                        Ok(n)
                    }
                })
        })
        .collect()
}

fn parse_args() -> std::result::Result<Args, String> {
    let mut args = Args {
        workloads: vec![Workload::named("write").expect("table has write")],
        threads: vec![1, 8, 64],
        windows: vec![1, 8],
        records: 200,
        ops: 2000,
        value_bytes: 4096,
        // One 4 KiB block per fragment: every update is a store, so the
        // per-server store channel — the thing the write window widens —
        // is the bottleneck under measurement rather than client CPU.
        fragment_bytes: 8 * 1024,
        flush_every: 64,
        servers: 5,
        geometry: None,
        file_store: true,
        cache_fragments: 1024,
        group_ms: 5,
        rate: None,
        out: PathBuf::from("."),
        seed: 42,
        dump_metrics: false,
        contention: false,
        // Well below the foreground's aggregate write rate, so the
        // budgeted cleaner visibly yields where the unpaced one storms.
        cleaner_budget: 2_000_000,
    };
    let mut threads_given = false;
    let mut windows_given = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--workload" => {
                let v = value("--workload")?;
                args.workloads = match v.as_str() {
                    "all" => Workload::all().to_vec(),
                    name => vec![Workload::named(name).ok_or_else(|| {
                        format!("unknown workload {name:?} (want a|b|c|d|e|write|all)")
                    })?],
                };
            }
            "--threads" => {
                args.threads = parse_usize_list(&value("--threads")?, "--threads")?;
                threads_given = true;
            }
            "--windows" => {
                args.windows = parse_usize_list(&value("--windows")?, "--windows")?;
                windows_given = true;
            }
            "--records" => {
                let v = value("--records")?;
                args.records = v.parse().map_err(|e| format!("--records {v}: {e}"))?;
            }
            "--ops" => {
                let v = value("--ops")?;
                args.ops = v.parse().map_err(|e| format!("--ops {v}: {e}"))?;
            }
            "--value" => {
                let v = value("--value")?;
                args.value_bytes = v.parse().map_err(|e| format!("--value {v}: {e}"))?;
            }
            "--fragment" => {
                let v = value("--fragment")?;
                args.fragment_bytes = v.parse().map_err(|e| format!("--fragment {v}: {e}"))?;
            }
            "--flush-every" => {
                let v = value("--flush-every")?;
                args.flush_every = v.parse().map_err(|e| format!("--flush-every {v}: {e}"))?;
            }
            "--servers" => {
                let v = value("--servers")?;
                args.servers = v.parse().map_err(|e| format!("--servers {v}: {e}"))?;
            }
            "--geometry" => {
                let v = value("--geometry")?;
                args.geometry = Some(
                    v.parse::<swarm_types::Geometry>()
                        .map_err(|e| format!("--geometry {v}: {e}"))?,
                );
            }
            "--store" => {
                let v = value("--store")?;
                args.file_store = match v.as_str() {
                    "file" => true,
                    "mem" => false,
                    other => return Err(format!("unknown store {other:?} (want mem|file)")),
                };
            }
            "--cache" => {
                let v = value("--cache")?;
                args.cache_fragments = v.parse().map_err(|e| format!("--cache {v}: {e}"))?;
            }
            "--group-ms" => {
                let v = value("--group-ms")?;
                args.group_ms = v.parse().map_err(|e| format!("--group-ms {v}: {e}"))?;
            }
            "--rate" => {
                let v = value("--rate")?;
                args.rate = Some(v.parse().map_err(|e| format!("--rate {v}: {e}"))?);
            }
            "--dump-metrics" => args.dump_metrics = true,
            "--contention" => args.contention = true,
            "--cleaner-budget" => {
                let v = value("--cleaner-budget")?;
                args.cleaner_budget = v
                    .parse()
                    .map_err(|e| format!("--cleaner-budget {v}: {e}"))?;
                if args.cleaner_budget == 0 {
                    return Err("--cleaner-budget must be >= 1 byte/sec".into());
                }
            }
            "--smoke" => {
                // CI shape: small but still exercising 8-way pipelining.
                // Counts as an explicit thread list so a contention smoke
                // stays at [1, 8] instead of the full [1, 8, 32] sweep.
                args.threads = vec![1, 8];
                threads_given = true;
                args.records = 64;
                args.ops = 384;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--seed" => {
                let v = value("--seed")?;
                args.seed = v.parse().map_err(|e| format!("--seed {v}: {e}"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.contention {
        // The contention scoreboard sweeps client-log counts at one
        // window: the interference axis is clients × cleaner mode, not
        // pipelining depth. Explicit --threads/--windows still override.
        if !threads_given {
            args.threads = vec![1, 8, 32];
        }
        if !windows_given {
            args.windows = vec![8];
        }
    }
    Ok(args)
}

/// An in-process cluster of real TCP servers; the store root (if any) is
/// removed on drop.
struct BenchCluster {
    addrs: Vec<(ServerId, std::net::SocketAddr)>,
    runtime: Runtime,
    _servers: Vec<TcpServer>,
    dir: Option<PathBuf>,
}

impl BenchCluster {
    /// Store root for file-backed servers. Prefers tmpfs (`/dev/shm`)
    /// when `TMPDIR` is unset: the scoreboard's controlled durability
    /// cost is the group-commit *window*, and a slow or contended host
    /// disk would swamp it with fsync noise. `TMPDIR` overrides.
    fn store_root() -> PathBuf {
        let shm = PathBuf::from("/dev/shm");
        let base = if std::env::var_os("TMPDIR").is_none() && shm.is_dir() {
            shm
        } else {
            std::env::temp_dir()
        };
        base.join(format!("swarm-ycsb-{}", std::process::id()))
    }

    fn spawn(
        n: u32,
        file_store: bool,
        cache_fragments: usize,
        group_ms: u64,
        runtime: Runtime,
    ) -> Result<BenchCluster> {
        let dir = file_store.then(Self::store_root);
        let mut servers = Vec::new();
        let mut addrs = Vec::new();
        for i in 0..n {
            let id = ServerId::new(i);
            let store: Box<dyn FragmentStore> = match &dir {
                Some(root) => Box::new(FileStore::open_with_durability(
                    root.join(format!("server-{i}")),
                    0,
                    Durability::Group(Duration::from_millis(group_ms)),
                )?),
                None => Box::new(MemStore::new()),
            };
            let handler: Arc<dyn RequestHandler> = StorageServer::new(id, store)
                .with_read_cache(cache_fragments)
                .into_shared();
            let srv = TcpServer::spawn_with_config(
                id,
                "127.0.0.1:0",
                handler,
                ServerConfig {
                    runtime,
                    // Store handlers park on the group-commit fsync, so the
                    // pool must hold a full pipelining window per client —
                    // otherwise worker starvation, not the wire, sets the
                    // concurrency and the window can't be observed.
                    workers: 64,
                    ..ServerConfig::default()
                },
            )?;
            addrs.push((id, srv.addr()));
            servers.push(srv);
        }
        Ok(BenchCluster {
            addrs,
            runtime,
            _servers: servers,
            dir,
        })
    }

    /// A factory handing each driver thread its own [`TcpTransport`] —
    /// its own connections and client-side reactor. Sharing one transport
    /// across 8 driver threads serializes every client on a single mux
    /// reactor and hides the windowing effect being measured.
    fn transport_factory(&self) -> Arc<swarm_bench::ycsb::TransportFactory> {
        let addrs = self.addrs.clone();
        let runtime = self.runtime;
        Arc::new(move |_thread| {
            let transport = Arc::new(TcpTransport::new());
            transport.set_runtime(runtime);
            // 64-thread cells queue behind group commits; don't let the
            // default call timeout turn backlog into failures.
            transport.set_call_timeout(Some(Duration::from_secs(30)));
            for &(id, addr) in &addrs {
                transport.add_server(id, addr);
            }
            Ok(transport as Arc<dyn swarm_net::Transport>)
        })
    }
}

impl Drop for BenchCluster {
    fn drop(&mut self) {
        if let Some(dir) = &self.dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

struct Row {
    threads: usize,
    window: usize,
    result: RunResult,
}

fn json_row(row: &Row) -> String {
    let s = row.result.summary();
    let mean = s.sum_us.checked_div(s.count).unwrap_or(0);
    format!(
        "    {{\"threads\": {}, \"window\": {}, \"ops\": {}, \"elapsed_s\": {:.3}, \
         \"throughput_ops_per_s\": {:.1}, \"mean_us\": {}, \"p50_us\": {}, \
         \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}}}",
        row.threads,
        row.window,
        row.result.ops,
        row.result.elapsed.as_secs_f64(),
        row.result.throughput(),
        mean,
        s.p50_us,
        s.p99_us,
        s.p999_us,
        s.max_us
    )
}

/// Window-8-over-window-1 throughput ratio at 8 threads — the scoreboard
/// number for the pipelined write engine.
fn speedup_at_8_threads(rows: &[Row]) -> Option<f64> {
    let at = |window: usize| {
        rows.iter()
            .find(|r| r.threads == 8 && r.window == window)
            .map(|r| r.result.throughput())
    };
    match (at(8), at(1)) {
        (Some(w8), Some(w1)) if w1 > 0.0 => Some(w8 / w1),
        _ => None,
    }
}

/// One contention scoreboard row: the usual latency cell plus the
/// cleaner-mode tag (the diff gate's third key) and what the concurrent
/// cleaner accomplished while the foreground ran.
fn contention_json_row(cell: &ContentionCell, window: usize, p99_x_idle: Option<f64>) -> String {
    let s = cell.result.summary();
    let mean = s.sum_us.checked_div(s.count).unwrap_or(0);
    format!(
        "    {{\"threads\": {}, \"window\": {window}, \"cleaner\": \"{}\", \"ops\": {}, \
         \"elapsed_s\": {:.3}, \"throughput_ops_per_s\": {:.1}, \"mean_us\": {}, \
         \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}, \
         \"p99_x_idle\": {}, \"stripes_cleaned\": {}, \"blocks_moved\": {}, \
         \"bytes_moved\": {}}}",
        cell.clients,
        cell.mode.tag(),
        cell.result.ops,
        cell.result.elapsed.as_secs_f64(),
        cell.result.throughput(),
        mean,
        s.p50_us,
        s.p99_us,
        s.p999_us,
        s.max_us,
        p99_x_idle.map_or("null".to_string(), |x| format!("{x:.3}")),
        cell.clean.stripes_cleaned,
        cell.clean.blocks_moved,
        cell.clean.bytes_moved,
    )
}

/// `--contention`: the write workload at each client-log count, each run
/// under the three cleaner modes, on a fresh cluster per cell. Writes
/// `BENCH_ycsb_contention.json` and prints the p99-inflation headline
/// the cleaner budget is judged on (≤ 2× over idle when budgeted).
fn run_contention(args: &Args, runtime: Runtime) -> std::process::ExitCode {
    let workload = Workload::named("write").expect("table has write");
    let churn = ChurnConfig::default();
    let window = args.windows[0];
    let store_name = if args.file_store { "file" } else { "mem" };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {e}", args.out.display());
        return std::process::ExitCode::FAILURE;
    }
    let modes = [
        CleanerMode::Idle,
        CleanerMode::Unpaced,
        CleanerMode::Budgeted(args.cleaner_budget),
    ];
    let mut cells: Vec<ContentionCell> = Vec::new();
    for &clients in &args.threads {
        for mode in modes {
            let cluster = match BenchCluster::spawn(
                args.servers,
                args.file_store,
                args.cache_fragments,
                args.group_ms,
                runtime,
            ) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cluster setup failed: {e}");
                    return std::process::ExitCode::FAILURE;
                }
            };
            let cfg = RunConfig {
                threads: clients,
                window,
                records: args.records,
                ops: args.ops,
                value_bytes: args.value_bytes,
                fragment_bytes: args.fragment_bytes,
                flush_every: args.flush_every,
                rate: args.rate,
                servers: args.servers,
                geometry: None,
                seed: args.seed,
            };
            match run_contention_cell(cluster.transport_factory(), workload, cfg, mode, &churn) {
                Ok(cell) => cells.push(cell),
                Err(e) => {
                    eprintln!(
                        "contention clients={clients} cleaner={} failed: {e}",
                        mode.tag()
                    );
                    return std::process::ExitCode::FAILURE;
                }
            }
        }
    }

    let p99_idle = |clients: usize| {
        cells
            .iter()
            .find(|c| c.clients == clients && c.mode == CleanerMode::Idle)
            .map(|c| c.result.summary().p99_us)
    };
    let p99_x_idle = |cell: &ContentionCell| {
        p99_idle(cell.clients)
            .filter(|&idle| idle > 0)
            .map(|idle| cell.result.summary().p99_us as f64 / idle as f64)
    };
    let table: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            let s = cell.result.summary();
            vec![
                cell.clients.to_string(),
                cell.mode.tag().to_string(),
                format!("{:.0}", cell.result.throughput()),
                s.p50_us.to_string(),
                s.p99_us.to_string(),
                s.p999_us.to_string(),
                p99_x_idle(cell).map_or("-".into(), |x| format!("{x:.2}")),
                cell.clean.stripes_cleaned.to_string(),
                (cell.clean.bytes_moved / 1024).to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "YCSB contention over tcp-{runtime} ({store_name} store, {} B values, \
             window {window}, cleaner budget {} B/s)",
            args.value_bytes, args.cleaner_budget
        ),
        &[
            "clients", "cleaner", "ops/s", "p50_us", "p99_us", "p999_us", "p99/idle", "stripes",
            "movedKB",
        ],
        &table,
    );
    // The headline the budget is judged on: budgeted p99 must stay
    // within 2x of the idle baseline at every client count.
    let mut budget_ok = true;
    for cell in &cells {
        if let (CleanerMode::Budgeted(_), Some(x)) = (cell.mode, p99_x_idle(cell)) {
            println!(
                "clients {:>2}: budgeted p99 {:.2}x idle{}",
                cell.clients,
                x,
                if x <= 2.0 { "" } else { "  OVER 2x BUDGET BAR" }
            );
            budget_ok &= x <= 2.0;
        }
    }

    let rows: Vec<String> = cells
        .iter()
        .map(|c| contention_json_row(c, window, p99_x_idle(c)))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ycsb-contention\",\n  \"workload\": \"write\",\n  \
         \"transport\": \"tcp-{runtime}\",\n  \"store\": \"{store_name}\",\n  \
         \"servers\": {},\n  \"value_bytes\": {},\n  \"records_per_thread\": {},\n  \
         \"ops_per_thread\": {},\n  \"window\": {window},\n  \
         \"cleaner_budget_bytes_per_sec\": {},\n  \
         \"churn\": {{\"blocks\": {}, \"value_bytes\": {}, \"fragment_bytes\": {}, \
         \"stripes_per_pass\": {}}},\n  \"rows\": [\n{}\n  ],\n  \
         \"budgeted_p99_within_2x_of_idle\": {budget_ok}\n}}\n",
        args.servers,
        args.value_bytes,
        args.records,
        args.ops,
        args.cleaner_budget,
        churn.blocks,
        churn.value_bytes,
        churn.fragment_bytes,
        churn.stripes_per_pass,
        rows.join(",\n"),
    );
    let path = args.out.join("BENCH_ycsb_contention.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("cannot write {}: {e}", path.display());
        return std::process::ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    std::process::ExitCode::SUCCESS
}

struct DiffArgs {
    baseline: PathBuf,
    fresh: PathBuf,
    threshold: f64,
}

fn parse_diff_args() -> std::result::Result<DiffArgs, String> {
    let mut args = DiffArgs {
        baseline: PathBuf::from("."),
        fresh: PathBuf::from("bench-artifacts"),
        threshold: 15.0,
    };
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--fresh" => args.fresh = PathBuf::from(value("--fresh")?),
            "--threshold" => {
                let v = value("--threshold")?;
                args.threshold = v.parse().map_err(|e| format!("--threshold {v}: {e}"))?;
                if !(0.0..100.0).contains(&args.threshold) {
                    return Err("--threshold wants a percentage in [0, 100)".into());
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Pulls `"key": <number>` out of one line of the scoreboard's own JSON.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls `"key": "<string>"` out of one line of the scoreboard's JSON.
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let end = line[at..].find('"')?;
    Some(line[at..at + end].to_string())
}

/// `(threads, window, cleaner-tag, throughput)` for every row in a
/// scoreboard file. Plain workload rows carry no `cleaner` key and get
/// the empty tag; contention rows key three ways per (threads, window).
fn scoreboard_rows(text: &str) -> Vec<(u64, u64, String, f64)> {
    text.lines()
        .filter_map(|l| {
            Some((
                json_num(l, "threads")? as u64,
                json_num(l, "window")? as u64,
                json_str(l, "cleaner").unwrap_or_default(),
                json_num(l, "throughput_ops_per_s")?,
            ))
        })
        .collect()
}

/// `ycsb diff`: compare fresh `BENCH_ycsb_*.json` against the committed
/// trajectory, cell by cell. Exit non-zero when any shared `(threads,
/// window)` cell lost more than `--threshold` percent throughput — the
/// nightly scoreboard's regression gate.
fn run_diff() -> std::process::ExitCode {
    let args = match parse_diff_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return std::process::ExitCode::from(2);
        }
    };
    let mut names: Vec<String> = match std::fs::read_dir(&args.fresh) {
        Ok(dir) => dir
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_ycsb_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read fresh dir {}: {e}", args.fresh.display());
            return std::process::ExitCode::FAILURE;
        }
    };
    names.sort();
    let mut compared = 0usize;
    let mut regressions = 0usize;
    for name in &names {
        let fresh = match std::fs::read_to_string(args.fresh.join(name)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {name}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        let Ok(base) = std::fs::read_to_string(args.baseline.join(name)) else {
            println!("{name}: no committed baseline, skipping");
            continue;
        };
        let fresh_rows = scoreboard_rows(&fresh);
        for (threads, window, tag, was) in scoreboard_rows(&base) {
            let Some((_, _, _, now)) = fresh_rows
                .iter()
                .find(|(t, w, c, _)| *t == threads && *w == window && *c == tag)
            else {
                // The committed trajectory covers cells (e.g. 64 threads)
                // the smoke run doesn't produce; only shared cells gate.
                continue;
            };
            compared += 1;
            let ratio = if was > 0.0 { now / was } else { 1.0 };
            // Contention cells measure interference between a foreground
            // fleet and a concurrent cleaner; their throughput is
            // bimodal run to run (group-commit alignment puts a cell at
            // ~0.6x of its fast mode), so they gate at a wider band than
            // the quiet single-tenant workloads.
            let threshold = if tag.is_empty() {
                args.threshold
            } else {
                args.threshold.max(50.0)
            };
            let regressed = ratio < 1.0 - threshold / 100.0;
            let tag_col = if tag.is_empty() {
                String::new()
            } else {
                format!(" cleaner={tag}")
            };
            println!(
                "{name}: threads={threads} window={window}{tag_col} \
                 {was:.0} -> {now:.0} ops/s ({ratio:.2}x){}",
                if regressed { "  REGRESSION" } else { "" }
            );
            if regressed {
                regressions += 1;
            }
        }
    }
    if compared == 0 {
        eprintln!(
            "ycsb diff: no comparable cells between {} and {}",
            args.baseline.display(),
            args.fresh.display()
        );
        return std::process::ExitCode::FAILURE;
    }
    println!(
        "ycsb diff: {compared} cells compared, {regressions} regressed \
         (threshold {:.0}%)",
        args.threshold
    );
    if regressions > 0 {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}

fn main() -> std::process::ExitCode {
    if std::env::args().nth(1).as_deref() == Some("diff") {
        return run_diff();
    }
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return std::process::ExitCode::from(2);
        }
    };
    let runtime = if cfg!(target_os = "linux") {
        Runtime::Epoll
    } else {
        Runtime::default_for_platform()
    };
    if args.contention {
        return run_contention(&args, runtime);
    }
    let store_name = if args.file_store { "file" } else { "mem" };
    // A requested RS geometry dictates the cluster size; every stripe
    // spans the whole group, so width and server count must agree.
    if let Some(g) = args.geometry {
        args.servers = g.width() as u32;
    }
    // Default XOR runs keep their historical filenames (the committed
    // baselines); RS runs get a `_<k>p<m>` suffix and their own baseline.
    let geometry_suffix = args
        .geometry
        .map(|g| format!("_{}p{}", g.data(), g.parity()))
        .unwrap_or_default();
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {e}", args.out.display());
        return std::process::ExitCode::FAILURE;
    }

    for workload in &args.workloads {
        let mut rows = Vec::new();
        let mut table = Vec::new();
        for &threads in &args.threads {
            for &window in &args.windows {
                let cluster = match BenchCluster::spawn(
                    args.servers,
                    args.file_store,
                    args.cache_fragments,
                    args.group_ms,
                    runtime,
                ) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("cluster setup failed: {e}");
                        return std::process::ExitCode::FAILURE;
                    }
                };
                let cfg = RunConfig {
                    threads,
                    window,
                    records: args.records,
                    ops: args.ops,
                    value_bytes: args.value_bytes,
                    fragment_bytes: args.fragment_bytes,
                    flush_every: args.flush_every,
                    rate: args.rate,
                    servers: args.servers,
                    geometry: args.geometry,
                    seed: args.seed,
                };
                let result = match run_workload(cluster.transport_factory(), *workload, cfg) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!(
                            "workload {} threads={threads} window={window} failed: {e}",
                            workload.name
                        );
                        return std::process::ExitCode::FAILURE;
                    }
                };
                let s = result.summary();
                table.push(vec![
                    threads.to_string(),
                    window.to_string(),
                    format!("{:.0}", result.throughput()),
                    s.p50_us.to_string(),
                    s.p99_us.to_string(),
                    s.p999_us.to_string(),
                ]);
                rows.push(Row {
                    threads,
                    window,
                    result,
                });
                if args.dump_metrics {
                    eprintln!(
                        "# metrics threads={threads} window={window}\n{}",
                        swarm_metrics::snapshot().to_json()
                    );
                }
            }
        }

        print_table(
            &format!(
                "YCSB '{}' over tcp-{runtime} ({store_name} store, {} B values{})",
                workload.name,
                args.value_bytes,
                args.geometry
                    .map(|g| format!(", geometry {g}"))
                    .unwrap_or_default()
            ),
            &["threads", "window", "ops/s", "p50_us", "p99_us", "p999_us"],
            &table,
        );
        let speedup = speedup_at_8_threads(&rows);
        if let Some(x) = speedup {
            println!("window 8 over window 1 at 8 threads: {x:.2}x");
        }

        let json = format!(
            "{{\n  \"bench\": \"ycsb\",\n  \"workload\": \"{}\",\n  \
             \"mix\": {{\"read_pct\": {}, \"scan_pct\": {}, \"update_pct\": {}, \
             \"insert_pct\": {}, \"dist\": \"{}\"}},\n  \
             \"transport\": \"tcp-{runtime}\",\n  \"store\": \"{store_name}\",\n  \
             \"servers\": {},\n  \"geometry\": \"{}\",\n  \"value_bytes\": {},\n  \
             \"records_per_thread\": {},\n  \
             \"ops_per_thread\": {},\n  \"mode\": \"{}\",\n  \"rows\": [\n{}\n  ],\n  \
             \"speedup_w8_over_w1_at_8_threads\": {}\n}}\n",
            workload.name,
            workload.read_pct,
            workload.scan_pct,
            workload.update_pct,
            100 - workload.read_pct - workload.scan_pct - workload.update_pct,
            match workload.dist {
                swarm_bench::ycsb::KeyDist::Zipfian => "zipfian",
                swarm_bench::ycsb::KeyDist::Uniform => "uniform",
                swarm_bench::ycsb::KeyDist::Latest => "latest",
            },
            args.servers,
            args.geometry
                .map(|g| g.to_string())
                .unwrap_or_else(|| format!("{}+1", args.servers - 1)),
            args.value_bytes,
            args.records,
            args.ops,
            if args.rate.is_some() {
                "open"
            } else {
                "closed"
            },
            rows.iter().map(json_row).collect::<Vec<_>>().join(",\n"),
            speedup.map_or("null".to_string(), |x| format!("{x:.3}")),
        );
        let path = args.out.join(format!(
            "BENCH_ycsb_{}{geometry_suffix}.json",
            workload.name
        ));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {}: {e}", path.display());
            return std::process::ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    std::process::ExitCode::SUCCESS
}
