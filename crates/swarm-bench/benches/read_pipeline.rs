//! Read-pipelining benchmark (DESIGN.md §16): the mirror of
//! `write_pipeline.rs`. A memory cluster whose reads each cost a fixed
//! simulated service time is driven with the read window at 1 (serial,
//! paper-faithful) versus 8 (pipelined), over three access patterns:
//!
//! * `sequential` — `Log::read` block by block, one RPC per read (the
//!   window's floor: nothing to overlap, so this row is the baseline);
//! * `scan/batch1` and `scan/batch16` — `Log::read_many` over runs of 1
//!   vs 16 blocks, where batch 16 rides `ReadBatch` RPCs and the window
//!   overlaps the per-chunk service time;
//! * `degraded` — one server held down, so reads touching it come back
//!   via parity reconstruction, whose member fetches the window overlaps.
//!
//! The YCSB scoreboard (`BENCH_ycsb_{c,d,e}.json`) measures the same
//! effects over real TCP.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use swarm_log::{Log, LogConfig};
use swarm_net::{Connection, MemTransport, PendingCall, PreparedRequest, Request, Transport};
use swarm_server::{MemStore, StorageServer};
use swarm_types::{BlockAddr, ClientId, Result, ServerId, ServiceId};

const SERVERS: u32 = 5;
const BLOCKS: usize = 48;
const BLOCK_BYTES: usize = 4 << 10;
/// Simulated per-read service time — the disk/daemon latency a real
/// storage server charges, which the read window exists to overlap.
const READ_DELAY: Duration = Duration::from_micros(400);
const SVC: ServiceId = ServiceId::new(9);

/// Decorates `MemTransport` so every pipelined call completes on its own
/// thread after `READ_DELAY`, like a response arriving on a mux socket.
struct DelayTransport {
    inner: Arc<MemTransport>,
}

struct DelayConn {
    inner: Box<dyn Connection>,
    mem: Arc<MemTransport>,
    client: ClientId,
}

impl Connection for DelayConn {
    // Plain calls (mount, locate broadcasts, retries) pass straight
    // through: the simulated latency models *service* time, charged only
    // on the pipelined path the window manages.
    fn call(&mut self, request: &Request) -> Result<swarm_net::Response> {
        self.inner.call(request)
    }

    fn start_prepared(&mut self, prepared: &PreparedRequest) -> PendingCall {
        let server = self.inner.server();
        let mem = self.mem.clone();
        let client = self.client;
        let request = prepared.request().clone();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            std::thread::sleep(READ_DELAY);
            let result = mem
                .connect(server, client)
                .and_then(|mut c| c.call(&request));
            let _ = tx.send(result);
        });
        PendingCall::deferred(move || {
            rx.recv()
                .unwrap_or(Err(swarm_types::SwarmError::ServerUnavailable(server)))
        })
    }

    fn pipeline_width(&self) -> usize {
        64
    }

    fn server(&self) -> ServerId {
        self.inner.server()
    }
}

impl Transport for DelayTransport {
    fn connect(&self, server: ServerId, client: ClientId) -> Result<Box<dyn Connection>> {
        Ok(Box::new(DelayConn {
            inner: self.inner.connect(server, client)?,
            mem: self.inner.clone(),
            client,
        }))
    }

    fn servers(&self) -> Vec<ServerId> {
        self.inner.servers()
    }
}

fn cluster() -> (Arc<DelayTransport>, Arc<MemTransport>) {
    let mem = Arc::new(MemTransport::new());
    for i in 0..SERVERS {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        mem.register(ServerId::new(i), srv);
    }
    (Arc::new(DelayTransport { inner: mem.clone() }), mem)
}

fn config(window: usize) -> LogConfig {
    LogConfig::new(
        ClientId::new(100),
        (0..SERVERS).map(ServerId::new).collect(),
    )
    .expect("valid group")
    .fragment_size(8 * 1024)
    // Reads must hit the servers, not a client cache.
    .cache_fragments(0)
    .read_window(window)
}

/// One populated log per window setting; the corpus is written once.
fn populate(transport: Arc<DelayTransport>, window: usize) -> (Log, Vec<BlockAddr>) {
    let log = Log::create(transport, config(window)).expect("create log");
    let mut addrs = Vec::with_capacity(BLOCKS);
    for i in 0..BLOCKS {
        let payload = vec![i as u8; BLOCK_BYTES];
        addrs.push(log.append_block(SVC, b"", &payload).expect("append"));
    }
    log.flush().expect("flush");
    (log, addrs)
}

fn bench_read_pipeline(c: &mut Criterion) {
    for window in [1usize, 8] {
        let (transport, mem) = cluster();
        let (log, addrs) = populate(transport, window);
        let mut group = c.benchmark_group(format!("read_pipeline/window{window}"));
        group.throughput(Throughput::Elements(BLOCKS as u64));
        group.sample_size(10);

        group.bench_function("sequential", |b| {
            b.iter(|| {
                for &addr in &addrs {
                    let got = log.read(addr).expect("read");
                    assert_eq!(got.len(), BLOCK_BYTES);
                }
            });
        });
        for batch in [1usize, 16] {
            group.bench_function(format!("scan/batch{batch}"), |b| {
                b.iter(|| {
                    for chunk in addrs.chunks(batch) {
                        let got = log.read_many(chunk).expect("scan");
                        assert_eq!(got.len(), chunk.len());
                    }
                });
            });
        }
        // Hold one server down: reads whose home it was come back via
        // parity reconstruction, member fetches riding the read window.
        mem.set_down(ServerId::new(0), true);
        group.bench_function("degraded", |b| {
            b.iter(|| {
                for &addr in &addrs {
                    let got = log.read(addr).expect("degraded read");
                    assert_eq!(got.len(), BLOCK_BYTES);
                }
            });
        });
        mem.set_down(ServerId::new(0), false);
        group.finish();
    }
}

criterion_group!(benches, bench_read_pipeline);
criterion_main!(benches);
