//! Client pipelining benchmark: N concurrent callers against one TCP
//! server, blocking runtime (one socket + one in-flight call per caller)
//! versus the epoll/mux runtime (all callers multiplexed on one socket,
//! N calls in flight). Rows:
//!
//! * `blocking/1_caller`, `blocking/8_callers` — thread-per-connection
//!   stack; 8 callers cost 8 sockets and 8 parked server workers;
//! * `mux/1_caller`, `mux/8_callers` — request-id pipelining; 8 callers
//!   share one socket, and throughput comes from overlapping requests on
//!   it rather than from more connections.
//!
//! The interesting comparison is `8_callers`: mux keeps per-connection
//! server state constant while the blocking rows scale it linearly.
//! Linux-only rows are skipped elsewhere (the reactor needs epoll).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use swarm_net::tcp::{ServerConfig, TcpServer, TcpTransport};
use swarm_net::{Request, RequestHandler, Response, Runtime, Transport};
use swarm_types::{ClientId, ServerId};

const CALLS_PER_CALLER: usize = 64;
const PAYLOAD: usize = 4 << 10;

/// Answers every request with a fixed 4 KiB payload — network cost with
/// no storage behind it.
struct FixedData(swarm_types::Bytes);

impl RequestHandler for FixedData {
    fn handle(&self, _client: ClientId, _request: Request) -> Response {
        Response::Data(self.0.share())
    }
}

fn spawn_server(runtime: Runtime) -> TcpServer {
    TcpServer::spawn_with_config(
        ServerId::new(0),
        "127.0.0.1:0",
        Arc::new(FixedData(vec![7u8; PAYLOAD].into())),
        ServerConfig {
            runtime,
            workers: 16,
            ..ServerConfig::default()
        },
    )
    .expect("spawn bench server")
}

/// `callers` threads issue `CALLS_PER_CALLER` pings each and join.
fn drive(transport: &Arc<TcpTransport>, callers: usize) {
    std::thread::scope(|s| {
        for _ in 0..callers {
            let transport = transport.clone();
            s.spawn(move || {
                let mut conn = transport
                    .connect(ServerId::new(0), ClientId::new(1))
                    .expect("connect");
                for _ in 0..CALLS_PER_CALLER {
                    match conn.call(&Request::Ping).expect("call") {
                        Response::Data(_) => {}
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            });
        }
    });
}

fn bench_pipelining(c: &mut Criterion) {
    let mut rows: Vec<(&str, Runtime)> = vec![("blocking", Runtime::Blocking)];
    if cfg!(target_os = "linux") {
        rows.push(("mux", Runtime::Epoll));
    }
    for (label, runtime) in rows {
        let server = spawn_server(runtime);
        let transport = Arc::new(TcpTransport::with_servers([(
            ServerId::new(0),
            server.addr(),
        )]));
        transport.set_runtime(runtime);
        let mut group = c.benchmark_group(format!("net_pipeline/{label}"));
        for callers in [1usize, 8] {
            group.throughput(Throughput::Elements((callers * CALLS_PER_CALLER) as u64));
            group.sample_size(10);
            group.bench_function(format!("{callers}_callers"), |b| {
                b.iter(|| drive(&transport, callers));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_pipelining);
criterion_main!(benches);
