//! Ablations of the design choices DESIGN.md calls out: stripe width,
//! pipelining depth, checkpoint interval, cleaner policy, fragment size.
//!
//! Model-level ablations (stripe width, pipelining, fragment size) sweep
//! the testbed simulation; system-level ablations (checkpoint interval,
//! cleaner policy) run the real implementation on an in-process cluster.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use sting::{StingConfig, StingFs, StingService};
use swarm_bench::{log_config, mem_cluster};
use swarm_cleaner::{CleanPolicy, Cleaner};
use swarm_log::{recover, Log};
use swarm_services::{Service, ServiceStack};
use swarm_sim::{simulate_write, Calibration};
use swarm_types::ServiceId;

const STING_SVC: ServiceId = ServiceId::new(2);

/// §2.1.2: "the cost of computing and writing the parity fragment is
/// amortized over more data fragments" — useful bandwidth vs stripe width.
fn ablation_stripe_width(c: &mut Criterion) {
    let cal = Calibration::testbed_1999();
    println!("\n== ablation: stripe width (1 client, model) ==");
    println!("width  raw MB/s  useful MB/s  parity overhead");
    for width in [2u32, 3, 4, 6, 8, 16] {
        let p = simulate_write(&cal, 1, width, 20_000, 4096);
        println!(
            "{width:>5}  {:>8.2}  {:>11.2}  {:>14.0}%",
            p.raw_mb_per_s,
            p.useful_mb_per_s,
            (1.0 - p.useful_mb_per_s / p.raw_mb_per_s) * 100.0
        );
    }
    // Token criterion entry so the sweep shows up in bench output.
    c.bench_function("ablation_stripe_width_w8_model", |b| {
        b.iter(|| simulate_write(&cal, 1, 8, 1_000, 4096));
    });
}

/// §2.1.2's flow-control discussion: queue depth 0 (fully synchronous)
/// vs the paper's overlap scheme vs deeper pipelines.
fn ablation_pipelining(c: &mut Criterion) {
    println!("\n== ablation: write pipelining depth (2 clients × 1 server, model) ==");
    println!("window  raw MB/s");
    for window in [0usize, 1, 2, 4, 8] {
        let mut cal = Calibration::testbed_1999();
        cal.flow_window = window;
        let p = simulate_write(&cal, 2, 1, 20_000, 4096);
        println!("{window:>6}  {:>8.2}", p.raw_mb_per_s);
    }
    let cal = Calibration::testbed_1999();
    c.bench_function("ablation_pipelining_w2_model", |b| {
        b.iter(|| simulate_write(&cal, 2, 1, 1_000, 4096));
    });
}

/// §2.1.3: "checkpoints … their frequency establishes an upper bound on
/// recovery time" — measured on the real system: records written since
/// the last checkpoint vs wall-clock recovery time.
fn ablation_checkpoint_interval(c: &mut Criterion) {
    println!("\n== ablation: checkpoint interval vs recovery time (real system) ==");
    println!("records-after-ckpt  recovery");
    for records_after in [0u32, 100, 1000, 5000] {
        let transport = mem_cluster(3);
        {
            let log = Log::create(transport.clone(), log_config(1, 3)).unwrap();
            log.checkpoint(STING_SVC, b"anchor").unwrap();
            for k in 0..records_after {
                log.append_record(STING_SVC, (k % 7) as u16, &[0u8; 64])
                    .unwrap();
            }
            log.flush().unwrap();
        }
        let start = std::time::Instant::now();
        let (_log, replay) = recover(transport, log_config(1, 3), &[STING_SVC]).unwrap();
        let took = start.elapsed();
        assert_eq!(replay.records_for(STING_SVC).len(), records_after as usize);
        println!("{records_after:>18}  {took:?}");
    }
    c.bench_function("recover_1000_records", |b| {
        b.iter_with_setup(
            || {
                let transport = mem_cluster(3);
                {
                    let log = Log::create(transport.clone(), log_config(1, 3)).unwrap();
                    log.checkpoint(STING_SVC, b"anchor").unwrap();
                    for k in 0..1000u32 {
                        log.append_record(STING_SVC, (k % 7) as u16, &[0u8; 64])
                            .unwrap();
                    }
                    log.flush().unwrap();
                }
                transport
            },
            |transport| recover(transport, log_config(1, 3), &[STING_SVC]).unwrap(),
        );
    });
}

fn churned_fs(
    transport: Arc<swarm_net::MemTransport>,
) -> (Arc<Log>, Arc<StingFs>, Arc<ServiceStack>) {
    let log = Arc::new(Log::create(transport, log_config(1, 3).fragment_size(16 * 1024)).unwrap());
    let fs = StingFs::format(
        log.clone(),
        StingConfig {
            service: STING_SVC,
            block_size: 4096,
            cache_blocks: 64,
        },
    )
    .unwrap();
    // Skewed churn: small hot files rewritten often, big cold files once.
    for i in 0..20 {
        fs.write_file(&format!("/cold{i}"), 0, &vec![1u8; 12_000])
            .unwrap();
    }
    for round in 0..10 {
        for i in 0..5 {
            fs.write_file(&format!("/hot{i}"), 0, &vec![round as u8; 4_000])
                .unwrap();
        }
        if round % 3 == 0 {
            fs.checkpoint().unwrap();
        }
    }
    fs.unmount().unwrap();
    let mut stack = ServiceStack::new();
    let svc: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(StingService::new(fs.clone())));
    stack.register(svc).unwrap();
    (log, fs, Arc::new(stack))
}

/// §2.1.4 / Blackwell reference: greedy vs cost–benefit victim selection
/// under skewed churn — cost–benefit should move fewer bytes per
/// reclaimed stripe.
fn ablation_cleaner_policy(c: &mut Criterion) {
    println!("\n== ablation: cleaner policy under skewed churn (real system) ==");
    println!("policy        stripes  blocks_moved  bytes_moved  bytes_reclaimed");
    for (name, policy) in [
        ("greedy", CleanPolicy::Greedy),
        ("cost-benefit", CleanPolicy::CostBenefit),
    ] {
        let transport = mem_cluster(3);
        let (log, _fs, stack) = churned_fs(transport);
        let cleaner = Cleaner::new(log, stack, policy);
        let stats = cleaner.clean_pass(6).unwrap();
        println!(
            "{name:<13} {:>7}  {:>12}  {:>11}  {:>15}",
            stats.stripes_cleaned, stats.blocks_moved, stats.bytes_moved, stats.bytes_reclaimed
        );
    }
    c.bench_function("clean_pass_cost_benefit", |b| {
        b.iter_with_setup(
            || {
                let transport = mem_cluster(3);
                let (log, _fs, stack) = churned_fs(transport);
                Cleaner::new(log, stack, CleanPolicy::CostBenefit)
            },
            |cleaner| cleaner.clean_pass(4).unwrap(),
        );
    });
}

/// The 1 MB fragment-size choice (§3.3): bandwidth vs fragment size on
/// the model (small fragments pay per-fragment costs; huge ones hurt
/// pipelining granularity — and on real disks, slot management).
fn ablation_fragment_size(c: &mut Criterion) {
    println!("\n== ablation: fragment size (1 client × 4 servers, model) ==");
    println!("fragment  raw MB/s  useful MB/s");
    for frag_kb in [64u64, 256, 1024, 4096] {
        let mut cal = Calibration::testbed_1999();
        cal.fragment_size = frag_kb * 1024;
        let p = simulate_write(&cal, 1, 4, 20_000, 4096);
        println!(
            "{:>6}KB  {:>8.2}  {:>11.2}",
            frag_kb, p.raw_mb_per_s, p.useful_mb_per_s
        );
    }
    let cal = Calibration::testbed_1999();
    c.bench_function("ablation_fragment_size_1mb_model", |b| {
        b.iter(|| simulate_write(&cal, 1, 4, 1_000, 4096));
    });
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_stripe_width,
    ablation_pipelining,
    ablation_checkpoint_interval,
    ablation_cleaner_policy,
    ablation_fragment_size
);
criterion_main!(ablations);
