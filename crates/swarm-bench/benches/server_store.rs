//! Server store-path concurrency benchmark: the sharded `FileStore`
//! (fragment I/O outside any global lock) against a serialized baseline
//! that emulates the old architecture — every store funneled through one
//! global mutex. Three rows per thread count:
//!
//! * `serial_global_lock` — sharded store, but callers hold a global
//!   `Mutex<()>` across the whole store (the pre-sharding behaviour);
//! * `sharded_strict` — concurrent stores, one fsync each;
//! * `sharded_group` — concurrent stores, group-committed journal.
//!
//! The acceptance bar is `sharded_strict ≥ 2× serial_global_lock` at
//! 8 threads. Note that `sharded_group` trades commit latency for fsync
//! count: on devices where fsync is nearly free (tmpfs CI runners) the
//! fixed batching window dominates and the row can trail `strict`; its
//! win shows on real disks where an fsync costs milliseconds.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parking_lot::Mutex;
use swarm_server::{Durability, FileStore, FragmentStore};
use swarm_types::{ClientId, FragmentId};

const THREADS: u64 = 8;
const STORES_PER_THREAD: u64 = 8;
const FRAG_LEN: usize = 8 << 10;

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path =
            std::env::temp_dir().join(format!("swarm-bench-store-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One benchmark iteration: `THREADS` threads each store
/// `STORES_PER_THREAD` fresh 8 KiB fragments. `gate` is `Some` for the
/// serialized baseline — held across each store call to emulate the old
/// single-lock write path.
fn concurrent_stores(store: &FileStore, seq: &AtomicU64, gate: Option<&Mutex<()>>) {
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(move || {
                for _ in 0..STORES_PER_THREAD {
                    let n = seq.fetch_add(1, Ordering::Relaxed);
                    let fid = FragmentId::new(ClientId::new(7), n);
                    let data = vec![n as u8; FRAG_LEN];
                    let _held = gate.map(|g| g.lock());
                    store.store(fid, data.into(), false).unwrap();
                }
            });
        }
    });
}

fn bench_store_path(c: &mut Criterion) {
    let bytes_per_iter = THREADS * STORES_PER_THREAD * FRAG_LEN as u64;
    let mut group = c.benchmark_group("server_store_8t");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes_per_iter));

    let cases: [(&str, Durability, bool); 3] = [
        ("serial_global_lock", Durability::Strict, true),
        ("sharded_strict", Durability::Strict, false),
        (
            "sharded_group",
            Durability::Group(Duration::from_millis(2)),
            false,
        ),
    ];
    for (name, durability, serialize) in cases {
        let dir = TempDir::new();
        let store = FileStore::open_with_durability(&dir.0, 0, durability).unwrap();
        let seq = AtomicU64::new(0);
        let gate = Mutex::new(());
        group.bench_function(name, |b| {
            b.iter(|| concurrent_stores(&store, &seq, serialize.then_some(&gate)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store_path);
criterion_main!(benches);
