//! Read-path benchmarks over the parallel read engine: sequential read
//! bandwidth through the home fast path, degraded (reconstructing) reads
//! with a server down, and the recovery rollforward scan with read-ahead.
//!
//! Each group measures the pooled, fan-out engine against the serial
//! baseline (`set_fanout(false)`, `read_ahead(0)`) — the ratio between
//! rows is the parallel-engine speedup on the same cluster.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use swarm_bench::{log_config, mem_cluster};
use swarm_log::{recover, Log};
use swarm_types::{BlockAddr, ServiceId};

const SVC: ServiceId = ServiceId::new(1);
const BLOCK: usize = 8 * 1024;
const BLOCKS: usize = 64;

/// A flushed log plus the addresses of its blocks, cache disabled so every
/// read exercises the engine.
fn seeded_log(servers: u32, fanout: bool) -> (Arc<swarm_net::MemTransport>, Log, Vec<BlockAddr>) {
    let transport = mem_cluster(servers);
    let config = log_config(1, servers)
        .fragment_size(32 * 1024)
        .cache_fragments(0);
    let log = Log::create(transport.clone(), config).unwrap();
    log.engine().set_fanout(fanout);
    let mut addrs = Vec::with_capacity(BLOCKS);
    for i in 0..BLOCKS {
        addrs.push(
            log.append_block(SVC, b"", &vec![(i % 251) as u8; BLOCK])
                .unwrap(),
        );
    }
    log.flush().unwrap();
    (transport, log, addrs)
}

fn bench_sequential_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequential_read");
    g.sample_size(20);
    g.throughput(Throughput::Bytes((BLOCKS * BLOCK) as u64));
    for (name, fanout) in [("pooled_fanout", true), ("serial_baseline", false)] {
        let (_t, log, addrs) = seeded_log(4, fanout);
        g.bench_function(name, |b| {
            b.iter(|| {
                for addr in &addrs {
                    criterion::black_box(log.read(*addr).unwrap());
                }
            });
        });
    }
    g.finish();
}

fn bench_degraded_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("degraded_read");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((BLOCKS * BLOCK) as u64));
    for (name, fanout) in [("pooled_fanout", true), ("serial_baseline", false)] {
        let (transport, log, addrs) = seeded_log(4, fanout);
        // One server down: reads of its fragments reconstruct from the
        // surviving stripe members on every iteration (cache is off and
        // the fragment map entry is forgotten each round).
        transport.set_down(swarm_types::ServerId::new(0), true);
        g.bench_function(name, |b| {
            b.iter(|| {
                for addr in &addrs {
                    log.forget_fragment(addr.fid);
                    criterion::black_box(log.read(*addr).unwrap());
                }
            });
        });
    }
    g.finish();
}

fn bench_recovery_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery_scan");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((BLOCKS * BLOCK) as u64));
    for (name, read_ahead) in [("read_ahead_4", 4usize), ("no_read_ahead", 0)] {
        let (transport, log, _addrs) = seeded_log(4, read_ahead > 0);
        drop(log); // client crash: rollforward scans the whole log
        let config = log_config(1, 4)
            .fragment_size(32 * 1024)
            .cache_fragments(0)
            .read_ahead(read_ahead);
        g.bench_function(name, |b| {
            b.iter(|| {
                let (log, replay) = recover(
                    transport.clone() as Arc<dyn swarm_net::Transport>,
                    config.clone(),
                    &[SVC],
                )
                .unwrap();
                criterion::black_box((log, replay.records_for(SVC).len()));
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sequential_read,
    bench_degraded_read,
    bench_recovery_scan
);
criterion_main!(benches);
