//! Microbenchmarks of the real implementation (not the testbed model):
//! parity XOR, fragment encode/parse, log append throughput, Sting file
//! operations, reconstruction, and the LRU/LZSS substrates.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sting::{StingConfig, StingFs};
use swarm_bench::{log_config, mem_cluster};
use swarm_log::{Log, LogConfig, StripeGroup};
use swarm_net::MemTransport;
use swarm_services::{lzss, LruCache, TransformStack};
use swarm_types::{ClientId, ServerId, ServiceId};

const SVC: ServiceId = ServiceId::new(1);

fn bench_parity_xor(c: &mut Criterion) {
    use swarm_log::parity::xor_into;
    let mut g = c.benchmark_group("parity_xor");
    for size in [64 * 1024usize, 1 << 20] {
        let src = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{}KiB", size / 1024), |b| {
            let mut dst = vec![0u8; size];
            b.iter(|| xor_into(&mut dst, &src));
        });
    }
    g.finish();
}

fn bench_fragment_codec(c: &mut Criterion) {
    use swarm_log::fragment::{FragmentBuilder, FragmentView};
    use swarm_types::StripeSeq;
    let group = StripeGroup::new((0..4).map(ServerId::new).collect()).unwrap();
    let plan = group.plan(ClientId::new(1), StripeSeq::new(0));
    let mut g = c.benchmark_group("fragment");
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("build_seal_1MiB", |b| {
        b.iter(|| {
            let mut builder = FragmentBuilder::new(plan.header(0), 1 << 20);
            let block = vec![7u8; 4096];
            while builder.fits(4200) {
                builder.append_block(SVC, b"0123456789abcdef", &block);
            }
            builder.seal()
        });
    });
    let sealed = {
        let mut builder = FragmentBuilder::new(plan.header(0), 1 << 20);
        let block = vec![7u8; 4096];
        while builder.fits(4200) {
            builder.append_block(SVC, b"0123456789abcdef", &block);
        }
        builder.seal()
    };
    g.bench_function("parse_1MiB", |b| {
        b.iter(|| FragmentView::parse(&sealed.bytes).unwrap());
    });
    g.finish();
}

fn make_log(servers: u32) -> Log {
    // new_fast skips the per-call codec round trip so the bench measures
    // the log layer, not the test harness.
    let fast = Arc::new(MemTransport::new_fast());
    for s in 0..servers {
        let srv = swarm_server::StorageServer::new(ServerId::new(s), swarm_server::MemStore::new())
            .into_shared();
        fast.register(ServerId::new(s), srv);
    }
    Log::create(fast, log_config(1, servers)).unwrap()
}

fn bench_log_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("log_append");
    g.sample_size(20);
    for servers in [2u32, 4, 8] {
        g.throughput(Throughput::Bytes(4096 * 256));
        g.bench_function(format!("{servers}_servers_1MiB_of_4k_blocks"), |b| {
            let log = make_log(servers);
            b.iter(|| {
                for _ in 0..256 {
                    log.append_block(SVC, b"", &[5u8; 4096]).unwrap();
                }
                log.flush().unwrap();
            });
        });
    }
    g.finish();
}

fn bench_reconstruction(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconstruction");
    g.sample_size(10);
    for servers in [3u32, 8] {
        g.throughput(Throughput::Bytes(1 << 20));
        g.bench_function(format!("rebuild_1MiB_fragment_width_{servers}"), |b| {
            let transport = mem_cluster(servers);
            let config =
                LogConfig::new(ClientId::new(1), (0..servers).map(ServerId::new).collect())
                    .unwrap();
            let log = Log::create(transport.clone(), config).unwrap();
            let mut addr = None;
            for _ in 0..(servers as usize) * 300 {
                addr = Some(log.append_block(SVC, b"", &[9u8; 4000]).unwrap());
            }
            log.flush().unwrap();
            let addr = addr.unwrap();
            let engine = log.engine();
            let (victim, _) =
                swarm_log::reconstruct::locate_fragment(engine, addr.fid).expect("fragment stored");
            transport.set_down(victim, true);
            b.iter(|| swarm_log::reconstruct::reconstruct_fragment(engine, addr.fid).unwrap());
        });
    }
    g.finish();
}

fn bench_sting_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("sting");
    g.sample_size(20);
    g.bench_function("create_write_4k_unlink", |b| {
        let transport = mem_cluster(2);
        let log = Arc::new(Log::create(transport, log_config(1, 2)).unwrap());
        let fs = StingFs::format(log, StingConfig::default()).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let path = format!("/bench{i}");
            i += 1;
            fs.write_file(&path, 0, &[3u8; 4096]).unwrap();
            fs.unlink(&path).unwrap();
        });
    });
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("write_1MiB_file", |b| {
        let transport = mem_cluster(2);
        let log = Arc::new(Log::create(transport, log_config(1, 2)).unwrap());
        let fs = StingFs::format(log, StingConfig::default()).unwrap();
        let data = vec![1u8; 1 << 20];
        let mut i = 0u64;
        b.iter(|| {
            let path = format!("/big{i}");
            i += 1;
            fs.write_file(&path, 0, &data).unwrap();
        });
    });
    g.bench_function("cached_read_1MiB", |b| {
        let transport = mem_cluster(2);
        let log = Arc::new(Log::create(transport, log_config(1, 2)).unwrap());
        let fs = StingFs::format(log, StingConfig::default()).unwrap();
        fs.write_file("/hot", 0, &vec![1u8; 1 << 20]).unwrap();
        fs.flush().unwrap();
        fs.read_to_end("/hot").unwrap(); // warm
        b.iter(|| fs.read_to_end("/hot").unwrap());
    });
    g.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    g.bench_function("lru_insert_get", |b| {
        b.iter_batched(
            || LruCache::<u64, u64>::new(1024),
            |mut cache| {
                for i in 0..4096u64 {
                    cache.insert(i, i);
                    cache.get(&(i / 2));
                }
                cache
            },
            BatchSize::SmallInput,
        );
    });
    let text: Vec<u8> = include_str!("microbench.rs").as_bytes().repeat(4);
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("lzss_compress_source", |b| {
        b.iter(|| lzss::compress(&text));
    });
    let packed = lzss::compress(&text);
    g.bench_function("lzss_decompress_source", |b| {
        b.iter(|| lzss::decompress(&packed).unwrap());
    });
    let stack = TransformStack::new()
        .push(swarm_services::CompressTransform)
        .push(swarm_services::EncryptTransform::new(b"bench key"))
        .push(swarm_services::ChecksumTransform);
    let block = vec![0x5au8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("transform_stack_4k_roundtrip", |b| {
        b.iter(|| {
            let enc = stack.encode(block.clone(), 7);
            stack.decode(enc, 7).unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_parity_xor,
    bench_fragment_codec,
    bench_log_append,
    bench_reconstruction,
    bench_sting_ops,
    bench_substrates
);
criterion_main!(benches);
