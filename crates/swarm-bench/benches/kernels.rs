//! Word-wide kernel benchmarks: the slice-by-8 CRC32, the u64-wide
//! parity XOR, and the SWAR GF(2^8) Reed–Solomon multiply-fold against
//! their byte-at-a-time baselines, plus a full 4+2 two-erasure decode and
//! end-to-end store throughput over the zero-copy request path.
//!
//! The baselines (`crc32_baseline`, `xor_into_baseline`) are the exact
//! scalar loops the optimized kernels replaced; the ratio between the two
//! rows of each group is the kernel speedup.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use swarm_bench::mem_cluster;
use swarm_net::{PreparedRequest, Request, Transport};
use swarm_types::{ClientId, FragmentId, ServerId};

const MB: usize = 1_000_000;
const MIB: usize = 1 << 20;

fn bench_crc32(c: &mut Criterion) {
    use swarm_types::{crc::crc32_baseline, crc32};
    let buf: Vec<u8> = (0..MB).map(|i| (i % 251) as u8).collect();
    assert_eq!(crc32(&buf), crc32_baseline(&buf));
    let mut g = c.benchmark_group("crc32_1MB");
    g.throughput(Throughput::Bytes(MB as u64));
    g.bench_function("slice_by_8", |b| b.iter(|| crc32(&buf)));
    g.bench_function("baseline_bytewise", |b| b.iter(|| crc32_baseline(&buf)));
    g.finish();
}

fn bench_xor_into(c: &mut Criterion) {
    use swarm_log::parity::{xor_into, xor_into_baseline};
    let src: Vec<u8> = (0..MIB).map(|i| (i % 253) as u8).collect();
    let mut g = c.benchmark_group("xor_into_1MiB");
    g.throughput(Throughput::Bytes(MIB as u64));
    g.bench_function("word_wide", |b| {
        let mut dst = vec![0x5au8; MIB];
        b.iter(|| xor_into(&mut dst, &src));
    });
    g.bench_function("baseline_bytewise", |b| {
        let mut dst = vec![0x5au8; MIB];
        b.iter(|| xor_into_baseline(&mut dst, &src));
    });
    g.finish();
}

fn bench_rs_encode(c: &mut Criterion) {
    use swarm_log::gf::{mul_into, mul_into_baseline};
    let src: Vec<u8> = (0..MIB).map(|i| (i % 247) as u8).collect();
    // A non-trivial coefficient (1 would route through plain XOR).
    let coeff = 0x8e;
    let mut g = c.benchmark_group("rs_encode_1MiB");
    g.throughput(Throughput::Bytes(MIB as u64));
    g.bench_function("word_wide", |b| {
        let mut dst = vec![0x5au8; MIB];
        b.iter(|| mul_into(&mut dst, &src, coeff));
    });
    g.bench_function("baseline_bytewise", |b| {
        let mut dst = vec![0x5au8; MIB];
        b.iter(|| mul_into_baseline(&mut dst, &src, coeff));
    });
    g.finish();
}

fn bench_rs_decode(c: &mut Criterion) {
    use swarm_log::gf::{decode_rows, mul_into};
    // A 4+2 stripe with two data members lost: recompute both from the
    // four survivors — matrix inversion plus eight 256 KiB multiply-folds,
    // the client-side cost of one fully degraded stripe read.
    let k = 4usize;
    let frag = MIB / k;
    let members: Vec<Vec<u8>> = (0..k + 2)
        .map(|m| (0..frag).map(|i| ((i * 7 + m * 13) % 251) as u8).collect())
        .collect();
    let survivors = [1usize, 3, 4, 5];
    let wanted = [0usize, 2];
    let mut g = c.benchmark_group("rs_decode_4p2_two_lost");
    g.throughput(Throughput::Bytes(MIB as u64));
    g.bench_function("decode_two_data_members", |b| {
        b.iter(|| {
            let rows = decode_rows(k, &survivors, &wanted).unwrap();
            let mut out = Vec::with_capacity(wanted.len());
            for row in &rows {
                let mut rebuilt = Vec::with_capacity(frag);
                for (i, &s) in survivors.iter().enumerate() {
                    mul_into(&mut rebuilt, &members[s], row[i]);
                }
                out.push(rebuilt);
            }
            out
        });
    });
    g.finish();
}

fn bench_store_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_throughput");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(MIB as u64));
    // One prepared 1 MiB store per iteration: header encoded once up
    // front, the payload shared (refcount bump) into every request.
    g.bench_function("prepared_1MiB_store", |b| {
        let transport = mem_cluster(1);
        let client = ClientId::new(1);
        let payload = swarm_types::Bytes::from(vec![0xa5u8; MIB]);
        let mut conn = transport.connect(ServerId::new(0), client).unwrap();
        let mut seq = 0u64;
        b.iter(|| {
            let prepared = PreparedRequest::new(Request::Store {
                fid: FragmentId::new(client, seq),
                marked: false,
                ranges: vec![],
                data: payload.share(),
            });
            seq += 1;
            conn.call_prepared(&prepared).unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_crc32,
    bench_xor_into,
    bench_rs_encode,
    bench_rs_decode,
    bench_store_throughput
);
criterion_main!(kernels);
