//! Write-pipelining benchmark (DESIGN.md §15): appenders stream blocks
//! through `Log::append_block` + `flush` against a memory cluster whose
//! stores each cost a fixed simulated latency, with the write window at
//! 1 (paper-faithful serial stores) versus 8 (pipelined). Rows:
//!
//! * `window1/1_appender`, `window1/8_appenders` — each server channel
//!   waits out one store RTT at a time;
//! * `window8/1_appender`, `window8/8_appenders` — up to 8 stores ride
//!   the channel concurrently, so the simulated store latency overlaps.
//!
//! The interesting comparison is within an appender count: the window-8
//! row should approach `window x` lower wall time while the store
//! latency, not client CPU, is the bottleneck. The YCSB scoreboard
//! (`BENCH_ycsb_*.json`) measures the same effect over real TCP.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use swarm_log::{Log, LogConfig};
use swarm_net::{Connection, MemTransport, PendingCall, PreparedRequest, Request, Transport};
use swarm_server::{MemStore, StorageServer};
use swarm_types::{ClientId, Result, ServerId, ServiceId};

const SERVERS: u32 = 5;
const BLOCKS_PER_APPENDER: usize = 64;
const BLOCK_BYTES: usize = 4 << 10;
/// Simulated per-store service time — the disk/daemon latency a real
/// storage server charges, which the write window exists to overlap.
const STORE_DELAY: Duration = Duration::from_micros(400);
const SVC: ServiceId = ServiceId::new(9);

/// Decorates `MemTransport` so every pipelined store completes on its own
/// thread after `STORE_DELAY`, like a response arriving on a mux socket.
struct DelayTransport {
    inner: Arc<MemTransport>,
}

struct DelayConn {
    inner: Box<dyn Connection>,
    mem: Arc<MemTransport>,
    client: ClientId,
}

impl Connection for DelayConn {
    // Plain calls (mount, reads, retries) pass straight through: the
    // simulated latency models store *service* time, charged only on the
    // pipelined path the window manages.
    fn call(&mut self, request: &Request) -> Result<swarm_net::Response> {
        self.inner.call(request)
    }

    fn start_prepared(&mut self, prepared: &PreparedRequest) -> PendingCall {
        let server = self.inner.server();
        let mem = self.mem.clone();
        let client = self.client;
        let request = prepared.request().clone();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            std::thread::sleep(STORE_DELAY);
            let result = mem
                .connect(server, client)
                .and_then(|mut c| c.call(&request));
            let _ = tx.send(result);
        });
        PendingCall::deferred(move || {
            rx.recv()
                .unwrap_or(Err(swarm_types::SwarmError::ServerUnavailable(server)))
        })
    }

    fn pipeline_width(&self) -> usize {
        64
    }

    fn server(&self) -> ServerId {
        self.inner.server()
    }
}

impl Transport for DelayTransport {
    fn connect(&self, server: ServerId, client: ClientId) -> Result<Box<dyn Connection>> {
        Ok(Box::new(DelayConn {
            inner: self.inner.connect(server, client)?,
            mem: self.inner.clone(),
            client,
        }))
    }

    fn servers(&self) -> Vec<ServerId> {
        self.inner.servers()
    }
}

fn cluster() -> Arc<DelayTransport> {
    let mem = Arc::new(MemTransport::new());
    for i in 0..SERVERS {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        mem.register(ServerId::new(i), srv);
    }
    Arc::new(DelayTransport { inner: mem })
}

fn config(client: u32, window: usize) -> LogConfig {
    LogConfig::new(
        ClientId::new(client),
        (0..SERVERS).map(ServerId::new).collect(),
    )
    .expect("valid group")
    // One block per fragment: every append is a store, so the store
    // channel is the measured bottleneck (matches the YCSB shape).
    .fragment_size(8 * 1024)
    .write_window(window)
    .queue_depth(window.max(2) * 2)
}

/// `appenders` threads each stream `BLOCKS_PER_APPENDER` blocks through
/// their own log and flush, all on the shared delayed transport.
fn drive(transport: &Arc<DelayTransport>, appenders: usize, window: usize) {
    std::thread::scope(|s| {
        for a in 0..appenders {
            let transport = transport.clone();
            s.spawn(move || {
                let log =
                    Log::create(transport, config(100 + a as u32, window)).expect("create log");
                let payload = vec![a as u8; BLOCK_BYTES];
                for _ in 0..BLOCKS_PER_APPENDER {
                    log.append_block(SVC, b"", &payload).expect("append");
                }
                log.flush().expect("flush");
            });
        }
    });
}

fn bench_write_pipeline(c: &mut Criterion) {
    let transport = cluster();
    for window in [1usize, 8] {
        let mut group = c.benchmark_group(format!("write_pipeline/window{window}"));
        for appenders in [1usize, 8] {
            group.throughput(Throughput::Elements(
                (appenders * BLOCKS_PER_APPENDER) as u64,
            ));
            group.sample_size(10);
            group.bench_function(format!("{appenders}_appenders"), |b| {
                b.iter(|| drive(&transport, appenders, window));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_write_pipeline);
criterion_main!(benches);
