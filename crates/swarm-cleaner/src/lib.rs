//! The Swarm log cleaner (§2.1.4).
//!
//! "Swarm reclaims this free space using a cleaner process that
//! periodically traverses the log and moves live data out of stripes by
//! appending them to the log, so that the space occupied by the stripe can
//! be used to store a new stripe."
//!
//! The cleaner is a *service* layered on the log, not part of it: it reads
//! fragments through the ordinary read path, re-appends live blocks
//! through the ordinary append path (under the owning service's id, with
//! the original creation record), notifies the owning service of each move
//! ([`swarm_services::Service::block_moved`]), and finally deletes the
//! reclaimed stripe's fragments from the storage servers.
//!
//! Cleaning is gated on checkpoints: a stripe may only be cleaned when
//! every record in it is obsolete — older than its service's newest
//! checkpoint — because newer records would be needed by crash replay.
//! When nothing is cleanable, the cleaner applies the paper's remedy and
//! *demands* checkpoints from all services.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cleaner;
pub mod policy;
pub mod usage;

pub use cleaner::{CleanStats, Cleaner, CleanerConfig, CleanerHandle};
pub use policy::CleanPolicy;
pub use usage::{LiveBlock, StripeUsage, UsageTable};
