//! The stripe utilization table: what the cleaner knows about each stripe.
//!
//! Built by scanning the log (the cleaner "periodically traverses the
//! log"): every block creation, deletion record, service record, and
//! checkpoint is folded into per-stripe accounting, from which the cleaner
//! chooses victims.

use std::collections::{BTreeMap, HashMap, HashSet};

use swarm_log::{Entry, Log, LogPosition};
use swarm_types::{BlockAddr, Result, ServiceId};

/// A live block that would need to move if its stripe were cleaned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveBlock {
    /// Where the block currently lives.
    pub addr: BlockAddr,
    /// The owning service.
    pub service: ServiceId,
    /// The block's creation record (handed back to the service on move).
    pub create: Vec<u8>,
}

/// Per-stripe accounting.
#[derive(Debug, Clone, Default)]
pub struct StripeUsage {
    /// Sequence number of the stripe's first fragment.
    pub first_seq: u64,
    /// Members actually found (data + parity).
    pub fragments_found: u32,
    /// Total bytes stored for this stripe (all members).
    pub stored_bytes: u64,
    /// Payload bytes of blocks that are still live.
    pub live_bytes: u64,
    /// The live blocks themselves.
    pub live_blocks: Vec<LiveBlock>,
    /// Services with *records* (incl. deletes) in this stripe and the
    /// position of their newest such record.
    pub record_services: HashMap<ServiceId, LogPosition>,
    /// Positions of checkpoint entries in this stripe, per service.
    pub checkpoints: HashMap<ServiceId, LogPosition>,
}

impl StripeUsage {
    /// Fraction of stored bytes that are live (0.0 = fully dead).
    pub fn utilization(&self) -> f64 {
        if self.stored_bytes == 0 {
            0.0
        } else {
            self.live_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// The utilization table for one client's log.
#[derive(Debug, Default)]
pub struct UsageTable {
    /// Stripes keyed by first fragment sequence number.
    pub stripes: BTreeMap<u64, StripeUsage>,
    /// Stripe width used for the scan.
    pub width: u8,
    /// One past the newest scanned fragment sequence.
    pub end_seq: u64,
}

impl UsageTable {
    /// Builds the table by scanning the log from sequence `floor` to the
    /// log's current head, skipping already-reclaimed stripes.
    ///
    /// # Errors
    ///
    /// Propagates read failures (a fragment that is neither present nor
    /// reconstructible mid-scan is an error — the cleaner must not treat
    /// data loss as free space).
    pub fn scan(log: &Log, floor: u64) -> Result<UsageTable> {
        let width = log.group().width();
        let end_seq = log.next_seq();
        let mut table = UsageTable {
            stripes: BTreeMap::new(),
            width,
            end_seq,
        };
        // Block creations seen, keyed by address; deletions anywhere in
        // the log kill them.
        let mut created: BTreeMap<BlockAddr, (ServiceId, Vec<u8>)> = BTreeMap::new();
        let mut deleted: HashSet<BlockAddr> = HashSet::new();

        let mut seq = floor;
        while seq < end_seq {
            let stripe_first = (seq / width as u64) * width as u64;
            let Some(view) =
                log.fetch_fragment_view(swarm_types::FragmentId::new(log.client(), seq))?
            else {
                seq += 1;
                continue; // reclaimed (or padding of a torn tail)
            };
            let usage = table
                .stripes
                .entry(stripe_first)
                .or_insert_with(|| StripeUsage {
                    first_seq: stripe_first,
                    ..StripeUsage::default()
                });
            usage.fragments_found += 1;
            usage.stored_bytes += view.header.encoded_len() as u64 + view.header.body_len as u64;
            for le in &view.entries {
                let pos = LogPosition {
                    seq,
                    offset: le.entry_offset,
                };
                match &le.entry {
                    Entry::Block {
                        service, create, ..
                    } => {
                        let addr = le.block_addr.expect("block entries carry addresses");
                        created.insert(addr, (*service, create.clone()));
                    }
                    Entry::Delete { addr, service } => {
                        deleted.insert(*addr);
                        usage
                            .record_services
                            .entry(*service)
                            .and_modify(|p| *p = (*p).max(pos))
                            .or_insert(pos);
                    }
                    Entry::Record { service, .. } => {
                        usage
                            .record_services
                            .entry(*service)
                            .and_modify(|p| *p = (*p).max(pos))
                            .or_insert(pos);
                    }
                    Entry::Checkpoint { service, .. } => {
                        usage
                            .checkpoints
                            .entry(*service)
                            .and_modify(|p| *p = (*p).max(pos))
                            .or_insert(pos);
                    }
                }
            }
            seq += 1;
        }

        // Second pass: attribute live blocks to their stripes.
        for (addr, (service, create)) in created {
            if deleted.contains(&addr) {
                continue;
            }
            let stripe_first = (addr.fid.seq() / width as u64) * width as u64;
            if let Some(usage) = table.stripes.get_mut(&stripe_first) {
                usage.live_bytes += addr.len as u64;
                usage.live_blocks.push(LiveBlock {
                    addr,
                    service,
                    create,
                });
            }
        }
        Ok(table)
    }

    /// Total bytes stored across scanned stripes.
    pub fn stored_bytes(&self) -> u64 {
        self.stripes.values().map(|s| s.stored_bytes).sum()
    }

    /// Total live payload bytes.
    pub fn live_bytes(&self) -> u64 {
        self.stripes.values().map(|s| s.live_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use swarm_log::LogConfig;
    use swarm_net::MemTransport;
    use swarm_server::{MemStore, StorageServer};
    use swarm_types::{ClientId, ServerId};

    const SVC: ServiceId = ServiceId::new(1);

    fn make_log() -> Log {
        let transport = Arc::new(MemTransport::new());
        for i in 0..3 {
            let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            transport.register(ServerId::new(i), srv);
        }
        let config = LogConfig::new(ClientId::new(1), (0..3).map(ServerId::new).collect())
            .unwrap()
            .fragment_size(2048);
        Log::create(transport, config).unwrap()
    }

    #[test]
    fn empty_log_scans_empty() {
        let log = make_log();
        let table = UsageTable::scan(&log, 0).unwrap();
        assert!(table.stripes.is_empty());
        assert_eq!(table.end_seq, 0);
    }

    #[test]
    fn live_and_dead_blocks_accounted() {
        let log = make_log();
        let a = log.append_block(SVC, b"a", &[1u8; 400]).unwrap();
        let b = log.append_block(SVC, b"b", &[2u8; 400]).unwrap();
        log.delete_block(SVC, a).unwrap();
        log.flush().unwrap();
        let table = UsageTable::scan(&log, 0).unwrap();
        assert_eq!(table.live_bytes(), 400, "only b is live");
        let live: Vec<&LiveBlock> = table
            .stripes
            .values()
            .flat_map(|s| s.live_blocks.iter())
            .collect();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].addr, b);
        assert_eq!(live[0].create, b"b");
    }

    #[test]
    fn deletes_in_later_stripes_kill_earlier_blocks() {
        let log = make_log();
        let a = log.append_block(SVC, b"a", &[1u8; 1500]).unwrap();
        // Push several stripes of data so the delete lands much later.
        for _ in 0..10 {
            log.append_block(SVC, b"", &[0u8; 1500]).unwrap();
        }
        log.delete_block(SVC, a).unwrap();
        log.flush().unwrap();
        let table = UsageTable::scan(&log, 0).unwrap();
        let first_stripe = table.stripes.values().next().unwrap();
        assert!(
            !first_stripe.live_blocks.iter().any(|lb| lb.addr == a),
            "a was deleted later in the log"
        );
    }

    #[test]
    fn records_and_checkpoints_tracked_per_stripe() {
        let log = make_log();
        log.append_record(SVC, 7, b"record").unwrap();
        log.checkpoint(SVC, b"ckpt").unwrap();
        let table = UsageTable::scan(&log, 0).unwrap();
        let with_records: Vec<&StripeUsage> = table
            .stripes
            .values()
            .filter(|s| !s.record_services.is_empty())
            .collect();
        assert_eq!(with_records.len(), 1);
        assert!(with_records[0].record_services.contains_key(&SVC));
        let with_ckpt: Vec<&StripeUsage> = table
            .stripes
            .values()
            .filter(|s| s.checkpoints.contains_key(&SVC))
            .collect();
        assert_eq!(with_ckpt.len(), 1);
    }

    #[test]
    fn utilization_is_live_over_stored() {
        let mut usage = StripeUsage {
            stored_bytes: 1000,
            live_bytes: 250,
            ..StripeUsage::default()
        };
        assert!((usage.utilization() - 0.25).abs() < 1e-9);
        usage.stored_bytes = 0;
        assert_eq!(usage.utilization(), 0.0);
    }
}
