//! Victim-selection policies.
//!
//! The paper cites Blackwell et al.'s heuristic cleaning work \[3\]; we
//! implement the two classic policies from the LFS literature so the
//! ablation benchmark can compare them: **greedy** (lowest utilization
//! first) and **cost–benefit** (Sprite LFS's `(1-u)·age / (1+u)`), which
//! prefers old, moderately-empty stripes over young ones that may still
//! be self-cleaning.

use crate::usage::StripeUsage;

/// How the cleaner picks victim stripes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CleanPolicy {
    /// Clean the emptiest stripes first.
    Greedy,
    /// Sprite LFS cost–benefit: maximize `(1-u)·age / (1+u)`.
    #[default]
    CostBenefit,
}

impl CleanPolicy {
    /// Score a stripe; higher scores are cleaned first.
    ///
    /// `newest_first_seq` is the first sequence of the newest stripe in
    /// the table (proxy for "now" when computing age).
    pub fn score(&self, usage: &StripeUsage, newest_first_seq: u64) -> f64 {
        let u = usage.utilization();
        match self {
            CleanPolicy::Greedy => 1.0 - u,
            CleanPolicy::CostBenefit => {
                let age = (newest_first_seq.saturating_sub(usage.first_seq)) as f64 + 1.0;
                (1.0 - u) * age / (1.0 + u)
            }
        }
    }

    /// Orders stripe references best-victim-first.
    pub fn rank<'a>(
        &self,
        stripes: impl IntoIterator<Item = &'a StripeUsage>,
        newest_first_seq: u64,
    ) -> Vec<&'a StripeUsage> {
        let mut v: Vec<&StripeUsage> = stripes.into_iter().collect();
        v.sort_by(|a, b| {
            self.score(b, newest_first_seq)
                .partial_cmp(&self.score(a, newest_first_seq))
                .expect("scores are finite")
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripe(first_seq: u64, stored: u64, live: u64) -> StripeUsage {
        StripeUsage {
            first_seq,
            stored_bytes: stored,
            live_bytes: live,
            ..StripeUsage::default()
        }
    }

    #[test]
    fn greedy_prefers_empty_stripes() {
        let a = stripe(0, 1000, 900); // 90% full
        let b = stripe(3, 1000, 100); // 10% full
        let ranked = CleanPolicy::Greedy.rank([&a, &b], 3);
        assert_eq!(ranked[0].first_seq, 3);
    }

    #[test]
    fn cost_benefit_prefers_old_over_young_at_equal_utilization() {
        let old = stripe(0, 1000, 500);
        let young = stripe(300, 1000, 500);
        let ranked = CleanPolicy::CostBenefit.rank([&young, &old], 300);
        assert_eq!(ranked[0].first_seq, 0, "older stripe wins at equal u");
    }

    #[test]
    fn cost_benefit_can_prefer_old_fuller_stripe_over_young_emptier() {
        // The hallmark of cost-benefit vs greedy (Rosenblum's example):
        // a very old stripe at 75% beats a brand-new one at 50%.
        let old_full = stripe(0, 1000, 750);
        let young_empty = stripe(297, 1000, 500);
        let cb = CleanPolicy::CostBenefit.rank([&old_full, &young_empty], 300);
        assert_eq!(cb[0].first_seq, 0);
        let greedy = CleanPolicy::Greedy.rank([&old_full, &young_empty], 300);
        assert_eq!(greedy[0].first_seq, 297);
    }

    #[test]
    fn fully_dead_stripe_always_ranks_first_under_greedy() {
        let dead = stripe(6, 1000, 0);
        let others = [stripe(0, 1000, 10), stripe(3, 1000, 1)];
        let ranked = CleanPolicy::Greedy.rank([&others[0], &dead, &others[1]], 6);
        assert_eq!(ranked[0].first_seq, 6);
    }
}
