//! The cleaner proper: victim selection, block relocation, stripe
//! reclamation (§2.1.4).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use swarm_log::{Log, LogPosition};
use swarm_services::ServiceStack;
use swarm_types::{FragmentId, Result, ServiceId};

use crate::policy::CleanPolicy;
use crate::usage::{StripeUsage, UsageTable};

struct CleanerMetrics {
    passes: swarm_metrics::Counter,
    stripes_cleaned: swarm_metrics::Counter,
    blocks_moved: swarm_metrics::Counter,
    bytes_reclaimed: swarm_metrics::Counter,
    forced_checkpoints: swarm_metrics::Counter,
    pass_us: swarm_metrics::Histogram,
    select_us: swarm_metrics::Histogram,
    budget_bytes: swarm_metrics::Counter,
    budget_waits: swarm_metrics::Counter,
    budget_wait_us: swarm_metrics::Histogram,
}

fn metrics() -> &'static CleanerMetrics {
    static M: std::sync::OnceLock<CleanerMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| CleanerMetrics {
        passes: swarm_metrics::counter("cleaner.passes"),
        stripes_cleaned: swarm_metrics::counter("cleaner.stripes_cleaned"),
        blocks_moved: swarm_metrics::counter("cleaner.blocks_moved"),
        bytes_reclaimed: swarm_metrics::counter("cleaner.bytes_reclaimed"),
        forced_checkpoints: swarm_metrics::counter("cleaner.forced_checkpoints"),
        pass_us: swarm_metrics::histogram("cleaner.pass_us"),
        select_us: swarm_metrics::histogram("cleaner.select_us"),
        budget_bytes: swarm_metrics::counter("cleaner.budget_bytes"),
        budget_waits: swarm_metrics::counter("cleaner.budget_waits"),
        budget_wait_us: swarm_metrics::histogram("cleaner.budget_wait_us"),
    })
}

/// Tuning for a [`Cleaner`].
#[derive(Debug, Clone)]
pub struct CleanerConfig {
    /// Victim-selection policy.
    pub policy: CleanPolicy,
    /// Cap on the cleaner's I/O rate — bytes read plus bytes re-appended
    /// while relocating live blocks — token-bucket paced. Reclamation
    /// shares servers (and the client's connection pool) with foreground
    /// writes; unpaced, a big clean pass can monopolize both. `None`
    /// leaves the cleaner unpaced.
    pub budget_bytes_per_sec: Option<u64>,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        CleanerConfig {
            policy: CleanPolicy::CostBenefit,
            budget_bytes_per_sec: None,
        }
    }
}

/// Debt-model token bucket: `consume` waits until the balance is
/// non-negative, then takes the whole charge at once (going negative).
/// A single block larger than one second of budget therefore never
/// deadlocks — it just puts the bucket in debt that later charges pay
/// down — and the long-run rate converges on `rate` bytes/sec.
struct TokenBucket {
    rate: u64,
    state: Mutex<BucketState>,
}

struct BucketState {
    /// Byte balance; negative = debt from a prior oversized charge.
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: u64) -> TokenBucket {
        TokenBucket {
            rate: rate.max(1),
            state: Mutex::new(BucketState {
                tokens: 0.0,
                last: Instant::now(),
            }),
        }
    }

    /// Blocks until the budget allows `bytes` more of cleaner I/O.
    fn consume(&self, bytes: u64) {
        let m = metrics();
        m.budget_bytes.add(bytes);
        let mut waited: Option<Instant> = None;
        loop {
            let wait = {
                let mut st = self.state.lock();
                let now = Instant::now();
                let refill = now.duration_since(st.last).as_secs_f64() * self.rate as f64;
                // Credit never accumulates past one second of budget: an
                // idle cleaner must not bank a burst.
                st.tokens = (st.tokens + refill).min(self.rate as f64);
                st.last = now;
                if st.tokens >= 0.0 {
                    st.tokens -= bytes as f64;
                    break;
                }
                Duration::from_secs_f64(-st.tokens / self.rate as f64)
            };
            if waited.is_none() {
                m.budget_waits.inc();
                waited = Some(Instant::now());
            }
            // Sleep in bounded steps so a large debt stays interruptible
            // by the clock (oversleep would under-run the budget, not
            // break it).
            std::thread::sleep(wait.min(Duration::from_millis(100)));
        }
        if let Some(started) = waited {
            m.budget_wait_us.record(started.elapsed());
        }
    }
}

/// What one cleaning pass accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanStats {
    /// Stripes reclaimed.
    pub stripes_cleaned: u64,
    /// Live blocks re-appended.
    pub blocks_moved: u64,
    /// Payload bytes re-appended.
    pub bytes_moved: u64,
    /// Fragment bytes deleted from servers.
    pub bytes_reclaimed: u64,
    /// Demand checkpoints issued because nothing was cleanable.
    pub forced_checkpoints: u64,
}

/// The log cleaner service.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use swarm_cleaner::{CleanPolicy, Cleaner};
///
/// # fn parts() -> (Arc<swarm_log::Log>, Arc<swarm_services::ServiceStack>) { unimplemented!() }
/// let (log, stack) = parts();
/// let cleaner = Cleaner::new(log, stack, CleanPolicy::CostBenefit);
/// let stats = cleaner.clean_pass(4)?;
/// println!("reclaimed {} stripes", stats.stripes_cleaned);
/// # Ok::<(), swarm_types::SwarmError>(())
/// ```
pub struct Cleaner {
    log: Arc<Log>,
    stack: Arc<ServiceStack>,
    policy: CleanPolicy,
    budget: Option<TokenBucket>,
    /// Stripes already reclaimed (first sequence numbers), so rescans can
    /// skip them cheaply.
    cleaned: Mutex<HashSet<u64>>,
}

impl std::fmt::Debug for Cleaner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cleaner")
            .field("policy", &self.policy)
            .field("cleaned_stripes", &self.cleaned.lock().len())
            .finish()
    }
}

impl Cleaner {
    /// Creates a cleaner over `log`, notifying services in `stack`.
    pub fn new(log: Arc<Log>, stack: Arc<ServiceStack>, policy: CleanPolicy) -> Cleaner {
        Cleaner::with_config(
            log,
            stack,
            CleanerConfig {
                policy,
                ..CleanerConfig::default()
            },
        )
    }

    /// Creates a cleaner with full tuning, including the optional
    /// throughput budget.
    pub fn with_config(log: Arc<Log>, stack: Arc<ServiceStack>, config: CleanerConfig) -> Cleaner {
        Cleaner {
            log,
            stack,
            policy: config.policy,
            budget: config.budget_bytes_per_sec.map(TokenBucket::new),
            cleaned: Mutex::new(HashSet::new()),
        }
    }

    /// Is `stripe` allowed to be cleaned right now?
    ///
    /// §2.1.4: "the cleaner therefore only cleans stripes whose records
    /// have been implicitly deleted by a more recent checkpoint". A stripe
    /// is blocked if any service has a record in it newer than that
    /// service's latest checkpoint, or if it contains any service's
    /// *latest* checkpoint (replay anchors there).
    fn blocked_by_records(&self, usage: &StripeUsage) -> bool {
        usage
            .record_services
            .iter()
            .any(|(service, newest_record)| {
                // The log layer's own records (checkpoint directories) never
                // gate cleaning: the newest one lives in the anchor fragment,
                // which `is_anchor` already protects; older ones are obsolete.
                if *service == ServiceId::LOG_LAYER {
                    return false;
                }
                match self.log.last_checkpoint(*service) {
                    None => true, // service never checkpointed
                    Some(ckpt) => ckpt <= *newest_record,
                }
            })
    }

    fn is_anchor(&self, usage: &StripeUsage) -> bool {
        usage
            .checkpoints
            .iter()
            .any(|(service, pos)| self.log.last_checkpoint(*service) == Some(*pos))
    }

    /// Is `stripe` entirely below the recovery anchor (the newest marked
    /// fragment)?
    ///
    /// Recovery's rollforward scan skips missing stripes *below* the
    /// anchor but treats a missing stripe at or beyond it as the end of
    /// the log. Reclaiming above the anchor would therefore truncate the
    /// next recovery at the freed stripe, silently dropping every
    /// acknowledged write beyond it. Stripes up there stay untouchable
    /// until a checkpoint advances the anchor past them.
    fn below_anchor(&self, usage: &StripeUsage, width: u8) -> bool {
        self.log
            .anchor_seq()
            .is_some_and(|a| usage.first_seq + width as u64 <= a)
    }

    /// Are the owning services of every live block in `stripe` running?
    /// Live blocks can only move if their owner is registered to receive
    /// the move notification (§2.1.4).
    fn owners_present(&self, usage: &StripeUsage) -> bool {
        usage
            .live_blocks
            .iter()
            .all(|lb| self.stack.contains(lb.service))
    }

    fn cleanable(&self, usage: &StripeUsage, width: u8) -> bool {
        self.owners_present(usage)
            && self.below_anchor(usage, width)
            && !self.blocked_by_records(usage)
            && !self.is_anchor(usage)
    }

    /// Runs one cleaning pass, reclaiming at most `max_stripes` stripes.
    ///
    /// If nothing is cleanable because services are sitting on stale
    /// checkpoints, demands checkpoints from every service and tries once
    /// more (the paper's countermeasure against services that starve the
    /// cleaner).
    ///
    /// # Errors
    ///
    /// Propagates log read/append/flush failures. On error the pass stops;
    /// already-moved blocks remain valid (moves are idempotent from the
    /// services' perspective).
    pub fn clean_pass(&self, max_stripes: usize) -> Result<CleanStats> {
        let m = metrics();
        m.passes.inc();
        let _pass_span = m.pass_us.span("cleaner.pass");
        let mut stats = CleanStats::default();
        let mut attempt = 0;
        loop {
            let select_span = m.select_us.span("cleaner.select");
            let table = UsageTable::scan(&self.log, 0)?;
            let newest = table.stripes.keys().next_back().copied().unwrap_or(0);
            let cleaned_set: HashSet<u64> = self.cleaned.lock().clone();
            let candidates: Vec<&StripeUsage> = table
                .stripes
                .values()
                .filter(|s| !cleaned_set.contains(&s.first_seq))
                // Never clean the stripe currently being appended to.
                .filter(|s| s.first_seq + table.width as u64 <= self.log.next_seq())
                .filter(|s| self.cleanable(s, table.width))
                .collect();
            drop(select_span);
            if candidates.is_empty() {
                // Force checkpoints when a stripe is held hostage by
                // stale records (the paper's starvation countermeasure)
                // or is only waiting for the anchor to advance past it —
                // but not when the only blocked stripe is the live
                // checkpoint anchor (forcing there would churn a fresh
                // anchor stripe every pass).
                let starved = table
                    .stripes
                    .values()
                    .filter(|s| !cleaned_set.contains(&s.first_seq))
                    .any(|s| {
                        if self.blocked_by_records(s) {
                            return true;
                        }
                        let complete = s.first_seq + table.width as u64 <= self.log.next_seq();
                        complete
                            && self.owners_present(s)
                            && !self.is_anchor(s)
                            && !self.below_anchor(s, table.width)
                    });
                if attempt == 0 && starved {
                    swarm_metrics::trace!("cleaner", "no cleanable stripes; forcing checkpoints");
                    self.stack.checkpoint_all(&self.log)?;
                    stats.forced_checkpoints += 1;
                    m.forced_checkpoints.inc();
                    attempt += 1;
                    continue;
                }
                return Ok(stats);
            }
            let victims = self.policy.rank(candidates, newest);
            for victim in victims.into_iter().take(max_stripes) {
                self.clean_stripe(victim, table.width, &mut stats)?;
            }
            return Ok(stats);
        }
    }

    fn clean_stripe(&self, usage: &StripeUsage, width: u8, stats: &mut CleanStats) -> Result<()> {
        // 1. Move live blocks: read old copy, append under the owning
        //    service with the original creation record, notify the
        //    service (old addr, new addr, creation record — §2.1.4).
        for lb in &usage.live_blocks {
            // Each relocation reads the block once and writes it once;
            // charge both against the budget *before* issuing the I/O so
            // foreground traffic sees the pause, not the burst.
            if let Some(bucket) = &self.budget {
                bucket.consume(2 * u64::from(lb.addr.len));
            }
            let data = self.log.read(lb.addr)?;
            let new_addr = self.log.append_block(lb.service, &lb.create, &data)?;
            stats.blocks_moved += 1;
            stats.bytes_moved += data.len() as u64;
            metrics().blocks_moved.inc();
            self.stack
                .notify_block_moved(lb.service, lb.addr, new_addr, &lb.create)?;
        }
        // 2. Make the moved copies durable before destroying the originals.
        self.log.flush()?;
        // 3. Delete every member fragment of the stripe.
        for i in 0..width {
            let fid = FragmentId::new(self.log.client(), usage.first_seq + i as u64);
            match self.log.delete_fragment(fid) {
                Ok(()) => {}
                // Already gone (e.g. torn-tail padding): fine.
                Err(swarm_types::SwarmError::FragmentNotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        stats.stripes_cleaned += 1;
        stats.bytes_reclaimed += usage.stored_bytes;
        let m = metrics();
        m.stripes_cleaned.inc();
        m.bytes_reclaimed.add(usage.stored_bytes);
        swarm_metrics::trace!(
            "cleaner",
            "reclaimed stripe at seq {} ({} bytes)",
            usage.first_seq,
            usage.stored_bytes
        );
        self.cleaned.lock().insert(usage.first_seq);
        Ok(())
    }

    /// Lowest first-sequence the cleaner has reclaimed (diagnostics).
    pub fn cleaned_stripes(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.cleaned.lock().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// The cleaner's gating view for one service (diagnostics/tests).
    pub fn checkpoint_of(&self, service: ServiceId) -> Option<LogPosition> {
        self.log.last_checkpoint(service)
    }

    /// Spawns a background thread running [`Cleaner::clean_pass`] every
    /// `interval` ("a cleaner process that periodically traverses the
    /// log", §2.1.4). Returns a handle that stops the thread when
    /// dropped or when [`CleanerHandle::stop`] is called.
    pub fn spawn_periodic(
        self: Arc<Self>,
        interval: std::time::Duration,
        max_stripes_per_pass: usize,
    ) -> CleanerHandle {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let stats = Arc::new(Mutex::new(CleanStats::default()));
        let stats2 = stats.clone();
        let thread = std::thread::Builder::new()
            .name("swarm-cleaner".into())
            .spawn(move || {
                while !stop2.load(std::sync::atomic::Ordering::SeqCst) {
                    // Transient failures (a server rebooting) must not
                    // kill the cleaner; the next pass retries.
                    if let Ok(s) = self.clean_pass(max_stripes_per_pass) {
                        let mut total = stats2.lock();
                        total.stripes_cleaned += s.stripes_cleaned;
                        total.blocks_moved += s.blocks_moved;
                        total.bytes_moved += s.bytes_moved;
                        total.bytes_reclaimed += s.bytes_reclaimed;
                        total.forced_checkpoints += s.forced_checkpoints;
                    }
                    // Sleep in small steps so stop() is responsive.
                    let mut slept = std::time::Duration::ZERO;
                    while slept < interval && !stop2.load(std::sync::atomic::Ordering::SeqCst) {
                        let step = std::time::Duration::from_millis(10).min(interval - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                }
            })
            .expect("spawn cleaner thread");
        CleanerHandle {
            stop,
            stats,
            thread: Some(thread),
        }
    }
}

/// Handle to a background cleaner; stops it on drop.
pub struct CleanerHandle {
    stop: Arc<std::sync::atomic::AtomicBool>,
    stats: Arc<Mutex<CleanStats>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for CleanerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleanerHandle")
            .field("totals", &*self.stats.lock())
            .finish()
    }
}

impl CleanerHandle {
    /// Cumulative statistics across all passes so far.
    pub fn totals(&self) -> CleanStats {
        *self.stats.lock()
    }

    /// Stops the background thread and waits for it to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CleanerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use parking_lot::Mutex as PMutex;
    use swarm_log::{Log, LogConfig, ReplayEntry};
    use swarm_net::MemTransport;
    use swarm_server::{FragmentStore, MemStore, StorageServer};
    use swarm_services::Service;
    use swarm_types::{BlockAddr, ClientId, ServerId, SwarmError};

    pub const SVC: ServiceId = ServiceId::new(1);

    /// A minimal block-owning service: tracks its blocks by creation tag.
    #[derive(Default)]
    pub struct BlockOwner {
        pub blocks: std::collections::HashMap<Vec<u8>, BlockAddr>,
        pub moves: u64,
    }

    impl Service for BlockOwner {
        fn id(&self) -> ServiceId {
            SVC
        }
        fn name(&self) -> &str {
            "block-owner"
        }
        fn restore_checkpoint(&mut self, _data: &[u8]) -> Result<()> {
            Ok(())
        }
        fn replay(&mut self, _entry: &ReplayEntry) -> Result<()> {
            Ok(())
        }
        fn block_moved(&mut self, old: BlockAddr, new: BlockAddr, create: &[u8]) -> Result<()> {
            match self.blocks.get_mut(create) {
                Some(addr) if *addr == old => {
                    *addr = new;
                    self.moves += 1;
                    Ok(())
                }
                _ => Err(SwarmError::invalid("unknown block moved")),
            }
        }
        fn write_checkpoint(&mut self, log: &Log) -> Result<()> {
            log.checkpoint(SVC, b"owner-ckpt")?;
            Ok(())
        }
    }

    pub struct Fixture {
        pub log: Arc<Log>,
        pub stack: Arc<ServiceStack>,
        pub owner: Arc<PMutex<BlockOwner>>,
        pub servers: Vec<Arc<StorageServer<MemStore>>>,
    }

    pub fn fixture(n_servers: u32) -> Fixture {
        let transport = Arc::new(MemTransport::new());
        let mut servers = Vec::new();
        for i in 0..n_servers {
            let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            transport.register(ServerId::new(i), srv.clone());
            servers.push(srv);
        }
        let config = LogConfig::new(
            ClientId::new(1),
            (0..n_servers).map(ServerId::new).collect(),
        )
        .unwrap()
        .fragment_size(2048)
        .cache_fragments(0); // cleaner tests want real reads, no stale cache
        let log = Arc::new(Log::create(transport, config).unwrap());
        let owner: Arc<PMutex<BlockOwner>> = Arc::new(PMutex::new(BlockOwner::default()));
        let mut stack = ServiceStack::new();
        let owner_dyn: Arc<PMutex<dyn Service>> = owner.clone();
        stack.register(owner_dyn).unwrap();
        Fixture {
            log,
            stack: Arc::new(stack),
            owner,
            servers,
        }
    }

    pub fn write_block(f: &Fixture, tag: &[u8], len: usize) -> BlockAddr {
        let addr = f.log.append_block(SVC, tag, &vec![tag[0]; len]).unwrap();
        f.owner.lock().blocks.insert(tag.to_vec(), addr);
        addr
    }

    pub fn total_fragments(f: &Fixture) -> u64 {
        f.servers.iter().map(|s| s.store().fragment_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::*;
    use super::*;

    #[test]
    fn fully_dead_stripes_are_reclaimed_without_moves() {
        let f = fixture(3);
        let a = write_block(&f, b"a", 1500);
        let b = write_block(&f, b"b", 1500);
        f.log.flush().unwrap(); // stripe 0 holds only the two blocks
        f.log.delete_block(SVC, a).unwrap();
        f.log.delete_block(SVC, b).unwrap();
        f.log.checkpoint(SVC, b"ckpt").unwrap(); // stripe 1: deletes + anchor
        let before = total_fragments(&f);
        let cleaner = Cleaner::new(f.log.clone(), f.stack.clone(), CleanPolicy::Greedy);
        let stats = cleaner.clean_pass(16).unwrap();
        assert!(stats.stripes_cleaned >= 1, "{stats:?}");
        assert_eq!(stats.forced_checkpoints, 0, "{stats:?}");
        assert_eq!(f.owner.lock().moves, 0, "dead blocks are not moved");
        assert!(total_fragments(&f) < before);
    }

    #[test]
    fn live_blocks_are_moved_and_stay_readable() {
        let f = fixture(3);
        let tags: Vec<Vec<u8>> = (b'a'..=b'f').map(|c| vec![c]).collect();
        for t in &tags {
            write_block(&f, t, 1200);
        }
        f.log.checkpoint(SVC, b"ckpt").unwrap();
        let cleaner = Cleaner::new(f.log.clone(), f.stack.clone(), CleanPolicy::Greedy);
        let stats = cleaner.clean_pass(16).unwrap();
        assert!(stats.blocks_moved > 0, "{stats:?}");
        // Every block readable at its (possibly moved) address with the
        // right contents.
        for t in &tags {
            let addr = *f.owner.lock().blocks.get(t).unwrap();
            let data = f.log.read(addr).unwrap();
            assert_eq!(data, vec![t[0]; 1200], "tag {t:?}");
        }
    }

    #[test]
    fn token_bucket_first_charge_is_free_then_debt_paces_the_next() {
        let bucket = TokenBucket::new(100_000);
        let start = Instant::now();
        bucket.consume(30_000);
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "first charge should ride the debt model, not wait: {:?}",
            start.elapsed()
        );
        // 30 000 bytes of debt at 100 000 B/s ≈ 300 ms before the next
        // charge may proceed.
        let start = Instant::now();
        bucket.consume(1);
        assert!(
            start.elapsed() >= Duration::from_millis(250),
            "debt from the first charge must pace the second: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn default_config_is_unpaced() {
        assert!(CleanerConfig::default().budget_bytes_per_sec.is_none());
    }

    #[test]
    fn budgeted_pass_paces_live_block_moves() {
        let f = fixture(3);
        for c in b'a'..=b'f' {
            write_block(&f, &[c], 1200);
        }
        f.log.checkpoint(SVC, b"ckpt").unwrap();
        // Each relocation charges 2 × 1200 bytes; at 48 000 B/s that is
        // ~50 ms of budget per moved block after the first.
        let cleaner = Cleaner::with_config(
            f.log.clone(),
            f.stack.clone(),
            CleanerConfig {
                policy: CleanPolicy::Greedy,
                budget_bytes_per_sec: Some(48_000),
            },
        );
        let waits_before = swarm_metrics::snapshot().counter("cleaner.budget_waits");
        let bytes_before = swarm_metrics::snapshot().counter("cleaner.budget_bytes");
        let start = Instant::now();
        let stats = cleaner.clean_pass(16).unwrap();
        let elapsed = start.elapsed();
        assert!(stats.blocks_moved >= 2, "{stats:?}");
        let floor = Duration::from_millis(40 * (stats.blocks_moved - 1));
        assert!(
            elapsed >= floor,
            "budget not enforced: {} moves took only {elapsed:?}",
            stats.blocks_moved
        );
        let snap = swarm_metrics::snapshot();
        assert!(
            snap.counter("cleaner.budget_waits") > waits_before,
            "cleaner.budget_waits never moved"
        );
        assert!(
            snap.counter("cleaner.budget_bytes") - bytes_before >= 2 * stats.bytes_moved,
            "cleaner.budget_bytes under-counted"
        );
    }

    #[test]
    fn cleaning_is_blocked_until_checkpoint_then_forced() {
        let f = fixture(3);
        let a = write_block(&f, b"a", 1500);
        f.log.delete_block(SVC, a).unwrap();
        f.log.flush().unwrap();
        // No checkpoint yet: pass must force one (via the stack), then
        // clean.
        let cleaner = Cleaner::new(f.log.clone(), f.stack.clone(), CleanPolicy::Greedy);
        let stats = cleaner.clean_pass(16).unwrap();
        assert_eq!(stats.forced_checkpoints, 1, "{stats:?}");
        assert!(stats.stripes_cleaned >= 1, "{stats:?}");
        assert!(f.log.last_checkpoint(SVC).is_some());
    }

    #[test]
    fn latest_checkpoint_stripe_is_never_cleaned() {
        let f = fixture(3);
        write_block(&f, b"a", 100);
        f.log.checkpoint(SVC, b"ckpt").unwrap();
        let ckpt_pos = f.log.last_checkpoint(SVC).unwrap();
        let cleaner = Cleaner::new(f.log.clone(), f.stack.clone(), CleanPolicy::CostBenefit);
        cleaner.clean_pass(16).unwrap();
        // The stripe containing the checkpoint must still exist.
        let width = f.log.group().width() as u64;
        let stripe_first = (ckpt_pos.seq / width) * width;
        assert!(
            !cleaner.cleaned_stripes().contains(&stripe_first),
            "checkpoint stripe {stripe_first} was cleaned"
        );
    }

    #[test]
    fn cleaned_space_is_reusable_for_new_stripes() {
        let f = fixture(3);
        // Fill, delete everything, checkpoint, clean.
        let mut addrs = Vec::new();
        for i in 0..20u8 {
            addrs.push(write_block(&f, &[i], 1200));
        }
        for (i, addr) in addrs.iter().enumerate() {
            f.log.delete_block(SVC, *addr).unwrap();
            f.owner.lock().blocks.remove(&vec![i as u8]);
        }
        f.log.checkpoint(SVC, b"ckpt").unwrap();
        let cleaner = Cleaner::new(f.log.clone(), f.stack.clone(), CleanPolicy::Greedy);
        let stats = cleaner.clean_pass(64).unwrap();
        assert!(stats.stripes_cleaned >= 5, "{stats:?}");
        assert!(stats.bytes_reclaimed > 20_000, "{stats:?}");
        // The log keeps working after cleaning.
        let addr = write_block(&f, b"z", 500);
        f.log.flush().unwrap();
        assert_eq!(f.log.read(addr).unwrap(), vec![b'z'; 500]);
    }

    #[test]
    fn stripes_with_orphaned_live_blocks_are_left_alone() {
        // A live block whose owning service is not registered cannot be
        // notified of a move — the cleaner must skip its stripe, not
        // abort the pass.
        let f = fixture(3);
        let orphan_svc = ServiceId::new(42);
        f.log
            .append_block(orphan_svc, b"tag", &[9u8; 1500])
            .unwrap();
        f.log.flush().unwrap(); // stripe 0: orphan's live block
        let a = write_block(&f, b"a", 1500);
        f.log.flush().unwrap(); // stripe 1: owned, soon dead
        f.log.delete_block(SVC, a).unwrap();
        f.log.checkpoint(SVC, b"ckpt").unwrap();

        let cleaner = Cleaner::new(f.log.clone(), f.stack.clone(), CleanPolicy::Greedy);
        let stats = cleaner.clean_pass(16).unwrap();
        assert!(stats.stripes_cleaned >= 1, "{stats:?}");
        assert!(
            !cleaner.cleaned_stripes().contains(&0),
            "orphan stripe must survive: {:?}",
            cleaner.cleaned_stripes()
        );
        // The orphan's data is still there.
        let table = UsageTable::scan(&f.log, 0).unwrap();
        assert!(table.stripes.get(&0).is_some_and(|s| s.live_bytes == 1500));
    }

    #[test]
    fn stripes_above_the_anchor_need_a_forced_checkpoint_first() {
        let f = fixture(3);
        // Anchor early: the checkpoint lands in stripe 0, so everything
        // written afterwards sits *above* the recovery anchor.
        f.log.checkpoint(SVC, b"early").unwrap();
        let anchor_before = f.log.anchor_seq().unwrap();
        // A stripe of pure blocks (no records), fully dead once both are
        // deleted. Without the anchor gate the cleaner would reclaim it
        // immediately — and the next recovery's rollforward scan would
        // stop at the hole, dropping everything past it.
        let a = write_block(&f, b"a", 1500);
        let b = write_block(&f, b"b", 1500);
        f.log.flush().unwrap();
        f.log.delete_block(SVC, a).unwrap();
        f.log.delete_block(SVC, b).unwrap();
        f.log.flush().unwrap();

        let cleaner = Cleaner::new(f.log.clone(), f.stack.clone(), CleanPolicy::Greedy);
        let stats = cleaner.clean_pass(16).unwrap();
        // The dead stripe was held up only by the anchor: the pass must
        // advance the anchor (forced checkpoint) before reclaiming, and
        // must never reclaim a stripe at or above it.
        assert_eq!(stats.forced_checkpoints, 1, "{stats:?}");
        assert!(stats.stripes_cleaned >= 1, "{stats:?}");
        let anchor_after = f.log.anchor_seq().unwrap();
        assert!(anchor_after > anchor_before);
        let width = f.log.group().width() as u64;
        for s in cleaner.cleaned_stripes() {
            assert!(
                s + width <= anchor_after,
                "stripe {s} reclaimed at/above anchor {anchor_after}"
            );
        }
    }

    #[test]
    fn second_pass_skips_already_cleaned_stripes() {
        let f = fixture(3);
        let a = write_block(&f, b"a", 1500);
        f.log.flush().unwrap(); // stripe 0: just the block
        f.log.delete_block(SVC, a).unwrap();
        f.log.checkpoint(SVC, b"ckpt").unwrap(); // stripe 1: delete + anchor
        let cleaner = Cleaner::new(f.log.clone(), f.stack.clone(), CleanPolicy::Greedy);
        let s1 = cleaner.clean_pass(16).unwrap();
        let s2 = cleaner.clean_pass(16).unwrap();
        assert!(s1.stripes_cleaned >= 1);
        assert_eq!(
            s2.stripes_cleaned,
            0,
            "nothing new to clean: {s2:?} (cleaned: {:?})",
            cleaner.cleaned_stripes()
        );
    }
}

#[cfg(test)]
mod periodic_tests {
    use super::tests_support::*;
    use super::*;
    use swarm_types::ServiceId;

    const SVC: ServiceId = ServiceId::new(1);

    #[test]
    fn periodic_cleaner_reclaims_in_the_background() {
        let f = fixture(3);
        // Dead data + checkpoint, in separate stripes.
        let a = write_block(&f, b"a", 1500);
        f.log.flush().unwrap();
        f.log.delete_block(SVC, a).unwrap();
        f.log.checkpoint(SVC, b"ckpt").unwrap();

        let cleaner = Arc::new(Cleaner::new(
            f.log.clone(),
            f.stack.clone(),
            CleanPolicy::Greedy,
        ));
        let mut handle = cleaner.spawn_periodic(std::time::Duration::from_millis(5), 8);
        // Wait for the background thread to get there.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while handle.totals().stripes_cleaned == 0 {
            assert!(std::time::Instant::now() < deadline, "cleaner never ran");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        handle.stop();
        assert!(handle.totals().stripes_cleaned >= 1);
        // Log still usable while/after background cleaning.
        let addr = write_block(&f, b"z", 400);
        f.log.flush().unwrap();
        assert_eq!(f.log.read(addr).unwrap(), vec![b'z'; 400]);
    }

    #[test]
    fn handle_stop_is_idempotent_and_drop_safe() {
        let f = fixture(3);
        let cleaner = Arc::new(Cleaner::new(
            f.log.clone(),
            f.stack.clone(),
            CleanPolicy::Greedy,
        ));
        let mut handle = cleaner.spawn_periodic(std::time::Duration::from_millis(50), 4);
        handle.stop();
        handle.stop();
        drop(handle);
    }
}
