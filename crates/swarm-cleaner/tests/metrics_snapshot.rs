//! Metric-name snapshot coverage for the contention layer (ISSUE 10):
//! the cooperative cache's `coop.*` accounting and the cleaner budget's
//! `cleaner.budget_*` accounting must appear in the process-wide
//! `swarm_metrics::snapshot()` under exactly these names — dashboards
//! and the `Metrics` RPC key on them, so a silent rename is a break.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use swarm_cleaner::{CleanPolicy, Cleaner, CleanerConfig};
use swarm_log::{Log, LogConfig, ReplayEntry};
use swarm_net::MemTransport;
use swarm_server::{MemStore, StorageServer};
use swarm_services::{CoopCache, CoopCacheGroup, Service, ServiceStack};
use swarm_types::{BlockAddr, ClientId, Result, ServerId, ServiceId, SwarmError};

const SVC: ServiceId = ServiceId::new(1);
const SERVERS: u32 = 3;

fn cluster() -> Arc<MemTransport> {
    let transport = Arc::new(MemTransport::new());
    for i in 0..SERVERS {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    transport
}

fn log_for(transport: &Arc<MemTransport>, client: u32) -> Arc<Log> {
    let cfg = LogConfig::new(
        ClientId::new(client),
        (0..SERVERS).map(ServerId::new).collect(),
    )
    .unwrap()
    .fragment_size(4096)
    .cache_fragments(0);
    Arc::new(Log::create(transport.clone(), cfg).unwrap())
}

/// Minimal block owner so the cleaner can relocate live blocks.
#[derive(Default)]
struct Owner {
    blocks: HashMap<Vec<u8>, BlockAddr>,
}

impl Service for Owner {
    fn id(&self) -> ServiceId {
        SVC
    }
    fn name(&self) -> &str {
        "owner"
    }
    fn restore_checkpoint(&mut self, _data: &[u8]) -> Result<()> {
        Ok(())
    }
    fn replay(&mut self, _entry: &ReplayEntry) -> Result<()> {
        Ok(())
    }
    fn block_moved(&mut self, old: BlockAddr, new: BlockAddr, create: &[u8]) -> Result<()> {
        match self.blocks.get_mut(create) {
            Some(addr) if *addr == old => {
                *addr = new;
                Ok(())
            }
            _ => Err(SwarmError::invalid("unknown block moved")),
        }
    }
    fn write_checkpoint(&mut self, log: &Log) -> Result<()> {
        log.checkpoint(SVC, b"ckpt")?;
        Ok(())
    }
}

#[test]
fn coop_and_cleaner_budget_metric_names_appear_in_the_snapshot() {
    let transport = cluster();

    // --- Cooperative cache traffic: server fetch, local hit, and (after
    // gossip) peer-served reads, all on the global coop.* counters.
    let group = CoopCacheGroup::new();
    let writer = log_for(&transport, 1);
    let blocks: Vec<(BlockAddr, Vec<u8>)> = (0..8u8)
        .map(|i| {
            let data = vec![i ^ 0xa5; 256 + i as usize * 7];
            (writer.append_block(SVC, b"", &data).unwrap(), data)
        })
        .collect();
    writer.flush().unwrap();
    let caches: Vec<Arc<CoopCache>> = (1..=4u32)
        .map(|c| {
            let log = if c == 1 {
                writer.clone()
            } else {
                log_for(&transport, c)
            };
            CoopCache::join(group.clone(), ClientId::new(c), log, 16, transport.clone()).unwrap()
        })
        .collect();
    for _round in 0..3 {
        for cache in &caches {
            for (addr, expect) in &blocks {
                assert_eq!(&cache.read(*addr).unwrap()[..], &expect[..]);
            }
        }
    }

    // --- A budgeted clean pass: the budget is small enough that the
    // relocation charges outrun one second of tokens, so the cleaner
    // demonstrably waited on the bucket at least once.
    let churn_log = log_for(&transport, 9);
    let owner: Arc<Mutex<Owner>> = Arc::new(Mutex::new(Owner::default()));
    let mut stack = ServiceStack::new();
    stack
        .register(owner.clone() as Arc<Mutex<dyn Service>>)
        .unwrap();
    let mut addrs = Vec::new();
    for i in 0..12u64 {
        let tag = i.to_be_bytes();
        let addr = churn_log
            .append_block(SVC, &tag, &vec![i as u8; 1500])
            .unwrap();
        owner.lock().blocks.insert(tag.to_vec(), addr);
        addrs.push((i, addr));
    }
    churn_log.flush().unwrap();
    for (i, addr) in addrs {
        if i % 2 == 0 {
            churn_log.delete_block(SVC, addr).unwrap();
            owner.lock().blocks.remove(&i.to_be_bytes()[..]);
        }
    }
    churn_log.checkpoint(SVC, b"ckpt").unwrap();
    let cleaner = Cleaner::with_config(
        churn_log,
        Arc::new(stack),
        CleanerConfig {
            policy: CleanPolicy::Greedy,
            // Six live 1500 B blocks charge 18 KB of relocation I/O;
            // at 8 KB/s the bucket goes into debt on the first charge.
            budget_bytes_per_sec: Some(8 * 1024),
        },
    );
    let stats = cleaner.clean_pass(16).unwrap();
    assert!(stats.blocks_moved > 0, "{stats:?}");

    // --- The names, exactly as dashboards consume them.
    let snap = swarm_metrics::snapshot();
    for name in [
        "coop.local_hits",
        "coop.peer_hits",
        "coop.stale_hints",
        "coop.server_fetches",
        "coop.served_to_peers",
        "coop.peer_errors",
        "coop.gossip_sent",
        "coop.gossip_received",
        "cleaner.budget_bytes",
        "cleaner.budget_waits",
    ] {
        assert!(
            snap.counters.contains_key(name),
            "counter {name} missing from snapshot; got {:?}",
            snap.counters.keys().collect::<Vec<_>>()
        );
    }
    assert!(
        snap.histograms.contains_key("cleaner.budget_wait_us"),
        "histogram cleaner.budget_wait_us missing from snapshot"
    );

    // Value-level sanity on the accounting that must have fired here:
    // every first read came from a server, repeat rounds hit caches, and
    // the budgeted pass charged the bucket and waited on it.
    assert!(snap.counter("coop.server_fetches") > 0);
    assert!(snap.counter("coop.local_hits") > 0);
    assert!(snap.counter("cleaner.budget_bytes") >= 2 * 1500);
    assert!(snap.counter("cleaner.budget_waits") >= 1);
    assert!(snap.counter("coop.gossip_sent") > 0);
}
