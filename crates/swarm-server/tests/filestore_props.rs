//! Property tests for the durable store: after any sequence of
//! store/delete/preallocate operations and a reopen (clean or after a
//! simulated torn journal), the store matches a reference model.

use proptest::prelude::*;
use swarm_server::{FileStore, FragmentStore};
use swarm_types::{ClientId, FragmentId};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new() -> Self {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path = std::env::temp_dir().join(format!("swarm-fsprop-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[derive(Debug, Clone)]
enum StoreOp {
    Store { seq: u8, marked: bool, len: u16 },
    Delete { seq: u8 },
    Preallocate { seq: u8 },
}

fn op_strategy() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        4 => (0u8..20, any::<bool>(), 1u16..2000)
            .prop_map(|(seq, marked, len)| StoreOp::Store { seq, marked, len }),
        2 => (0u8..20).prop_map(|seq| StoreOp::Delete { seq }),
        1 => (0u8..20).prop_map(|seq| StoreOp::Preallocate { seq }),
    ]
}

fn fid(seq: u8) -> FragmentId {
    FragmentId::new(ClientId::new(1), seq as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_reopen_matches_model(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        truncate_tail in 0usize..8,
    ) {
        let dir = TempDir::new();
        // Model: seq → (contents, marked)
        let mut model: std::collections::BTreeMap<u8, (Vec<u8>, bool)> = Default::default();
        {
            let store = FileStore::open_with(&dir.0, 0, false).unwrap();
            for op in &ops {
                match op {
                    StoreOp::Store { seq, marked, len } => {
                        let data = vec![*seq; *len as usize];
                        match store.store(fid(*seq), data.clone().into(), *marked) {
                            Ok(()) => {
                                model.insert(*seq, (data, *marked));
                            }
                            Err(_) => {
                                // Duplicate store: model unchanged.
                                prop_assert!(model.contains_key(seq));
                            }
                        }
                    }
                    StoreOp::Delete { seq } => {
                        let deleted = store.delete(fid(*seq)).is_ok();
                        prop_assert_eq!(deleted, model.remove(seq).is_some());
                    }
                    StoreOp::Preallocate { seq } => {
                        store.preallocate(fid(*seq), 100).unwrap();
                    }
                }
            }
        }
        // Simulated crash damage: chop a few bytes off the journal tail
        // (a torn final record at worst — never data loss beyond it,
        // because this store was opened non-durable and fully closed, the
        // journal is complete; tearing it can only lose *suffix* entries).
        if truncate_tail > 0 {
            let journal = dir.0.join("journal");
            let len = std::fs::metadata(&journal).unwrap().len();
            let keep = len.saturating_sub(truncate_tail as u64);
            // Replay the same ops against a fresh model, stopping where
            // the journal would stop — hard to predict exactly, so for the
            // torn case we only verify invariants, not exact equality.
            let f = std::fs::OpenOptions::new().write(true).open(&journal).unwrap();
            f.set_len(keep).unwrap();
            drop(f);
            // NOTE: artificial truncation can produce states a real crash
            // cannot (a delete's unlink persisted but its journal entry
            // "lost" — the store journals deletes *before* unlinking, so
            // in reality the entry always survives the file). The store
            // rightly reports Corrupt for such impossible states; accept
            // that outcome, verify invariants otherwise.
            let store = match FileStore::open_with(&dir.0, 0, false) {
                Ok(s) => s,
                Err(swarm_types::SwarmError::Corrupt(_)) => return Ok(()),
                Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
            };
            // Invariants: every listed fragment reads back fully and
            // matches its stored length; no panic, no corruption error.
            for fid in store.list() {
                let meta = store.meta(fid).unwrap();
                let data = store.read(fid, 0, meta.len).unwrap();
                prop_assert_eq!(data.len() as u32, meta.len);
                // Contents are the constant byte pattern we wrote.
                let seq = fid.seq() as u8;
                prop_assert!(data.iter().all(|&b| b == seq));
            }
            return Ok(());
        }
        // Clean reopen: exact model equality.
        let store = FileStore::open_with(&dir.0, 0, false).unwrap();
        let listed: Vec<u8> = store.list().iter().map(|f| f.seq() as u8).collect();
        let expect: Vec<u8> = model.keys().copied().collect();
        prop_assert_eq!(listed, expect);
        for (seq, (data, marked)) in &model {
            let meta = store.meta(fid(*seq)).unwrap();
            prop_assert_eq!(meta.len as usize, data.len());
            prop_assert_eq!(meta.marked, *marked);
            prop_assert_eq!(&store.read(fid(*seq), 0, meta.len).unwrap(), data);
        }
        // Marked index agrees with the model.
        let newest_marked = model
            .iter()
            .filter(|(_, (_, m))| *m)
            .map(|(s, _)| *s)
            .max();
        prop_assert_eq!(
            store.last_marked(ClientId::new(1)).map(|f| f.seq() as u8),
            newest_marked
        );
    }
}
