//! Concurrency stress: 8 threads × 100 mixed store/read/delete operations
//! against one `FileStore` with group commit enabled. Readers must never
//! observe a torn fragment — every read is byte-exact for its FID or a
//! clean `FragmentNotFound`. Runs under the nightly TSan sweep as well.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use swarm_server::{Durability, FileStore, FragmentStore};
use swarm_types::{ClientId, FragmentId, SwarmError};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new() -> Self {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path = std::env::temp_dir().join(format!("swarm-stress-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const THREADS: u64 = 8;
const OPS_PER_THREAD: u64 = 100;
const FRAG_LEN: u32 = 512;

/// Fragment content is a pure function of the FID, so any torn or
/// cross-wired read is detectable from the bytes alone.
fn content(fid: FragmentId) -> Vec<u8> {
    let raw = fid.raw();
    (0..FRAG_LEN as u64)
        .map(|j| (raw.wrapping_mul(0x9e37_79b9).wrapping_add(j * 131)) as u8)
        .collect()
}

fn fid(owner: u64, seq: u64) -> FragmentId {
    FragmentId::new(ClientId::new(owner as u32), seq)
}

#[test]
fn eight_threads_mixed_ops_no_torn_reads() {
    let dir = TempDir::new();
    let store =
        FileStore::open_with_durability(&dir.0, 0, Durability::Group(Duration::from_millis(1)))
            .unwrap();
    let acked = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let store = &store;
            let acked = &acked;
            s.spawn(move || {
                // Each thread owns FIDs under its own ClientId and also
                // reads other threads' namespaces to catch cross-talk.
                for i in 0..OPS_PER_THREAD {
                    let mine = fid(t + 1, i);
                    match i % 5 {
                        // Mostly stores...
                        0..=2 => {
                            store
                                .store(mine, content(mine).into(), i % 2 == 0)
                                .unwrap_or_else(|e| panic!("thread {t} op {i}: store: {e}"));
                            acked.fetch_add(1, Ordering::Relaxed);
                        }
                        // ...a delete of an earlier own fragment...
                        3 => {
                            let target = fid(t + 1, i.saturating_sub(3));
                            match store.delete(target) {
                                Ok(()) => {
                                    acked.fetch_sub(1, Ordering::Relaxed);
                                }
                                Err(SwarmError::FragmentNotFound(_)) => {}
                                Err(e) => panic!("thread {t} op {i}: delete: {e}"),
                            }
                        }
                        // ...and a racing read of a neighbour's fragment.
                        _ => {
                            let theirs = fid((t + 1) % THREADS + 1, i);
                            match store.read(theirs, 0, FRAG_LEN) {
                                Ok(data) => assert_eq!(
                                    data.as_ref(),
                                    content(theirs),
                                    "thread {t} op {i}: torn read of {theirs:?}"
                                ),
                                Err(SwarmError::FragmentNotFound(_)) => {}
                                Err(e) => panic!("thread {t} op {i}: read: {e}"),
                            }
                        }
                    }
                }
            });
        }
    });

    // Every fragment the threads left behind is byte-exact.
    let live = store.list();
    assert_eq!(live.len() as u64, acked.load(Ordering::Relaxed));
    for f in &live {
        assert_eq!(
            store.read(*f, 0, FRAG_LEN).unwrap().as_ref(),
            content(*f),
            "fragment {f:?} corrupt after stress"
        );
    }

    // And the whole history replays: a reopen sees the identical set.
    drop(store);
    let reopened = FileStore::open_with(&dir.0, 0, true).unwrap();
    let mut before: Vec<u64> = live.iter().map(|f| f.raw()).collect();
    let mut after: Vec<u64> = reopened.list().iter().map(|f| f.raw()).collect();
    before.sort_unstable();
    after.sort_unstable();
    assert_eq!(before, after, "reopen lost or resurrected fragments");
    for f in reopened.list() {
        assert_eq!(reopened.read(f, 0, FRAG_LEN).unwrap().as_ref(), content(f));
    }
}
