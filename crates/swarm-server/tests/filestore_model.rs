//! Model-based property test: random interleavings of store / delete /
//! restart against a `HashMap` reference model, in both `strict` and
//! `group` durability. Every acked operation must be reflected exactly
//! after every reopen — group commit may batch the journal writes, but it
//! must never change what an `Ok` return means.

use std::collections::HashMap;
use std::time::Duration;

use proptest::prelude::*;
use swarm_server::{Durability, FileStore, FragmentStore};
use swarm_types::{ClientId, FragmentId};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new() -> Self {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path = std::env::temp_dir().join(format!("swarm-fsmodel-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[derive(Debug, Clone)]
enum Op {
    Store {
        seq: u8,
        marked: bool,
        len: u16,
    },
    Delete {
        seq: u8,
    },
    /// Drop the store cleanly and reopen the directory — every acked
    /// operation before the restart must be visible after it.
    Restart,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u8..16, any::<bool>(), 1u16..1500)
            .prop_map(|(seq, marked, len)| Op::Store { seq, marked, len }),
        3 => (0u8..16).prop_map(|seq| Op::Delete { seq }),
        1 => Just(Op::Restart),
    ]
}

fn fid(seq: u8) -> FragmentId {
    FragmentId::new(ClientId::new(1), seq as u64)
}

/// The store must agree with the model on every observable: fragment
/// set, lengths, contents, marked flags, byte accounting, marked index.
fn assert_matches_model(
    store: &FileStore,
    model: &HashMap<u8, (Vec<u8>, bool)>,
    context: &str,
) -> Result<(), TestCaseError> {
    let mut listed: Vec<u8> = store.list().iter().map(|f| f.seq() as u8).collect();
    listed.sort_unstable();
    let mut expect: Vec<u8> = model.keys().copied().collect();
    expect.sort_unstable();
    prop_assert_eq!(listed, expect, "fragment set diverged {}", context);
    prop_assert_eq!(
        store.byte_count(),
        model.values().map(|(d, _)| d.len() as u64).sum::<u64>(),
        "byte accounting diverged {}",
        context
    );
    for (seq, (data, marked)) in model {
        let meta = store.meta(fid(*seq)).unwrap();
        prop_assert_eq!(meta.len as usize, data.len(), "len of {} {}", seq, context);
        prop_assert_eq!(meta.marked, *marked, "marked of {} {}", seq, context);
        prop_assert_eq!(
            &store.read(fid(*seq), 0, meta.len).unwrap(),
            data,
            "contents of {} {}",
            seq,
            context
        );
    }
    let newest_marked = model.iter().filter(|(_, (_, m))| *m).map(|(s, _)| *s).max();
    prop_assert_eq!(
        store.last_marked(ClientId::new(1)).map(|f| f.seq() as u8),
        newest_marked,
        "marked index diverged {}",
        context
    );
    Ok(())
}

fn run_ops(ops: &[Op], durability: Durability) -> Result<(), TestCaseError> {
    let dir = TempDir::new();
    let mut model: HashMap<u8, (Vec<u8>, bool)> = HashMap::new();
    let mut store = FileStore::open_with_durability(&dir.0, 0, durability).unwrap();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Store { seq, marked, len } => {
                // Content is a function of (seq, generation) so stale data
                // from a delete+restore cycle cannot masquerade as fresh.
                let generation = i as u8;
                let data: Vec<u8> = (0..*len)
                    .map(|j| seq.wrapping_mul(31) ^ generation ^ (j as u8))
                    .collect();
                match store.store(fid(*seq), data.clone().into(), *marked) {
                    Ok(()) => {
                        prop_assert!(!model.contains_key(seq), "double-store acked at op {i}");
                        model.insert(*seq, (data, *marked));
                    }
                    Err(_) => prop_assert!(model.contains_key(seq), "spurious reject at op {i}"),
                }
            }
            Op::Delete { seq } => {
                let deleted = store.delete(fid(*seq)).is_ok();
                prop_assert_eq!(deleted, model.remove(seq).is_some(), "delete at op {}", i);
            }
            Op::Restart => {
                drop(store);
                store = FileStore::open_with_durability(&dir.0, 0, durability).unwrap();
                assert_matches_model(&store, &model, &format!("after restart at op {i}"))?;
            }
        }
    }
    // Final restart: the full history must be replayable.
    drop(store);
    let store = FileStore::open_with_durability(&dir.0, 0, durability).unwrap();
    assert_matches_model(&store, &model, "at end of run")?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_model_agreement_strict(ops in proptest::collection::vec(op_strategy(), 1..30)) {
        run_ops(&ops, Durability::Strict)?;
    }

    #[test]
    fn prop_model_agreement_group(ops in proptest::collection::vec(op_strategy(), 1..30)) {
        run_ops(&ops, Durability::Group(Duration::from_millis(1)))?;
    }
}
