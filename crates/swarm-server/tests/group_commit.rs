//! Group commit accounting: N concurrent stores must complete with fewer
//! journal fsyncs than stores (batching actually happened), and the
//! `server.journal_fsync` / `server.journal_batch` metrics must agree
//! with the store's own instance counters.
//!
//! Kept in its own integration binary so the global metrics registry is
//! not perturbed by unrelated tests running in the same process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use swarm_server::{Durability, FileStore, FragmentStore};
use swarm_types::{ClientId, FragmentId};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new() -> Self {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path = std::env::temp_dir().join(format!("swarm-gc-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn group_commit_issues_at_most_one_fsync_per_batch() {
    let threads: u64 = 16;
    let per: u64 = 4;
    let stores = threads * per;

    let dir = TempDir::new();
    let store =
        FileStore::open_with_durability(&dir.0, 0, Durability::Group(Duration::from_millis(5)))
            .unwrap();

    let before = swarm_metrics::snapshot();
    let fsyncs_before = before.counter("server.journal_fsync");
    let batches_before = before
        .histogram("server.journal_batch")
        .map(|h| (h.count, h.sum_us))
        .unwrap_or((0, 0));

    let barrier = Barrier::new(threads as usize);
    let next = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let store = &store;
            let barrier = &barrier;
            let next = &next;
            s.spawn(move || {
                barrier.wait();
                for _ in 0..per {
                    let seq = next.fetch_add(1, Ordering::Relaxed);
                    let fid = FragmentId::new(ClientId::new(9), seq);
                    store
                        .store(fid, vec![seq as u8; 256].into(), false)
                        .unwrap();
                }
            });
        }
    });

    // Batching happened: strictly fewer fsyncs than acked stores. The
    // barrier makes all 16 threads contend, so in practice the ratio is
    // far below 1; the assertion only pins the contract.
    let fsyncs = store.journal_fsyncs();
    let batches = store.journal_batches();
    assert!(
        fsyncs < stores,
        "no batching: {fsyncs} fsyncs for {stores} stores"
    );
    assert_eq!(
        fsyncs, batches,
        "every journal fsync must correspond to exactly one batch"
    );

    // The global metrics agree with the instance counters: one
    // `server.journal_fsync` tick and one `server.journal_batch` sample
    // per batch, and the batch sizes sum to the number of stores.
    let after = swarm_metrics::snapshot();
    assert_eq!(
        after.counter("server.journal_fsync") - fsyncs_before,
        fsyncs,
        "global fsync counter diverged from instance counter"
    );
    let hist = after
        .histogram("server.journal_batch")
        .expect("batch histogram must exist after stores");
    assert_eq!(
        hist.count - batches_before.0,
        batches,
        "batch histogram count diverged"
    );
    assert_eq!(
        hist.sum_us - batches_before.1,
        stores,
        "batch sizes must sum to the number of acked stores"
    );

    // Nothing was lost to batching: all fragments durable after reopen.
    drop(store);
    let reopened = FileStore::open_with(&dir.0, 0, true).unwrap();
    assert_eq!(reopened.fragment_count(), stores);
}
