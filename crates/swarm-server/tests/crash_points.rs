//! Crash-point matrix for the durable store (§2.3.1: "all storage server
//! operations are atomic").
//!
//! Every [`CrashPoint`] — tmp write, tmp fsync, rename, journal append,
//! journal fsync — gets the same treatment, in both `strict` and `group`
//! durability: commit a baseline fragment, arm the crash, attempt a second
//! store (which "crashes" mid-step, leaving the disk exactly as a power
//! cut would), then reopen the directory and assert the contract:
//!
//! * the crashed fragment is fully present or fully absent — never torn;
//! * the baseline fragment is untouched;
//! * no `tmp/` entry survives recovery;
//! * replay is idempotent — a second reopen reproduces the same state;
//! * an absent fragment's FID is immediately re-storable.

use std::path::PathBuf;
use std::time::Duration;

use swarm_server::{CrashPoint, Durability, FileStore, FragmentStore};
use swarm_types::{ClientId, FragmentId};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path =
            std::env::temp_dir().join(format!("swarm-crash-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn fid(seq: u64) -> FragmentId {
    FragmentId::new(ClientId::new(1), seq)
}

const BASELINE: &[u8] = b"committed before the crash";
const VICTIM: &[u8] = b"the fragment the crash interrupts";

fn tmp_entries(dir: &std::path::Path) -> Vec<String> {
    std::fs::read_dir(dir.join("tmp"))
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default()
}

/// Snapshot of externally observable store state, for the idempotent-
/// replay check: two reopens of the same directory must agree exactly.
fn snapshot(store: &FileStore) -> Vec<(u64, u32, Vec<u8>)> {
    store
        .list()
        .into_iter()
        .map(|f| {
            let meta = store.meta(f).unwrap();
            let data = store.read(f, 0, meta.len).unwrap();
            (f.raw(), meta.len, data.to_vec())
        })
        .collect()
}

fn run_crash_point(point: CrashPoint, durability: Durability) {
    let tag = format!("{point:?}-{durability}")
        .to_lowercase()
        .replace(':', "-");
    let dir = TempDir::new(&tag);

    // Baseline commit, then arm the crash and let a second store hit it.
    {
        let store = FileStore::open_with_durability(&dir.0, 0, durability).unwrap();
        store.store(fid(0), BASELINE.into(), false).unwrap();
        store.inject_crash(point);
        let err = store.store(fid(1), VICTIM.into(), true).unwrap_err();
        assert!(
            err.to_string().contains("injected crash"),
            "{point:?}/{durability}: wrong error: {err}"
        );
        // The crashed process does no cleanup: drop as-is.
    }

    // Power back on: recovery must restore the atomicity contract.
    let store = FileStore::open_with_durability(&dir.0, 0, durability).unwrap();
    assert_eq!(
        store.read(fid(0), 0, BASELINE.len() as u32).unwrap(),
        BASELINE,
        "{point:?}/{durability}: baseline fragment damaged"
    );
    assert!(
        tmp_entries(&dir.0).is_empty(),
        "{point:?}/{durability}: tmp/ entries survived recovery: {:?}",
        tmp_entries(&dir.0)
    );

    match store.meta(fid(1)) {
        // Fully present: only possible when the journal record was
        // completely written (the crash hit the fsync, not the append).
        Some(meta) => {
            assert_eq!(
                point,
                CrashPoint::JournalSync,
                "{point:?}/{durability}: fragment present after a pre-journal crash"
            );
            assert_eq!(meta.len as usize, VICTIM.len());
            assert!(meta.marked);
            assert_eq!(
                store.read(fid(1), 0, VICTIM.len() as u32).unwrap(),
                VICTIM,
                "{point:?}/{durability}: surviving fragment is torn"
            );
        }
        // Fully absent: the FID must be immediately re-storable.
        None => {
            assert!(store.read(fid(1), 0, 1).is_err());
            store.store(fid(1), VICTIM.into(), false).unwrap();
            assert_eq!(store.read(fid(1), 0, VICTIM.len() as u32).unwrap(), VICTIM);
            store.delete(fid(1)).unwrap();
        }
    }

    // Idempotent replay: reopening again reproduces the exact state.
    let first = snapshot(&store);
    drop(store);
    let store = FileStore::open_with_durability(&dir.0, 0, durability).unwrap();
    assert_eq!(
        snapshot(&store),
        first,
        "{point:?}/{durability}: second reopen diverged"
    );
}

#[test]
fn crash_matrix_strict() {
    for point in CrashPoint::ALL {
        run_crash_point(point, Durability::Strict);
    }
}

#[test]
fn crash_matrix_group_commit() {
    for point in CrashPoint::ALL {
        run_crash_point(point, Durability::Group(Duration::from_millis(1)));
    }
}

/// A crash mid-journal-append leaves a torn record at the tail; recovery
/// must both drop it *and* keep the journal appendable — fragments stored
/// after recovery survive further reopens.
#[test]
fn journal_append_crash_then_store_then_reopen() {
    let dir = TempDir::new("append-tail");
    {
        let store = FileStore::open_with(&dir.0, 0, true).unwrap();
        store.store(fid(0), BASELINE.into(), false).unwrap();
        store.inject_crash(CrashPoint::JournalAppend);
        store.store(fid(1), VICTIM.into(), false).unwrap_err();
    }
    {
        let store = FileStore::open_with(&dir.0, 0, true).unwrap();
        assert!(store.meta(fid(1)).is_none());
        store.store(fid(2), b"post-recovery".into(), false).unwrap();
    }
    let store = FileStore::open_with(&dir.0, 0, true).unwrap();
    assert_eq!(store.fragment_count(), 2);
    assert_eq!(store.read(fid(2), 0, 13).unwrap(), b"post-recovery");
}

/// A crash-and-recover cycle at every point in sequence, on one
/// directory: each recovery must preserve every fragment committed in
/// every earlier generation (damage must not accumulate across crashes).
#[test]
fn repeated_crashes_accumulate_no_damage() {
    let dir = TempDir::new("repeat");
    for (i, point) in CrashPoint::ALL.into_iter().enumerate() {
        let store = FileStore::open_with(&dir.0, 0, true).unwrap();
        // Everything committed by earlier generations survived.
        for j in 0..i as u64 {
            let want = format!("keep-{j}").into_bytes();
            assert_eq!(
                store.read(fid(100 + j), 0, want.len() as u32).unwrap(),
                want,
                "{point:?}: generation {j} lost after {i} crashes"
            );
        }
        store
            .store(
                fid(100 + i as u64),
                format!("keep-{i}").into_bytes().into(),
                false,
            )
            .unwrap();
        store.inject_crash(point);
        store
            .store(fid(200 + i as u64), VICTIM.into(), false)
            .unwrap_err();
        drop(store); // crash: no cleanup, straight to the next reopen
    }
    let store = FileStore::open_with(&dir.0, 0, true).unwrap();
    for i in 0..CrashPoint::ALL.len() as u64 {
        let want = format!("keep-{i}").into_bytes();
        assert_eq!(
            store.read(fid(100 + i), 0, want.len() as u32).unwrap(),
            want
        );
    }
    assert!(tmp_entries(&dir.0).is_empty());
}
