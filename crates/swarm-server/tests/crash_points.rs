//! Crash-point matrix for the durable store (§2.3.1: "all storage server
//! operations are atomic").
//!
//! Every [`CrashPoint`] — tmp write, tmp fsync, rename, journal append,
//! journal fsync — gets the same treatment, in both `strict` and `group`
//! durability: commit a baseline fragment, arm the crash, attempt a second
//! store (which "crashes" mid-step, leaving the disk exactly as a power
//! cut would), then reopen the directory and assert the contract:
//!
//! * the crashed fragment is fully present or fully absent — never torn;
//! * the baseline fragment is untouched;
//! * no `tmp/` entry survives recovery;
//! * replay is idempotent — a second reopen reproduces the same state;
//! * an absent fragment's FID is immediately re-storable.

use std::path::PathBuf;
use std::time::Duration;

use swarm_server::{CrashPoint, Durability, FileStore, FragmentStore};
use swarm_types::{ClientId, FragmentId};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path =
            std::env::temp_dir().join(format!("swarm-crash-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn fid(seq: u64) -> FragmentId {
    FragmentId::new(ClientId::new(1), seq)
}

const BASELINE: &[u8] = b"committed before the crash";
const VICTIM: &[u8] = b"the fragment the crash interrupts";

fn tmp_entries(dir: &std::path::Path) -> Vec<String> {
    std::fs::read_dir(dir.join("tmp"))
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default()
}

/// Snapshot of externally observable store state, for the idempotent-
/// replay check: two reopens of the same directory must agree exactly.
fn snapshot(store: &FileStore) -> Vec<(u64, u32, Vec<u8>)> {
    store
        .list()
        .into_iter()
        .map(|f| {
            let meta = store.meta(f).unwrap();
            let data = store.read(f, 0, meta.len).unwrap();
            (f.raw(), meta.len, data.to_vec())
        })
        .collect()
}

fn run_crash_point(point: CrashPoint, durability: Durability) {
    let tag = format!("{point:?}-{durability}")
        .to_lowercase()
        .replace(':', "-");
    let dir = TempDir::new(&tag);

    // Baseline commit, then arm the crash and let a second store hit it.
    {
        let store = FileStore::open_with_durability(&dir.0, 0, durability).unwrap();
        store.store(fid(0), BASELINE.into(), false).unwrap();
        store.inject_crash(point);
        let err = store.store(fid(1), VICTIM.into(), true).unwrap_err();
        assert!(
            err.to_string().contains("injected crash"),
            "{point:?}/{durability}: wrong error: {err}"
        );
        // The crashed process does no cleanup: drop as-is.
    }

    // Power back on: recovery must restore the atomicity contract.
    let store = FileStore::open_with_durability(&dir.0, 0, durability).unwrap();
    assert_eq!(
        store.read(fid(0), 0, BASELINE.len() as u32).unwrap(),
        BASELINE,
        "{point:?}/{durability}: baseline fragment damaged"
    );
    assert!(
        tmp_entries(&dir.0).is_empty(),
        "{point:?}/{durability}: tmp/ entries survived recovery: {:?}",
        tmp_entries(&dir.0)
    );

    match store.meta(fid(1)) {
        // Fully present: only possible when the journal record was
        // completely written (the crash hit the fsync, not the append).
        Some(meta) => {
            assert_eq!(
                point,
                CrashPoint::JournalSync,
                "{point:?}/{durability}: fragment present after a pre-journal crash"
            );
            assert_eq!(meta.len as usize, VICTIM.len());
            assert!(meta.marked);
            assert_eq!(
                store.read(fid(1), 0, VICTIM.len() as u32).unwrap(),
                VICTIM,
                "{point:?}/{durability}: surviving fragment is torn"
            );
        }
        // Fully absent: the FID must be immediately re-storable.
        None => {
            assert!(store.read(fid(1), 0, 1).is_err());
            store.store(fid(1), VICTIM.into(), false).unwrap();
            assert_eq!(store.read(fid(1), 0, VICTIM.len() as u32).unwrap(), VICTIM);
            store.delete(fid(1)).unwrap();
        }
    }

    // Idempotent replay: reopening again reproduces the exact state.
    let first = snapshot(&store);
    drop(store);
    let store = FileStore::open_with_durability(&dir.0, 0, durability).unwrap();
    assert_eq!(
        snapshot(&store),
        first,
        "{point:?}/{durability}: second reopen diverged"
    );
}

#[test]
fn crash_matrix_strict() {
    for point in CrashPoint::ALL {
        run_crash_point(point, Durability::Strict);
    }
}

#[test]
fn crash_matrix_group_commit() {
    for point in CrashPoint::ALL {
        run_crash_point(point, Durability::Group(Duration::from_millis(1)));
    }
}

/// A crash mid-journal-append leaves a torn record at the tail; recovery
/// must both drop it *and* keep the journal appendable — fragments stored
/// after recovery survive further reopens.
#[test]
fn journal_append_crash_then_store_then_reopen() {
    let dir = TempDir::new("append-tail");
    {
        let store = FileStore::open_with(&dir.0, 0, true).unwrap();
        store.store(fid(0), BASELINE.into(), false).unwrap();
        store.inject_crash(CrashPoint::JournalAppend);
        store.store(fid(1), VICTIM.into(), false).unwrap_err();
    }
    {
        let store = FileStore::open_with(&dir.0, 0, true).unwrap();
        assert!(store.meta(fid(1)).is_none());
        store.store(fid(2), b"post-recovery".into(), false).unwrap();
    }
    let store = FileStore::open_with(&dir.0, 0, true).unwrap();
    assert_eq!(store.fragment_count(), 2);
    assert_eq!(store.read(fid(2), 0, 13).unwrap(), b"post-recovery");
}

/// A crash-and-recover cycle at every point in sequence, on one
/// directory: each recovery must preserve every fragment committed in
/// every earlier generation (damage must not accumulate across crashes).
#[test]
fn repeated_crashes_accumulate_no_damage() {
    let dir = TempDir::new("repeat");
    for (i, point) in CrashPoint::ALL.into_iter().enumerate() {
        let store = FileStore::open_with(&dir.0, 0, true).unwrap();
        // Everything committed by earlier generations survived.
        for j in 0..i as u64 {
            let want = format!("keep-{j}").into_bytes();
            assert_eq!(
                store.read(fid(100 + j), 0, want.len() as u32).unwrap(),
                want,
                "{point:?}: generation {j} lost after {i} crashes"
            );
        }
        store
            .store(
                fid(100 + i as u64),
                format!("keep-{i}").into_bytes().into(),
                false,
            )
            .unwrap();
        store.inject_crash(point);
        store
            .store(fid(200 + i as u64), VICTIM.into(), false)
            .unwrap_err();
        drop(store); // crash: no cleanup, straight to the next reopen
    }
    let store = FileStore::open_with(&dir.0, 0, true).unwrap();
    for i in 0..CrashPoint::ALL.len() as u64 {
        let want = format!("keep-{i}").into_bytes();
        assert_eq!(
            store.read(fid(100 + i), 0, want.len() as u32).unwrap(),
            want
        );
    }
    assert!(tmp_entries(&dir.0).is_empty());
}

/// Decode-path contract over durable stores: a 4+2 striped log on six
/// FileStore-backed servers — one of which crashes mid-store and is
/// power-cycled — must serve every *acked* block byte-exact with any two
/// servers (the full parity budget `m`) held down simultaneously, not
/// just one.
#[test]
fn acked_reads_survive_m_servers_held_down_after_a_crash() {
    use std::sync::Arc;

    use swarm_log::{Log, LogConfig};
    use swarm_net::MemTransport;
    use swarm_server::StorageServer;
    use swarm_types::{Geometry, ServerId, ServiceId};

    const SVC: ServiceId = ServiceId::new(1);
    let geometry: Geometry = "4+2".parse().unwrap();
    let width = geometry.width() as u32;

    let dir = TempDir::new("rs-degraded");
    let transport = Arc::new(MemTransport::new());
    let mut nodes = Vec::new();
    for i in 0..width {
        let path = dir.0.join(format!("srv-{i}"));
        std::fs::create_dir_all(&path).unwrap();
        let store =
            FileStore::open_with_durability(&path, 0, Durability::Group(Duration::from_millis(1)))
                .unwrap();
        let srv = StorageServer::new(ServerId::new(i), store).into_shared();
        transport.register(ServerId::new(i), srv.clone());
        nodes.push(srv);
    }

    let config = LogConfig::new(ClientId::new(1), (0..width).map(ServerId::new).collect())
        .unwrap()
        .geometry(geometry)
        .unwrap()
        .fragment_size(4096)
        // Every verification read must hit the servers, not a cache.
        .cache_fragments(0);
    let log = Log::create(transport.clone(), config).unwrap();

    let body = |i: u64| -> Vec<u8> {
        let len = 200 + (i as usize * 131) % 1500;
        (0..len).map(|j| (i as u8) ^ (j as u8)).collect()
    };
    let mut acked = Vec::new();
    for i in 0..24u64 {
        let addr = log.append_block(SVC, &i.to_le_bytes(), &body(i)).unwrap();
        acked.push((i, addr));
    }
    log.flush().unwrap();

    // Crash server 2 mid-store (the rename step — tmp written, not yet
    // visible), attempt more writes, then power-cycle it: reopen the same
    // directory through recovery, exactly like the single-store matrix.
    let crashed = 2u32;
    nodes[crashed as usize]
        .store()
        .inject_crash(CrashPoint::Rename);
    let mut second = Vec::new();
    for i in 24..32u64 {
        match log.append_block(SVC, &i.to_le_bytes(), &body(i)) {
            Ok(addr) => second.push((i, addr)),
            Err(_) => break, // never acked; drop from expectations
        }
    }
    // A failed flush means the second batch was never acked.
    if log.flush().is_ok() {
        acked.extend(second);
    }
    transport.deregister(ServerId::new(crashed));
    drop(std::mem::replace(
        &mut nodes[crashed as usize],
        StorageServer::new(
            ServerId::new(crashed),
            FileStore::open_with_durability(
                dir.0.join(format!("srv-{crashed}")),
                0,
                Durability::Group(Duration::from_millis(1)),
            )
            .unwrap(),
        )
        .into_shared(),
    ));
    transport.register(ServerId::new(crashed), nodes[crashed as usize].clone());

    // Every pair of servers held down at once: reads must decode from the
    // surviving four members (any k of k+m suffice for MDS codes).
    for a in 0..width {
        for b in (a + 1)..width {
            transport.set_down(ServerId::new(a), true);
            transport.set_down(ServerId::new(b), true);
            for (i, addr) in &acked {
                let bytes = log.read(*addr).unwrap_or_else(|e| {
                    panic!("block {i} unreadable with servers {a},{b} down: {e}")
                });
                assert_eq!(
                    bytes.as_slice(),
                    body(*i).as_slice(),
                    "block {i} corrupt with servers {a},{b} down"
                );
            }
            transport.set_down(ServerId::new(a), false);
            transport.set_down(ServerId::new(b), false);
        }
    }
}
