//! The fragment persistence abstraction.
//!
//! §3.2: "The server divides its disk(s) into fragment-sized slots, one for
//! each fragment. A mapping from FID to slot is maintained in an on-disk
//! fragment map." [`FragmentStore`] captures exactly that contract; the
//! request-handling logic in [`crate::StorageServer`] is generic over it so
//! the same server runs on memory ([`crate::MemStore`]) or disk
//! ([`crate::FileStore`]).

use swarm_types::{Bytes, ClientId, FragmentId, Result};

/// Metadata the store keeps per fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentMeta {
    /// Stored length in bytes.
    pub len: u32,
    /// Whether the client stored this fragment *marked* (§2.3.1); marked
    /// fragments anchor checkpoint discovery after a client crash.
    pub marked: bool,
}

/// A slot-oriented repository of immutable fragments.
///
/// Invariants every implementation upholds:
///
/// 1. **Immutability** — a stored fragment's bytes never change; `store`
///    on an existing FID fails with `FragmentExists`.
/// 2. **Atomicity** — `store` either persists the whole fragment or
///    nothing, even across a crash (§2.3.1). `MemStore` gets this for
///    free; `FileStore` orders renames and journal appends to guarantee it.
/// 3. **Slot accounting** — when constructed with a capacity, a store never
///    holds more fragments (plus preallocated slots) than it has slots,
///    failing further stores with `OutOfSpace`.
pub trait FragmentStore: Send + Sync {
    /// Persists a fragment atomically.
    ///
    /// `data` is a shared buffer view: on the hot path it aliases the
    /// network frame the fragment arrived in, so in-memory stores can keep
    /// it without copying.
    ///
    /// # Errors
    ///
    /// * `FragmentExists` if `fid` is already stored.
    /// * `OutOfSpace` if every slot is full.
    /// * `Io` on disk failure.
    fn store(&self, fid: FragmentId, data: Bytes, marked: bool) -> Result<()>;

    /// Reads `len` bytes at `offset` from fragment `fid`.
    ///
    /// The returned [`Bytes`] may alias the stored fragment (in-memory
    /// stores return a zero-copy sub-view).
    ///
    /// # Errors
    ///
    /// * `FragmentNotFound` if `fid` is not stored.
    /// * `RangeOutOfBounds` if the range extends past the stored length.
    fn read(&self, fid: FragmentId, offset: u32, len: u32) -> Result<Bytes>;

    /// Deletes a fragment, freeing its slot. Idempotent-by-error: deleting
    /// a missing fragment returns `FragmentNotFound`.
    ///
    /// # Errors
    ///
    /// * `FragmentNotFound` if `fid` is not stored.
    /// * `Io` on disk failure.
    fn delete(&self, fid: FragmentId) -> Result<()>;

    /// Reserves a slot so a future `store(fid, ..)` cannot fail for lack of
    /// space. Reserving an already-stored or already-reserved FID is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// * `OutOfSpace` if every slot is full.
    fn preallocate(&self, fid: FragmentId, len: u32) -> Result<()>;

    /// Metadata for a stored fragment, or `None`.
    fn meta(&self, fid: FragmentId) -> Option<FragmentMeta>;

    /// Newest (highest-sequence) *marked* fragment stored by `client`.
    fn last_marked(&self, client: ClientId) -> Option<FragmentId>;

    /// All stored fragment ids, ascending.
    fn list(&self) -> Vec<FragmentId>;

    /// Number of fragments currently stored.
    fn fragment_count(&self) -> u64;

    /// Total bytes of fragment data currently stored.
    fn byte_count(&self) -> u64;

    /// Slot capacity (0 = unbounded).
    fn capacity(&self) -> u64;
}

impl FragmentStore for Box<dyn FragmentStore> {
    fn store(&self, fid: FragmentId, data: Bytes, marked: bool) -> Result<()> {
        (**self).store(fid, data, marked)
    }
    fn read(&self, fid: FragmentId, offset: u32, len: u32) -> Result<Bytes> {
        (**self).read(fid, offset, len)
    }
    fn delete(&self, fid: FragmentId) -> Result<()> {
        (**self).delete(fid)
    }
    fn preallocate(&self, fid: FragmentId, len: u32) -> Result<()> {
        (**self).preallocate(fid, len)
    }
    fn meta(&self, fid: FragmentId) -> Option<FragmentMeta> {
        (**self).meta(fid)
    }
    fn last_marked(&self, client: ClientId) -> Option<FragmentId> {
        (**self).last_marked(client)
    }
    fn list(&self) -> Vec<FragmentId> {
        (**self).list()
    }
    fn fragment_count(&self) -> u64 {
        (**self).fragment_count()
    }
    fn byte_count(&self) -> u64 {
        (**self).byte_count()
    }
    fn capacity(&self) -> u64 {
        (**self).capacity()
    }
}

/// Shared conformance tests run against every [`FragmentStore`]
/// implementation (called from `memstore` and `filestore` test modules).
#[cfg(test)]
pub(crate) mod conformance {
    use super::*;
    use swarm_types::SwarmError;

    fn fid(client: u32, seq: u64) -> FragmentId {
        FragmentId::new(ClientId::new(client), seq)
    }

    pub fn store_read_roundtrip(s: &dyn FragmentStore) {
        let data: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        s.store(fid(1, 0), data.clone().into(), false).unwrap();
        assert_eq!(s.read(fid(1, 0), 0, 2048).unwrap(), data);
        assert_eq!(s.read(fid(1, 0), 100, 32).unwrap(), &data[100..132]);
        assert_eq!(s.read(fid(1, 0), 2048, 0).unwrap(), Vec::<u8>::new());
    }

    pub fn double_store_rejected(s: &dyn FragmentStore) {
        s.store(fid(1, 1), b"aaa".into(), false).unwrap();
        let err = s.store(fid(1, 1), b"bbb".into(), false).unwrap_err();
        assert!(matches!(err, SwarmError::FragmentExists(_)), "{err}");
        // Original data untouched.
        assert_eq!(s.read(fid(1, 1), 0, 3).unwrap(), b"aaa");
    }

    pub fn missing_fragment_errors(s: &dyn FragmentStore) {
        let err = s.read(fid(9, 9), 0, 1).unwrap_err();
        assert!(matches!(err, SwarmError::FragmentNotFound(_)), "{err}");
        let err = s.delete(fid(9, 9)).unwrap_err();
        assert!(matches!(err, SwarmError::FragmentNotFound(_)), "{err}");
    }

    pub fn out_of_range_read_errors(s: &dyn FragmentStore) {
        s.store(fid(1, 2), b"0123456789".into(), false).unwrap();
        let err = s.read(fid(1, 2), 5, 6).unwrap_err();
        assert!(matches!(err, SwarmError::RangeOutOfBounds { .. }), "{err}");
        let err = s.read(fid(1, 2), 11, 0).unwrap_err();
        assert!(matches!(err, SwarmError::RangeOutOfBounds { .. }), "{err}");
    }

    pub fn delete_frees_fragment(s: &dyn FragmentStore) {
        s.store(fid(1, 3), b"gone".into(), false).unwrap();
        s.delete(fid(1, 3)).unwrap();
        assert!(s.read(fid(1, 3), 0, 1).is_err());
        assert!(s.meta(fid(1, 3)).is_none());
        // Slot is reusable.
        s.store(fid(1, 3), b"back".into(), false).unwrap();
        assert_eq!(s.read(fid(1, 3), 0, 4).unwrap(), b"back");
    }

    pub fn marked_tracking(s: &dyn FragmentStore) {
        assert_eq!(s.last_marked(ClientId::new(2)), None);
        s.store(fid(2, 0), b"a".into(), true).unwrap();
        s.store(fid(2, 1), b"b".into(), false).unwrap();
        s.store(fid(2, 2), b"c".into(), true).unwrap();
        s.store(fid(3, 7), b"d".into(), true).unwrap();
        assert_eq!(s.last_marked(ClientId::new(2)), Some(fid(2, 2)));
        assert_eq!(s.last_marked(ClientId::new(3)), Some(fid(3, 7)));
        // Deleting the newest marked fragment falls back to the previous.
        s.delete(fid(2, 2)).unwrap();
        assert_eq!(s.last_marked(ClientId::new(2)), Some(fid(2, 0)));
    }

    pub fn capacity_enforced(s: &dyn FragmentStore) {
        assert_eq!(s.capacity(), 2);
        s.store(fid(4, 0), b"x".into(), false).unwrap();
        s.preallocate(fid(4, 1), 1).unwrap();
        let err = s.store(fid(4, 2), b"z".into(), false).unwrap_err();
        assert!(matches!(err, SwarmError::OutOfSpace(_)), "{err}");
        // The preallocated slot still accepts its fragment.
        s.store(fid(4, 1), b"y".into(), false).unwrap();
        // Deleting frees a slot.
        s.delete(fid(4, 0)).unwrap();
        s.store(fid(4, 2), b"z".into(), false).unwrap();
    }

    /// Concurrent stores, reads, and deletes across distinct FIDs must
    /// never tear: a read observes either the full fragment (byte-exact,
    /// derived from the FID) or `FragmentNotFound` — nothing in between.
    pub fn concurrent_store_read_delete(s: &dyn FragmentStore) {
        fn content(t: u32, i: u64) -> Vec<u8> {
            (0..256u32).map(|j| (t + i as u32 * 31 + j) as u8).collect()
        }
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..25u64 {
                        let f = fid(10 + t, i);
                        s.store(f, content(t, i).into(), false).unwrap();
                        match s.read(f, 0, 256) {
                            Ok(got) => assert_eq!(&got[..], &content(t, i)[..]),
                            Err(SwarmError::FragmentNotFound(_)) => {}
                            Err(e) => panic!("unexpected read error: {e}"),
                        }
                        if i % 3 == 0 {
                            s.delete(f).unwrap();
                        }
                    }
                });
                // A reader thread racing over every other thread's FIDs.
                scope.spawn(move || {
                    for i in 0..25u64 {
                        for rt in 0..4u32 {
                            match s.read(fid(10 + rt, i), 0, 256) {
                                Ok(got) => assert_eq!(&got[..], &content(rt, i)[..]),
                                Err(SwarmError::FragmentNotFound(_)) => {}
                                Err(e) => panic!("unexpected read error: {e}"),
                            }
                        }
                    }
                });
            }
        });
        // Every surviving fragment is byte-exact.
        for t in 0..4u32 {
            for i in 0..25u64 {
                let f = fid(10 + t, i);
                if i % 3 == 0 {
                    assert!(s.meta(f).is_none());
                } else {
                    assert_eq!(&s.read(f, 0, 256).unwrap()[..], &content(t, i)[..]);
                }
            }
        }
    }

    pub fn accounting(s: &dyn FragmentStore) {
        assert_eq!(s.fragment_count(), 0);
        assert_eq!(s.byte_count(), 0);
        s.store(fid(5, 0), vec![0u8; 100].into(), false).unwrap();
        s.store(fid(5, 1), vec![0u8; 28].into(), false).unwrap();
        assert_eq!(s.fragment_count(), 2);
        assert_eq!(s.byte_count(), 128);
        assert_eq!(s.list(), vec![fid(5, 0), fid(5, 1)]);
        s.delete(fid(5, 0)).unwrap();
        assert_eq!(s.fragment_count(), 1);
        assert_eq!(s.byte_count(), 28);
    }
}
