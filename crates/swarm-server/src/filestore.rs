//! Durable, crash-atomic [`FragmentStore`] backed by a directory.
//!
//! Mirrors the prototype server (§3.2): fragment-sized slots (one file per
//! fragment) plus an on-disk *fragment map* — here an append-only journal
//! so that the map update itself is atomic. Store ordering gives the
//! paper's §2.3.1 guarantee ("all storage server operations are atomic"):
//!
//! 1. fragment bytes are written to `tmp/` and fsync'd,
//! 2. the file is renamed into `slots/` (atomic on POSIX),
//! 3. a journal entry is appended and fsync'd.
//!
//! A crash before (3) leaves an orphan slot file with no journal entry;
//! `open` deletes orphans, so the fragment was never stored. A crash
//! mid-(3) leaves a torn journal tail; replay stops at the first bad
//! frame, discarding only the torn entry. Either way the fragment exists
//! in full or not at all.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use swarm_types::{crc32, BlockAddr, Bytes, ClientId, FragmentId, Result, SwarmError};

use crate::store::{FragmentMeta, FragmentStore};

const JOURNAL: &str = "journal";
const SLOTS: &str = "slots";
const TMP: &str = "tmp";

const OP_STORE: u8 = 1;
const OP_DELETE: u8 = 2;

/// Bounds-checked little-endian reads for journal replay: a short or
/// corrupt buffer yields `None` (treated as a torn tail), never a panic —
/// a damaged journal must degrade, not kill the server on open.
fn read_u32_le(buf: &[u8], pos: usize) -> Option<u32> {
    let bytes = buf.get(pos..pos.checked_add(4)?)?;
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

fn read_u64_le(buf: &[u8], pos: usize) -> Option<u64> {
    let bytes = buf.get(pos..pos.checked_add(8)?)?;
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

#[derive(Default)]
struct Inner {
    fragments: BTreeMap<FragmentId, (u32, bool)>, // len, marked
    prealloc: HashSet<FragmentId>,
    marked: HashMap<ClientId, BTreeSet<FragmentId>>,
    bytes: u64,
    journal: Option<File>,
    journal_entries: u64,
}

/// A directory-backed fragment store with atomic stores and journaled
/// fragment map.
pub struct FileStore {
    dir: PathBuf,
    inner: Mutex<Inner>,
    capacity: u64,
    /// fsync data and journal on every operation (disable only in tests
    /// and benchmarks that measure other things).
    durable: bool,
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("dir", &self.dir)
            .field("capacity", &self.capacity)
            .field("durable", &self.durable)
            .finish()
    }
}

impl FileStore {
    /// Opens (creating if necessary) a store rooted at `dir` with no slot
    /// limit.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Io`] if the directory cannot be created, or
    /// [`SwarmError::Corrupt`] if the journal references slot files that
    /// have disappeared.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileStore> {
        Self::open_with(dir, 0, true)
    }

    /// Opens a store with a slot capacity (0 = unbounded) and explicit
    /// durability mode.
    ///
    /// # Errors
    ///
    /// See [`FileStore::open`].
    pub fn open_with(dir: impl AsRef<Path>, capacity: u64, durable: bool) -> Result<FileStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(dir.join(SLOTS))?;
        fs::create_dir_all(dir.join(TMP))?;

        let mut inner = Inner::default();
        Self::replay_journal(&dir, &mut inner)?;
        Self::sweep(&dir, &mut inner)?;

        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(JOURNAL))?;
        inner.journal = Some(journal);

        Ok(FileStore {
            dir,
            inner: Mutex::new(inner),
            capacity,
            durable,
        })
    }

    fn slot_path(dir: &Path, fid: FragmentId) -> PathBuf {
        dir.join(SLOTS).join(format!("{:016x}.frag", fid.raw()))
    }

    fn replay_journal(dir: &Path, inner: &mut Inner) -> Result<()> {
        let path = dir.join(JOURNAL);
        let Ok(mut f) = File::open(&path) else {
            return Ok(()); // fresh store
        };
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        let mut pos = 0usize;
        while buf.len() - pos >= 8 {
            let (Some(len), Some(crc)) = (read_u32_le(&buf, pos), read_u32_le(&buf, pos + 4))
            else {
                break; // torn tail
            };
            let len = len as usize;
            if len == 0 || len > 64 || buf.len() - pos - 8 < len {
                // A zero-length entry can carry a valid CRC (crc32 of
                // nothing) but has no opcode to dispatch on — corrupt,
                // treated like a torn tail rather than a panic.
                break;
            }
            let payload = &buf[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                break; // torn tail
            }
            pos += 8 + len;
            inner.journal_entries += 1;
            match payload[0] {
                OP_STORE if payload.len() == 1 + 8 + 4 + 1 => {
                    let (Some(raw), Some(len)) = (read_u64_le(payload, 1), read_u32_le(payload, 9))
                    else {
                        break;
                    };
                    let fid = FragmentId::from_raw(raw);
                    let marked = payload[13] != 0;
                    if let Some((old_len, old_marked)) = inner.fragments.insert(fid, (len, marked))
                    {
                        // Duplicate store entries can only come from
                        // compaction races; keep accounting consistent.
                        inner.bytes -= old_len as u64;
                        if old_marked {
                            if let Some(s) = inner.marked.get_mut(&fid.client()) {
                                s.remove(&fid);
                            }
                        }
                    }
                    inner.bytes += len as u64;
                    if marked {
                        inner.marked.entry(fid.client()).or_default().insert(fid);
                    }
                }
                OP_DELETE if payload.len() == 1 + 8 => {
                    let Some(raw) = read_u64_le(payload, 1) else {
                        break;
                    };
                    let fid = FragmentId::from_raw(raw);
                    if let Some((len, marked)) = inner.fragments.remove(&fid) {
                        inner.bytes -= len as u64;
                        if marked {
                            if let Some(s) = inner.marked.get_mut(&fid.client()) {
                                s.remove(&fid);
                            }
                        }
                    }
                }
                other => return Err(SwarmError::corrupt(format!("unknown journal op {other}"))),
            }
        }
        Ok(())
    }

    /// Deletes orphan slot files (crash between rename and journal append)
    /// and tmp leftovers; verifies every mapped fragment's file exists.
    fn sweep(dir: &Path, inner: &mut Inner) -> Result<()> {
        for entry in fs::read_dir(dir.join(TMP))? {
            let entry = entry?;
            let _ = fs::remove_file(entry.path());
        }
        let mut present = HashSet::new();
        for entry in fs::read_dir(dir.join(SLOTS))? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(hex) = name.strip_suffix(".frag") else {
                continue;
            };
            let Ok(raw) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            let fid = FragmentId::from_raw(raw);
            if inner.fragments.contains_key(&fid) {
                present.insert(fid);
            } else {
                // Orphan: store never committed (or delete never finished).
                let _ = fs::remove_file(entry.path());
            }
        }
        for fid in inner.fragments.keys() {
            if !present.contains(fid) {
                return Err(SwarmError::corrupt(format!(
                    "fragment map references missing slot file for {fid}"
                )));
            }
        }
        Ok(())
    }

    fn append_journal(&self, inner: &mut Inner, payload: &[u8]) -> Result<()> {
        let journal = inner
            .journal
            .as_mut()
            .ok_or(SwarmError::Closed("journal"))?;
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        journal.write_all(&rec)?;
        if self.durable {
            journal.sync_data()?;
        }
        inner.journal_entries += 1;
        Ok(())
    }

    fn slots_used(inner: &Inner) -> u64 {
        inner.fragments.len() as u64 + inner.prealloc.len() as u64
    }

    /// Rewrites the journal to contain only live fragments. Called
    /// automatically when the journal grows far beyond the live set; also
    /// callable explicitly (e.g. at shutdown).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Io`] on disk failure; on error the original
    /// journal remains authoritative.
    pub fn compact_journal(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.compact_journal_locked(&mut inner)
    }

    fn compact_journal_locked(&self, inner: &mut Inner) -> Result<()> {
        let new_path = self.dir.join("journal.new");
        {
            let mut f = File::create(&new_path)?;
            let mut buf = Vec::new();
            for (fid, (len, marked)) in &inner.fragments {
                let mut payload = Vec::with_capacity(14);
                payload.push(OP_STORE);
                payload.extend_from_slice(&fid.raw().to_le_bytes());
                payload.extend_from_slice(&len.to_le_bytes());
                payload.push(*marked as u8);
                buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                buf.extend_from_slice(&crc32(&payload).to_le_bytes());
                buf.extend_from_slice(&payload);
            }
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&new_path, self.dir.join(JOURNAL))?;
        let journal = OpenOptions::new()
            .append(true)
            .open(self.dir.join(JOURNAL))?;
        inner.journal = Some(journal);
        inner.journal_entries = inner.fragments.len() as u64;
        Ok(())
    }

    fn maybe_compact(&self, inner: &mut Inner) {
        let live = inner.fragments.len() as u64;
        if inner.journal_entries > 1024 && inner.journal_entries > live.saturating_mul(4) {
            // Compaction failure is non-fatal: the journal stays valid.
            let _ = self.compact_journal_locked(inner);
        }
    }
}

impl FragmentStore for FileStore {
    fn store(&self, fid: FragmentId, data: Bytes, marked: bool) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.fragments.contains_key(&fid) {
            return Err(SwarmError::FragmentExists(fid));
        }
        let had_slot = inner.prealloc.contains(&fid);
        if !had_slot && self.capacity != 0 && Self::slots_used(&inner) >= self.capacity {
            return Err(SwarmError::OutOfSpace(format!(
                "all {} slots in use",
                self.capacity
            )));
        }

        // (1) bytes to tmp, fsync'd
        let tmp_path = self.dir.join(TMP).join(format!("{:016x}", fid.raw()));
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(&data)?;
            if self.durable {
                f.sync_all()?;
            }
        }
        // (2) atomic rename into the slot
        fs::rename(&tmp_path, Self::slot_path(&self.dir, fid))?;
        // (3) journal entry
        let mut payload = Vec::with_capacity(14);
        payload.push(OP_STORE);
        payload.extend_from_slice(&fid.raw().to_le_bytes());
        payload.extend_from_slice(&(data.len() as u32).to_le_bytes());
        payload.push(marked as u8);
        self.append_journal(&mut inner, &payload)?;

        inner.prealloc.remove(&fid);
        inner.bytes += data.len() as u64;
        inner.fragments.insert(fid, (data.len() as u32, marked));
        if marked {
            inner.marked.entry(fid.client()).or_default().insert(fid);
        }
        Ok(())
    }

    fn read(&self, fid: FragmentId, offset: u32, len: u32) -> Result<Bytes> {
        let stored = {
            let inner = self.inner.lock();
            let (stored, _) = inner
                .fragments
                .get(&fid)
                .ok_or(SwarmError::FragmentNotFound(fid))?;
            *stored
        };
        if offset > stored || offset + len > stored {
            return Err(SwarmError::RangeOutOfBounds {
                addr: BlockAddr::new(fid, offset, len),
                stored,
            });
        }
        let mut f = File::open(Self::slot_path(&self.dir, fid))?;
        use std::io::{Seek, SeekFrom};
        f.seek(SeekFrom::Start(offset as u64))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf.into())
    }

    fn delete(&self, fid: FragmentId) -> Result<()> {
        let mut inner = self.inner.lock();
        let Some(&(len, marked)) = inner.fragments.get(&fid) else {
            return Err(SwarmError::FragmentNotFound(fid));
        };
        // Journal first: a crash after this point replays as deleted, and
        // the sweep removes the then-orphaned slot file.
        let mut payload = Vec::with_capacity(9);
        payload.push(OP_DELETE);
        payload.extend_from_slice(&fid.raw().to_le_bytes());
        self.append_journal(&mut inner, &payload)?;

        inner.fragments.remove(&fid);
        inner.bytes -= len as u64;
        if marked {
            if let Some(s) = inner.marked.get_mut(&fid.client()) {
                s.remove(&fid);
            }
        }
        let _ = fs::remove_file(Self::slot_path(&self.dir, fid));
        self.maybe_compact(&mut inner);
        Ok(())
    }

    fn preallocate(&self, fid: FragmentId, _len: u32) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.fragments.contains_key(&fid) || inner.prealloc.contains(&fid) {
            return Ok(());
        }
        if self.capacity != 0 && Self::slots_used(&inner) >= self.capacity {
            return Err(SwarmError::OutOfSpace(format!(
                "all {} slots in use",
                self.capacity
            )));
        }
        inner.prealloc.insert(fid);
        Ok(())
    }

    fn meta(&self, fid: FragmentId) -> Option<FragmentMeta> {
        let inner = self.inner.lock();
        inner.fragments.get(&fid).map(|(len, marked)| FragmentMeta {
            len: *len,
            marked: *marked,
        })
    }

    fn last_marked(&self, client: ClientId) -> Option<FragmentId> {
        let inner = self.inner.lock();
        inner
            .marked
            .get(&client)
            .and_then(|set| set.iter().next_back().copied())
    }

    fn list(&self) -> Vec<FragmentId> {
        self.inner.lock().fragments.keys().copied().collect()
    }

    fn fragment_count(&self) -> u64 {
        self.inner.lock().fragments.len() as u64
    }

    fn byte_count(&self) -> u64 {
        self.inner.lock().bytes
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::conformance;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let pid = std::process::id();
            let n = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos();
            let path = std::env::temp_dir().join(format!("swarm-fs-{tag}-{pid}-{n}"));
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn fid(c: u32, s: u64) -> FragmentId {
        FragmentId::new(ClientId::new(c), s)
    }

    #[test]
    fn conformance_all() {
        // Non-durable in tests (no fsync) — semantics identical. Each
        // conformance case assumes a fresh store.
        type Case = (&'static str, fn(&dyn FragmentStore));
        let cases: Vec<Case> = vec![
            ("roundtrip", conformance::store_read_roundtrip),
            ("double", conformance::double_store_rejected),
            ("missing", conformance::missing_fragment_errors),
            ("range", conformance::out_of_range_read_errors),
            ("delete", conformance::delete_frees_fragment),
            ("marked", conformance::marked_tracking),
            ("accounting", conformance::accounting),
        ];
        for (tag, case) in cases {
            let d = TempDir::new(tag);
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            case(&s);
        }
    }

    #[test]
    fn conformance_capacity() {
        let d = TempDir::new("cap");
        let s = FileStore::open_with(&d.0, 2, false).unwrap();
        conformance::capacity_enforced(&s);
    }

    #[test]
    fn reopen_recovers_contents_and_marks() {
        let d = TempDir::new("reopen");
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 0), b"alpha".into(), false).unwrap();
            s.store(fid(1, 1), b"beta".into(), true).unwrap();
            s.store(fid(1, 2), b"gamma".into(), false).unwrap();
            s.delete(fid(1, 0)).unwrap();
        }
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert_eq!(s.read(fid(1, 1), 0, 4).unwrap(), b"beta");
        assert_eq!(s.read(fid(1, 2), 0, 5).unwrap(), b"gamma");
        assert!(s.read(fid(1, 0), 0, 1).is_err());
        assert_eq!(s.last_marked(ClientId::new(1)), Some(fid(1, 1)));
        assert_eq!(s.fragment_count(), 2);
        assert_eq!(s.byte_count(), 9);
    }

    #[test]
    fn orphan_slot_file_is_swept_on_open() {
        // Simulates a crash between rename (2) and journal append (3).
        let d = TempDir::new("orphan");
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 0), b"committed".into(), false).unwrap();
        }
        let orphan = FileStore::slot_path(&d.0, fid(1, 99));
        fs::write(&orphan, b"never committed").unwrap();
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert!(!orphan.exists(), "orphan should be swept");
        assert!(s.read(fid(1, 99), 0, 1).is_err());
        assert_eq!(s.read(fid(1, 0), 0, 9).unwrap(), b"committed");
    }

    /// Regression test: a zero-length journal entry carries a valid CRC
    /// (crc32 of the empty string) but no opcode; replay used to index
    /// `payload[0]` and panic on open. It must be treated as a torn tail:
    /// entries before it survive, the store opens fine.
    #[test]
    fn zero_length_journal_entry_does_not_panic_open() {
        let d = TempDir::new("zerolen");
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 0), b"good".into(), false).unwrap();
        }
        let mut f = OpenOptions::new()
            .append(true)
            .open(d.0.join(JOURNAL))
            .unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap(); // len = 0
        f.write_all(&crc32(b"").to_le_bytes()).unwrap(); // valid CRC
        drop(f);
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert_eq!(s.read(fid(1, 0), 0, 4).unwrap(), b"good");
        assert_eq!(s.fragment_count(), 1);
    }

    #[test]
    fn torn_journal_tail_is_discarded() {
        let d = TempDir::new("torn");
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 0), b"good".into(), false).unwrap();
        }
        // Append garbage (a torn record) to the journal.
        let mut f = OpenOptions::new()
            .append(true)
            .open(d.0.join(JOURNAL))
            .unwrap();
        f.write_all(&[14, 0, 0, 0, 0xde, 0xad]).unwrap();
        drop(f);
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert_eq!(s.fragment_count(), 1);
        assert_eq!(s.read(fid(1, 0), 0, 4).unwrap(), b"good");
        // And the store remains writable afterwards.
        s.store(fid(1, 1), b"more".into(), false).unwrap();
    }

    #[test]
    fn missing_slot_file_for_mapped_fragment_is_corruption() {
        let d = TempDir::new("missing");
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 0), b"data".into(), false).unwrap();
        }
        fs::remove_file(FileStore::slot_path(&d.0, fid(1, 0))).unwrap();
        let err = FileStore::open_with(&d.0, 0, false).unwrap_err();
        assert!(matches!(err, SwarmError::Corrupt(_)), "{err}");
    }

    #[test]
    fn journal_compaction_preserves_state() {
        let d = TempDir::new("compact");
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        for i in 0..50 {
            s.store(
                fid(2, i),
                format!("frag{i}").into_bytes().into(),
                i % 7 == 0,
            )
            .unwrap();
        }
        for i in 0..25 {
            s.delete(fid(2, i * 2)).unwrap();
        }
        s.compact_journal().unwrap();
        // Still queryable in place…
        assert_eq!(s.fragment_count(), 25);
        drop(s);
        // …and after reopen.
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert_eq!(s.fragment_count(), 25);
        assert_eq!(s.read(fid(2, 1), 0, 5).unwrap(), b"frag1");
        assert!(s.read(fid(2, 0), 0, 1).is_err());
        // Marked index survives: fids 7,21,35,49 marked & odd (not deleted);
        // the newest odd multiple of 7 below 50 is 49.
        assert_eq!(s.last_marked(ClientId::new(2)), Some(fid(2, 49)));
    }

    #[test]
    fn tmp_leftovers_are_cleaned() {
        let d = TempDir::new("tmp");
        {
            let _s = FileStore::open_with(&d.0, 0, false).unwrap();
        }
        fs::write(d.0.join(TMP).join("deadbeef"), b"junk").unwrap();
        let _s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert!(!d.0.join(TMP).join("deadbeef").exists());
    }
}
