//! Durable, crash-atomic [`FragmentStore`] backed by a directory.
//!
//! Mirrors the prototype server (§3.2): fragment-sized slots (one file per
//! fragment) plus an on-disk *fragment map* — here an append-only journal
//! so that the map update itself is atomic. Store ordering gives the
//! paper's §2.3.1 guarantee ("all storage server operations are atomic"):
//!
//! 1. fragment bytes are written to `tmp/` and fsync'd,
//! 2. the file is renamed into `slots/` (atomic on POSIX),
//! 3. a journal entry is appended and fsync'd.
//!
//! A crash before (3) leaves an orphan slot file with no journal entry;
//! `open` deletes orphans, so the fragment was never stored. A crash
//! mid-(3) leaves a torn journal tail; replay stops at the first bad
//! frame and `open` truncates the tail away, discarding only the torn
//! entry. Either way the fragment exists in full or not at all.
//!
//! ## Concurrency
//!
//! The store is sharded for concurrent writers: a global mutex protects
//! only the in-memory index (fragment map, prealloc/in-flight claims,
//! marked sets), and is held for microseconds per operation. All fragment
//! data I/O — tmp write, fsync, rename, slot reads — runs outside any
//! lock. Double-store exclusion uses an *in-flight claim table*: a store
//! claims its FID under the index lock before touching the disk, so two
//! concurrent stores of the same FID cannot interleave, and claimed FIDs
//! count toward the slot capacity.
//!
//! ## Journal group commit
//!
//! Journal appends from concurrent operations are batched: the first
//! appender becomes the *leader*, writes every queued record with one
//! `write` + one `sync_data`, and wakes all waiters — N concurrent stores
//! cost ~1 journal fsync. [`Durability`] selects the mode: `Strict` syncs
//! each batch immediately, `Group(window)` lets the leader wait up to
//! `window` so more appends join the batch, and `None` never syncs
//! (tests/benchmarks only). In every syncing mode an `Ok` return means
//! the operation's journal record is on disk.
//!
//! ## Crash points
//!
//! [`CrashPoint`] names each durability step of a store; tests inject one
//! with [`FileStore::inject_crash`] and the next store "crashes" there —
//! the step's on-disk effect is left half-done exactly as a power cut
//! would, no cleanup runs, and the operation returns an error. Reopening
//! the directory must then uphold the atomicity contract.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::Duration;

use parking_lot::Mutex;
use swarm_types::{crc32, BlockAddr, Bytes, ClientId, FragmentId, Result, SwarmError};

use crate::store::{FragmentMeta, FragmentStore};

const JOURNAL: &str = "journal";
const SLOTS: &str = "slots";
const TMP: &str = "tmp";

const OP_STORE: u8 = 1;
const OP_DELETE: u8 = 2;

struct StoreMetrics {
    journal_fsync: swarm_metrics::Counter,
    journal_batch: swarm_metrics::Histogram,
}

fn metrics() -> &'static StoreMetrics {
    static M: std::sync::OnceLock<StoreMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| StoreMetrics {
        journal_fsync: swarm_metrics::counter("server.journal_fsync"),
        journal_batch: swarm_metrics::histogram("server.journal_batch"),
    })
}

/// When (and how) the store syncs data and journal writes to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Every operation's journal batch is fsync'd before it returns.
    /// Concurrent operations still share a batch (group commit), so this
    /// is the safe *and* fast default.
    Strict,
    /// Like `Strict`, but the commit leader waits up to the window for
    /// more appends to join the batch before syncing — bigger batches,
    /// slightly higher latency. An `Ok` ack still means durable.
    Group(Duration),
    /// Never fsync (data or journal). For tests and benchmarks that
    /// measure something other than the disk.
    None,
}

impl Durability {
    /// Default batching window for [`Durability::Group`].
    pub const DEFAULT_GROUP_WINDOW: Duration = Duration::from_millis(2);

    fn syncs(self) -> bool {
        !matches!(self, Durability::None)
    }
}

impl std::fmt::Display for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Durability::Strict => write!(f, "strict"),
            Durability::Group(w) => write!(f, "group:{}", w.as_millis()),
            Durability::None => write!(f, "none"),
        }
    }
}

impl FromStr for Durability {
    type Err = String;

    /// Parses the config-knob syntax: `strict`, `none`, `group`, or
    /// `group:<millis>`.
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "strict" => Ok(Durability::Strict),
            "none" => Ok(Durability::None),
            "group" => Ok(Durability::Group(Self::DEFAULT_GROUP_WINDOW)),
            other => match other.strip_prefix("group:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| Durability::Group(Duration::from_millis(ms)))
                    .map_err(|e| format!("durability {other:?}: {e}")),
                None => Err(format!(
                    "unknown durability {other:?} (want strict|group[:millis]|none)"
                )),
            },
        }
    }
}

/// A durability step of `store` where a simulated crash can be injected
/// (see [`FileStore::inject_crash`]). Each variant leaves the disk exactly
/// as a power cut at that step would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash mid-way through writing the fragment bytes to `tmp/`: a
    /// partial tmp file survives.
    TmpWrite,
    /// Crash after writing `tmp/` but before its fsync: the full tmp file
    /// is visible (this process never lost page cache) but was never
    /// renamed.
    TmpSync,
    /// Crash after the tmp fsync, before the rename into `slots/`.
    Rename,
    /// Crash mid-way through the journal append: the slot file exists and
    /// a torn half-record sits at the journal tail.
    JournalAppend,
    /// Crash after the journal append but before its fsync: the record is
    /// fully written (and, within this process, visible on replay).
    JournalSync,
}

impl CrashPoint {
    /// Every crash point, in durability-step order.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::TmpWrite,
        CrashPoint::TmpSync,
        CrashPoint::Rename,
        CrashPoint::JournalAppend,
        CrashPoint::JournalSync,
    ];
}

/// Bounds-checked little-endian reads for journal replay: a short or
/// corrupt buffer yields `None` (treated as a torn tail), never a panic —
/// a damaged journal must degrade, not kill the server on open.
fn read_u32_le(buf: &[u8], pos: usize) -> Option<u32> {
    let bytes = buf.get(pos..pos.checked_add(4)?)?;
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

fn read_u64_le(buf: &[u8], pos: usize) -> Option<u64> {
    let bytes = buf.get(pos..pos.checked_add(8)?)?;
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(payload).to_le_bytes());
    rec.extend_from_slice(payload);
    rec
}

fn store_payload(fid: FragmentId, len: u32, marked: bool) -> Vec<u8> {
    let mut payload = Vec::with_capacity(14);
    payload.push(OP_STORE);
    payload.extend_from_slice(&fid.raw().to_le_bytes());
    payload.extend_from_slice(&len.to_le_bytes());
    payload.push(marked as u8);
    payload
}

fn delete_payload(fid: FragmentId) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9);
    payload.push(OP_DELETE);
    payload.extend_from_slice(&fid.raw().to_le_bytes());
    payload
}

/// The in-memory fragment index. Guarded by one mutex held only for map
/// lookups and bookkeeping — never across disk I/O.
#[derive(Default)]
struct Index {
    fragments: BTreeMap<FragmentId, (u32, bool)>, // len, marked
    prealloc: HashSet<FragmentId>,
    /// FIDs claimed by a store that has not committed yet. Claims give
    /// double-store exclusion without holding the index lock across the
    /// data write, and count toward capacity.
    inflight: HashSet<FragmentId>,
    /// FIDs mid-delete: removed from `fragments`, journal record not yet
    /// committed (or slot file not yet unlinked). A store may not reuse
    /// the FID until the delete finishes.
    deleting: HashSet<FragmentId>,
    marked: HashMap<ClientId, BTreeSet<FragmentId>>,
    bytes: u64,
}

impl Index {
    fn slots_used(&self) -> u64 {
        (self.fragments.len() + self.prealloc.len() + self.inflight.len() + self.deleting.len())
            as u64
    }

    fn insert_fragment(&mut self, fid: FragmentId, len: u32, marked: bool) {
        self.bytes += len as u64;
        self.fragments.insert(fid, (len, marked));
        if marked {
            self.marked.entry(fid.client()).or_default().insert(fid);
        }
    }

    fn remove_fragment(&mut self, fid: FragmentId) -> Option<(u32, bool)> {
        let (len, marked) = self.fragments.remove(&fid)?;
        self.bytes -= len as u64;
        if marked {
            if let Some(s) = self.marked.get_mut(&fid.client()) {
                s.remove(&fid);
            }
        }
        Some((len, marked))
    }
}

/// Group-commit journal writer.
///
/// Appenders enqueue encoded records under the state lock and take a
/// ticket; the first appender with no active leader becomes the leader,
/// writes the whole queue with one `write_all` + one `sync_data`, and
/// wakes everyone whose ticket the batch covered. A failed batch is
/// truncated back out of the file (so it cannot become a torn tail that
/// hides later, successfully committed records) and its tickets observe
/// the error.
struct Journal {
    dir: PathBuf,
    durability: Durability,
    file: StdMutex<JournalFile>,
    state: StdMutex<CommitState>,
    done: Condvar,
    /// Records in the on-disk journal (live + dead), for compaction.
    entries: AtomicU64,
    /// `sync_data` calls issued by batch commits.
    fsyncs: AtomicU64,
    /// Batches written (equals fsyncs when the mode syncs).
    batches: AtomicU64,
}

#[derive(Default)]
struct CommitState {
    /// Encoded records waiting for the next batch.
    buf: Vec<u8>,
    buf_records: u64,
    /// Tickets issued / durable / failed. `failed_upto` is checked before
    /// `committed` so a ticket dropped by a failed batch can never be
    /// claimed by a later successful one.
    queued: u64,
    committed: u64,
    failed_upto: u64,
    fail_msg: String,
    leader: bool,
}

struct JournalFile {
    file: File,
    /// Physical length, tracked so a failed batch can be truncated away.
    len: u64,
}

impl Journal {
    fn open(dir: &Path, durability: Durability, entries: u64) -> Result<Journal> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(JOURNAL))?;
        let len = file.metadata()?.len();
        Ok(Journal {
            dir: dir.to_path_buf(),
            durability,
            file: StdMutex::new(JournalFile { file, len }),
            state: StdMutex::new(CommitState::default()),
            done: Condvar::new(),
            entries: AtomicU64::new(entries),
            fsyncs: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        })
    }

    /// Appends one record and waits until the batch containing it is
    /// durable (per the configured [`Durability`]).
    fn append(&self, payload: &[u8]) -> Result<()> {
        let rec = encode_record(payload);
        let mut st = self.state.lock().expect("journal state lock");
        st.buf.extend_from_slice(&rec);
        st.buf_records += 1;
        st.queued += 1;
        let ticket = st.queued;
        loop {
            if st.failed_upto >= ticket {
                return Err(SwarmError::other(format!(
                    "journal append failed: {}",
                    st.fail_msg
                )));
            }
            if st.committed >= ticket {
                return Ok(());
            }
            if st.leader {
                st = self.done.wait(st).expect("journal state lock");
                continue;
            }
            st.leader = true;
            if let Durability::Group(window) = self.durability {
                // Hold leadership through the window so concurrent
                // appends pile into this batch. Waking early (another
                // append's notify) is fine — the timeout only bounds it.
                let (g, _) = self
                    .done
                    .wait_timeout(st, window)
                    .expect("journal state lock");
                st = g;
            }
            let batch = std::mem::take(&mut st.buf);
            let records = std::mem::take(&mut st.buf_records);
            let hi = st.queued;
            drop(st);
            let res = if records == 0 {
                Ok(())
            } else {
                self.write_batch(&batch, records)
            };
            st = self.state.lock().expect("journal state lock");
            st.leader = false;
            match res {
                Ok(()) => st.committed = st.committed.max(hi),
                Err(e) => {
                    st.failed_upto = st.failed_upto.max(hi);
                    st.fail_msg = e.to_string();
                }
            }
            self.done.notify_all();
        }
    }

    fn write_batch(&self, batch: &[u8], records: u64) -> Result<()> {
        let mut jf = self.file.lock().expect("journal file lock");
        let start = jf.len;
        let res = jf.file.write_all(batch).and_then(|()| {
            if self.durability.syncs() {
                jf.file.sync_data()
            } else {
                Ok(())
            }
        });
        match res {
            Ok(()) => {
                jf.len = start + batch.len() as u64;
                self.entries.fetch_add(records, Ordering::Relaxed);
                self.batches.fetch_add(1, Ordering::Relaxed);
                if self.durability.syncs() {
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                    let m = metrics();
                    m.journal_fsync.inc();
                    m.journal_batch.record_us(records);
                }
                Ok(())
            }
            Err(e) => {
                // Roll the partial batch back out: leaving it would plant
                // a torn record in the *middle* of the journal, hiding
                // every later (successful) append from replay.
                let _ = jf.file.set_len(start);
                Err(e.into())
            }
        }
    }

    /// Raw file append for injected crashes: bypasses batching, writes
    /// `rec` (halved when `torn`), never syncs, reports nothing.
    fn crash_append(&self, rec: &[u8], torn: bool) {
        let mut jf = self.file.lock().expect("journal file lock");
        let cut = if torn { rec.len() / 2 } else { rec.len() };
        if jf.file.write_all(&rec[..cut]).is_ok() {
            jf.len += cut as u64;
        }
    }

    /// Atomically replaces the journal contents with `records` (the
    /// compacted live set). The caller holds the index lock, so no new
    /// operation can commit index changes mid-snapshot; this routine
    /// additionally quiesces the committer so no batch is in flight.
    fn rewrite(&self, records: &[u8], live: u64) -> Result<()> {
        let mut st = self.state.lock().expect("journal state lock");
        while st.leader || !st.buf.is_empty() {
            st = self.done.wait(st).expect("journal state lock");
        }
        st.leader = true; // parks appenders while the file is swapped
        drop(st);

        let res = (|| {
            let new_path = self.dir.join("journal.new");
            let mut jf = self.file.lock().expect("journal file lock");
            {
                let mut f = File::create(&new_path)?;
                f.write_all(records)?;
                f.sync_all()?;
            }
            fs::rename(&new_path, self.dir.join(JOURNAL))?;
            let file = OpenOptions::new()
                .append(true)
                .open(self.dir.join(JOURNAL))?;
            jf.len = file.metadata()?.len();
            jf.file = file;
            self.entries.store(live, Ordering::Relaxed);
            Ok(())
        })();

        let mut st = self.state.lock().expect("journal state lock");
        st.leader = false;
        drop(st);
        self.done.notify_all();
        res
    }
}

/// A directory-backed fragment store with atomic stores, a journaled
/// fragment map, sharded locking, and journal group commit.
pub struct FileStore {
    dir: PathBuf,
    index: Mutex<Index>,
    journal: Journal,
    capacity: u64,
    durability: Durability,
    /// Per-attempt tmp-name nonce: retries and concurrent stores never
    /// collide on a tmp path.
    tmp_seq: AtomicU64,
    /// One-shot injected crash (test harness; see [`CrashPoint`]).
    crash: Mutex<Option<CrashPoint>>,
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("dir", &self.dir)
            .field("capacity", &self.capacity)
            .field("durability", &self.durability)
            .finish()
    }
}

impl FileStore {
    /// Opens (creating if necessary) a store rooted at `dir` with no slot
    /// limit and strict durability.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Io`] if the directory cannot be created, or
    /// [`SwarmError::Corrupt`] if the journal references slot files that
    /// have disappeared.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileStore> {
        Self::open_with(dir, 0, true)
    }

    /// Opens a store with a slot capacity (0 = unbounded) and a boolean
    /// durability switch: `true` = [`Durability::Strict`], `false` =
    /// [`Durability::None`].
    ///
    /// # Errors
    ///
    /// See [`FileStore::open`].
    pub fn open_with(dir: impl AsRef<Path>, capacity: u64, durable: bool) -> Result<FileStore> {
        let durability = if durable {
            Durability::Strict
        } else {
            Durability::None
        };
        Self::open_with_durability(dir, capacity, durability)
    }

    /// Opens a store with a slot capacity (0 = unbounded) and an explicit
    /// [`Durability`] mode.
    ///
    /// # Errors
    ///
    /// See [`FileStore::open`].
    pub fn open_with_durability(
        dir: impl AsRef<Path>,
        capacity: u64,
        durability: Durability,
    ) -> Result<FileStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(dir.join(SLOTS))?;
        fs::create_dir_all(dir.join(TMP))?;

        let mut index = Index::default();
        let entries = Self::replay_journal(&dir, &mut index)?;
        Self::sweep(&dir, &index)?;

        Ok(FileStore {
            journal: Journal::open(&dir, durability, entries)?,
            dir,
            index: Mutex::new(index),
            capacity,
            durability,
            tmp_seq: AtomicU64::new(0),
            crash: Mutex::new(None),
        })
    }

    /// The configured durability mode.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Journal `sync_data` calls issued so far (one per committed batch
    /// in syncing modes). With group commit, N concurrent stores advance
    /// this by far less than N.
    pub fn journal_fsyncs(&self) -> u64 {
        self.journal.fsyncs.load(Ordering::Relaxed)
    }

    /// Journal batches committed so far.
    pub fn journal_batches(&self) -> u64 {
        self.journal.batches.load(Ordering::Relaxed)
    }

    /// Arms a one-shot simulated crash at `point`: the next store that
    /// reaches that durability step leaves the disk exactly as a power
    /// cut there would (no cleanup runs) and returns an error. Reopen the
    /// directory to run recovery. Test harness API.
    pub fn inject_crash(&self, point: CrashPoint) {
        *self.crash.lock() = Some(point);
    }

    fn take_crash(&self, point: CrashPoint) -> bool {
        let mut g = self.crash.lock();
        if *g == Some(point) {
            *g = None;
            true
        } else {
            false
        }
    }

    fn crash_err(point: CrashPoint) -> SwarmError {
        SwarmError::other(format!("injected crash at {point:?}"))
    }

    fn slot_path(dir: &Path, fid: FragmentId) -> PathBuf {
        dir.join(SLOTS).join(format!("{:016x}.frag", fid.raw()))
    }

    /// Replays the journal into `index`, returning the number of valid
    /// records, and truncates any torn tail off the file so later appends
    /// can never hide behind it.
    fn replay_journal(dir: &Path, index: &mut Index) -> Result<u64> {
        let path = dir.join(JOURNAL);
        let Ok(mut f) = File::open(&path) else {
            return Ok(0); // fresh store
        };
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        drop(f);
        let mut pos = 0usize;
        let mut entries = 0u64;
        let mut torn = false;
        while buf.len() - pos >= 8 {
            let (Some(len), Some(crc)) = (read_u32_le(&buf, pos), read_u32_le(&buf, pos + 4))
            else {
                torn = true;
                break;
            };
            let len = len as usize;
            if len == 0 || len > 64 || buf.len() - pos - 8 < len {
                // A zero-length entry can carry a valid CRC (crc32 of
                // nothing) but has no opcode to dispatch on — corrupt,
                // treated like a torn tail rather than a panic.
                torn = true;
                break;
            }
            let payload = &buf[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                torn = true;
                break;
            }
            pos += 8 + len;
            entries += 1;
            match payload[0] {
                OP_STORE if payload.len() == 1 + 8 + 4 + 1 => {
                    let (Some(raw), Some(len)) = (read_u64_le(payload, 1), read_u32_le(payload, 9))
                    else {
                        torn = true;
                        break;
                    };
                    let fid = FragmentId::from_raw(raw);
                    let marked = payload[13] != 0;
                    if let Some((old_len, old_marked)) = index.fragments.insert(fid, (len, marked))
                    {
                        // Duplicate store entries come from the
                        // compaction/append race; keep accounting
                        // consistent.
                        index.bytes -= old_len as u64;
                        if old_marked {
                            if let Some(s) = index.marked.get_mut(&fid.client()) {
                                s.remove(&fid);
                            }
                        }
                    }
                    index.bytes += len as u64;
                    if marked {
                        index.marked.entry(fid.client()).or_default().insert(fid);
                    }
                }
                OP_DELETE if payload.len() == 1 + 8 => {
                    let Some(raw) = read_u64_le(payload, 1) else {
                        torn = true;
                        break;
                    };
                    let fid = FragmentId::from_raw(raw);
                    index.remove_fragment(fid);
                }
                other => return Err(SwarmError::corrupt(format!("unknown journal op {other}"))),
            }
        }
        if torn || pos < buf.len() {
            // Discard the torn tail physically: appends land directly
            // after the last valid record, so a record stored *after*
            // this recovery can never be hidden behind garbage at the
            // next replay.
            if let Ok(f) = OpenOptions::new().write(true).open(&path) {
                let _ = f.set_len(pos as u64);
            }
        }
        Ok(entries)
    }

    /// Deletes orphan slot files (crash between rename and journal append)
    /// and stale `tmp/` leftovers from crashed mid-store attempts;
    /// verifies every mapped fragment's file exists.
    fn sweep(dir: &Path, index: &Index) -> Result<()> {
        for entry in fs::read_dir(dir.join(TMP))? {
            let entry = entry?;
            // Every tmp entry is stale by definition at open: a store in
            // progress when the process died never committed.
            let _ = fs::remove_file(entry.path());
        }
        let mut present = HashSet::new();
        for entry in fs::read_dir(dir.join(SLOTS))? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(hex) = name.strip_suffix(".frag") else {
                continue;
            };
            let Ok(raw) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            let fid = FragmentId::from_raw(raw);
            if index.fragments.contains_key(&fid) {
                present.insert(fid);
            } else {
                // Orphan: store never committed (or delete never finished).
                let _ = fs::remove_file(entry.path());
            }
        }
        for fid in index.fragments.keys() {
            if !present.contains(fid) {
                return Err(SwarmError::corrupt(format!(
                    "fragment map references missing slot file for {fid}"
                )));
            }
        }
        Ok(())
    }

    /// Rewrites the journal to contain only live fragments. Called
    /// automatically when the journal grows far beyond the live set; also
    /// callable explicitly (e.g. at shutdown).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Io`] on disk failure; on error the original
    /// journal remains authoritative.
    pub fn compact_journal(&self) -> Result<()> {
        // Holding the index lock for the duration pins the snapshot: no
        // store/delete can commit an index change while the journal is
        // being swapped, so the compacted file covers exactly the live
        // set. An append already in flight re-lands in the new file (its
        // record becomes a benign duplicate that replay de-dups).
        let index = self.index.lock();
        let mut buf = Vec::new();
        for (fid, (len, marked)) in &index.fragments {
            buf.extend_from_slice(&encode_record(&store_payload(*fid, *len, *marked)));
        }
        self.journal.rewrite(&buf, index.fragments.len() as u64)
    }

    fn maybe_compact(&self) {
        let entries = self.journal.entries.load(Ordering::Relaxed);
        let live = self.index.lock().fragments.len() as u64;
        if entries > 1024 && entries > live.saturating_mul(4) {
            // Compaction failure is non-fatal: the journal stays valid.
            let _ = self.compact_journal();
        }
    }

    /// Releases a store claim after a failure.
    fn abort_claim(&self, fid: FragmentId) {
        self.index.lock().inflight.remove(&fid);
    }

    /// The data phase of a store: tmp write, tmp fsync, rename. Runs
    /// outside every lock. On an ordinary I/O error the tmp file is
    /// removed; on an injected crash it is left as the crash would leave
    /// it.
    fn write_data(&self, tmp: &Path, slot: &Path, data: &[u8]) -> Result<()> {
        let cleanup_err = |e: std::io::Error, tmp: &Path| -> SwarmError {
            let _ = fs::remove_file(tmp);
            e.into()
        };
        let mut f = File::create(tmp)?;
        if self.take_crash(CrashPoint::TmpWrite) {
            let _ = f.write_all(&data[..data.len() / 2]);
            return Err(Self::crash_err(CrashPoint::TmpWrite));
        }
        if let Err(e) = f.write_all(data) {
            return Err(cleanup_err(e, tmp));
        }
        if self.take_crash(CrashPoint::TmpSync) {
            return Err(Self::crash_err(CrashPoint::TmpSync));
        }
        if self.durability.syncs() {
            if let Err(e) = f.sync_all() {
                return Err(cleanup_err(e, tmp));
            }
        }
        drop(f);
        if self.take_crash(CrashPoint::Rename) {
            return Err(Self::crash_err(CrashPoint::Rename));
        }
        if let Err(e) = fs::rename(tmp, slot) {
            return Err(cleanup_err(e, tmp));
        }
        Ok(())
    }
}

impl FragmentStore for FileStore {
    fn store(&self, fid: FragmentId, data: Bytes, marked: bool) -> Result<()> {
        // Claim the FID under the index lock; everything after runs
        // without it until commit.
        {
            let mut index = self.index.lock();
            if index.fragments.contains_key(&fid)
                || index.inflight.contains(&fid)
                || index.deleting.contains(&fid)
            {
                return Err(SwarmError::FragmentExists(fid));
            }
            let had_slot = index.prealloc.contains(&fid);
            if !had_slot && self.capacity != 0 && index.slots_used() >= self.capacity {
                return Err(SwarmError::OutOfSpace(format!(
                    "all {} slots in use",
                    self.capacity
                )));
            }
            index.inflight.insert(fid);
        }

        // (1)+(2): bytes to a per-attempt tmp file, fsync, atomic rename.
        let tmp_path = self.dir.join(TMP).join(format!(
            "{:016x}.{}",
            fid.raw(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let slot_path = Self::slot_path(&self.dir, fid);
        if let Err(e) = self.write_data(&tmp_path, &slot_path, &data) {
            self.abort_claim(fid);
            return Err(e);
        }

        // (3): journal record through the group committer.
        let payload = store_payload(fid, data.len() as u32, marked);
        if self.take_crash(CrashPoint::JournalAppend) {
            self.journal.crash_append(&encode_record(&payload), true);
            self.abort_claim(fid);
            return Err(Self::crash_err(CrashPoint::JournalAppend));
        }
        if self.take_crash(CrashPoint::JournalSync) {
            self.journal.crash_append(&encode_record(&payload), false);
            self.abort_claim(fid);
            return Err(Self::crash_err(CrashPoint::JournalSync));
        }

        // Commit to the index *before* the journal append so a concurrent
        // compaction snapshot can only duplicate the record (replay
        // de-dups), never lose it.
        {
            let mut index = self.index.lock();
            index.inflight.remove(&fid);
            index.prealloc.remove(&fid);
            index.insert_fragment(fid, data.len() as u32, marked);
        }
        if let Err(e) = self.journal.append(&payload) {
            // Never became durable: undo the index entry and the slot
            // file (an in-process failure can clean up; a real crash here
            // leaves an orphan for the open-time sweep).
            self.index.lock().remove_fragment(fid);
            let _ = fs::remove_file(&slot_path);
            return Err(e);
        }
        Ok(())
    }

    fn read(&self, fid: FragmentId, offset: u32, len: u32) -> Result<Bytes> {
        let stored = {
            let index = self.index.lock();
            let (stored, _) = index
                .fragments
                .get(&fid)
                .ok_or(SwarmError::FragmentNotFound(fid))?;
            *stored
        };
        if offset > stored || offset + len > stored {
            return Err(SwarmError::RangeOutOfBounds {
                addr: BlockAddr::new(fid, offset, len),
                stored,
            });
        }
        // The file I/O runs without the index lock; a concurrent delete
        // may unlink the slot file under us, which must surface as
        // not-found, not a raw I/O error.
        let mut f = match File::open(Self::slot_path(&self.dir, fid)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(SwarmError::FragmentNotFound(fid));
            }
            Err(e) => return Err(e.into()),
        };
        use std::io::{Seek, SeekFrom};
        f.seek(SeekFrom::Start(offset as u64))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf.into())
    }

    fn delete(&self, fid: FragmentId) -> Result<()> {
        // Remove from the index first (claiming the FID in `deleting`),
        // then journal. The order matters for the compaction race: once
        // the fragment is out of the index a compaction snapshot cannot
        // resurrect it, and the OP_DELETE lands after the compacted
        // records either way.
        let (len, marked) = {
            let mut index = self.index.lock();
            let Some((len, marked)) = index.remove_fragment(fid) else {
                return Err(SwarmError::FragmentNotFound(fid));
            };
            index.deleting.insert(fid);
            (len, marked)
        };
        match self.journal.append(&delete_payload(fid)) {
            Ok(()) => {
                let _ = fs::remove_file(Self::slot_path(&self.dir, fid));
                self.index.lock().deleting.remove(&fid);
                self.maybe_compact();
                Ok(())
            }
            Err(e) => {
                // The delete never became durable; the fragment is still
                // fully present on disk. Restore the index entry.
                let mut index = self.index.lock();
                index.deleting.remove(&fid);
                index.insert_fragment(fid, len, marked);
                Err(e)
            }
        }
    }

    fn preallocate(&self, fid: FragmentId, _len: u32) -> Result<()> {
        let mut index = self.index.lock();
        if index.fragments.contains_key(&fid) || index.prealloc.contains(&fid) {
            return Ok(());
        }
        if self.capacity != 0 && index.slots_used() >= self.capacity {
            return Err(SwarmError::OutOfSpace(format!(
                "all {} slots in use",
                self.capacity
            )));
        }
        index.prealloc.insert(fid);
        Ok(())
    }

    fn meta(&self, fid: FragmentId) -> Option<FragmentMeta> {
        let index = self.index.lock();
        index.fragments.get(&fid).map(|(len, marked)| FragmentMeta {
            len: *len,
            marked: *marked,
        })
    }

    fn last_marked(&self, client: ClientId) -> Option<FragmentId> {
        let index = self.index.lock();
        index
            .marked
            .get(&client)
            .and_then(|set| set.iter().next_back().copied())
    }

    fn list(&self) -> Vec<FragmentId> {
        self.index.lock().fragments.keys().copied().collect()
    }

    fn fragment_count(&self) -> u64 {
        self.index.lock().fragments.len() as u64
    }

    fn byte_count(&self) -> u64 {
        self.index.lock().bytes
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::conformance;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let pid = std::process::id();
            let n = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos();
            let path = std::env::temp_dir().join(format!("swarm-fs-{tag}-{pid}-{n}"));
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn fid(c: u32, s: u64) -> FragmentId {
        FragmentId::new(ClientId::new(c), s)
    }

    #[test]
    fn conformance_all() {
        // Non-durable in tests (no fsync) — semantics identical. Each
        // conformance case assumes a fresh store.
        type Case = (&'static str, fn(&dyn FragmentStore));
        let cases: Vec<Case> = vec![
            ("roundtrip", conformance::store_read_roundtrip),
            ("double", conformance::double_store_rejected),
            ("missing", conformance::missing_fragment_errors),
            ("range", conformance::out_of_range_read_errors),
            ("delete", conformance::delete_frees_fragment),
            ("marked", conformance::marked_tracking),
            ("accounting", conformance::accounting),
            ("concurrent", conformance::concurrent_store_read_delete),
        ];
        for (tag, case) in cases {
            let d = TempDir::new(tag);
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            case(&s);
        }
    }

    #[test]
    fn conformance_capacity() {
        let d = TempDir::new("cap");
        let s = FileStore::open_with(&d.0, 2, false).unwrap();
        conformance::capacity_enforced(&s);
    }

    #[test]
    fn conformance_group_commit_mode() {
        // The same semantics hold when acks ride the group committer.
        let d = TempDir::new("group");
        let s =
            FileStore::open_with_durability(&d.0, 0, Durability::Group(Duration::from_millis(1)))
                .unwrap();
        conformance::store_read_roundtrip(&s);
        conformance::concurrent_store_read_delete(&s);
    }

    #[test]
    fn durability_knob_parses() {
        assert_eq!("strict".parse::<Durability>().unwrap(), Durability::Strict);
        assert_eq!("none".parse::<Durability>().unwrap(), Durability::None);
        assert_eq!(
            "group".parse::<Durability>().unwrap(),
            Durability::Group(Durability::DEFAULT_GROUP_WINDOW)
        );
        assert_eq!(
            "group:7".parse::<Durability>().unwrap(),
            Durability::Group(Duration::from_millis(7))
        );
        assert!("fast".parse::<Durability>().is_err());
        assert!("group:x".parse::<Durability>().is_err());
        assert_eq!(
            Durability::Group(Duration::from_millis(7)).to_string(),
            "group:7"
        );
    }

    #[test]
    fn reopen_recovers_contents_and_marks() {
        let d = TempDir::new("reopen");
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 0), b"alpha".into(), false).unwrap();
            s.store(fid(1, 1), b"beta".into(), true).unwrap();
            s.store(fid(1, 2), b"gamma".into(), false).unwrap();
            s.delete(fid(1, 0)).unwrap();
        }
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert_eq!(s.read(fid(1, 1), 0, 4).unwrap(), b"beta");
        assert_eq!(s.read(fid(1, 2), 0, 5).unwrap(), b"gamma");
        assert!(s.read(fid(1, 0), 0, 1).is_err());
        assert_eq!(s.last_marked(ClientId::new(1)), Some(fid(1, 1)));
        assert_eq!(s.fragment_count(), 2);
        assert_eq!(s.byte_count(), 9);
    }

    #[test]
    fn orphan_slot_file_is_swept_on_open() {
        // Simulates a crash between rename (2) and journal append (3).
        let d = TempDir::new("orphan");
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 0), b"committed".into(), false).unwrap();
        }
        let orphan = FileStore::slot_path(&d.0, fid(1, 99));
        fs::write(&orphan, b"never committed").unwrap();
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert!(!orphan.exists(), "orphan should be swept");
        assert!(s.read(fid(1, 99), 0, 1).is_err());
        assert_eq!(s.read(fid(1, 0), 0, 9).unwrap(), b"committed");
    }

    /// Regression test: a zero-length journal entry carries a valid CRC
    /// (crc32 of the empty string) but no opcode; replay used to index
    /// `payload[0]` and panic on open. It must be treated as a torn tail:
    /// entries before it survive, the store opens fine.
    #[test]
    fn zero_length_journal_entry_does_not_panic_open() {
        let d = TempDir::new("zerolen");
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 0), b"good".into(), false).unwrap();
        }
        let mut f = OpenOptions::new()
            .append(true)
            .open(d.0.join(JOURNAL))
            .unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap(); // len = 0
        f.write_all(&crc32(b"").to_le_bytes()).unwrap(); // valid CRC
        drop(f);
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert_eq!(s.read(fid(1, 0), 0, 4).unwrap(), b"good");
        assert_eq!(s.fragment_count(), 1);
    }

    #[test]
    fn torn_journal_tail_is_discarded() {
        let d = TempDir::new("torn");
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 0), b"good".into(), false).unwrap();
        }
        // Append garbage (a torn record) to the journal.
        let mut f = OpenOptions::new()
            .append(true)
            .open(d.0.join(JOURNAL))
            .unwrap();
        f.write_all(&[14, 0, 0, 0, 0xde, 0xad]).unwrap();
        drop(f);
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert_eq!(s.fragment_count(), 1);
        assert_eq!(s.read(fid(1, 0), 0, 4).unwrap(), b"good");
        // And the store remains writable afterwards.
        s.store(fid(1, 1), b"more".into(), false).unwrap();
    }

    /// The torn tail must be *physically* truncated at open: a fragment
    /// stored after recovery lands directly after the last valid record
    /// and survives a second reopen (it used to be appended after the
    /// garbage and silently lost).
    #[test]
    fn store_after_torn_tail_survives_second_reopen() {
        let d = TempDir::new("torn2");
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 0), b"good".into(), false).unwrap();
        }
        let mut f = OpenOptions::new()
            .append(true)
            .open(d.0.join(JOURNAL))
            .unwrap();
        f.write_all(&[14, 0, 0, 0, 0xde, 0xad]).unwrap();
        drop(f);
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 1), b"after-recovery".into(), false).unwrap();
        }
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert_eq!(s.fragment_count(), 2);
        assert_eq!(s.read(fid(1, 1), 0, 14).unwrap(), b"after-recovery");
    }

    #[test]
    fn missing_slot_file_for_mapped_fragment_is_corruption() {
        let d = TempDir::new("missing");
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 0), b"data".into(), false).unwrap();
        }
        fs::remove_file(FileStore::slot_path(&d.0, fid(1, 0))).unwrap();
        let err = FileStore::open_with(&d.0, 0, false).unwrap_err();
        assert!(matches!(err, SwarmError::Corrupt(_)), "{err}");
    }

    #[test]
    fn journal_compaction_preserves_state() {
        let d = TempDir::new("compact");
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        for i in 0..50 {
            s.store(
                fid(2, i),
                format!("frag{i}").into_bytes().into(),
                i % 7 == 0,
            )
            .unwrap();
        }
        for i in 0..25 {
            s.delete(fid(2, i * 2)).unwrap();
        }
        s.compact_journal().unwrap();
        // Still queryable in place…
        assert_eq!(s.fragment_count(), 25);
        drop(s);
        // …and after reopen.
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert_eq!(s.fragment_count(), 25);
        assert_eq!(s.read(fid(2, 1), 0, 5).unwrap(), b"frag1");
        assert!(s.read(fid(2, 0), 0, 1).is_err());
        // Marked index survives: fids 7,21,35,49 marked & odd (not deleted);
        // the newest odd multiple of 7 below 50 is 49.
        assert_eq!(s.last_marked(ClientId::new(2)), Some(fid(2, 49)));
    }

    /// Regression test (tmp-sweep fix): stale `tmp/` entries planted by a
    /// crash mid-store — whatever their name, including the per-attempt
    /// `<fid>.<nonce>` form of a committed fragment — are deleted at open
    /// and never disturb the committed data.
    #[test]
    fn tmp_leftovers_are_cleaned() {
        let d = TempDir::new("tmp");
        {
            let s = FileStore::open_with(&d.0, 0, false).unwrap();
            s.store(fid(1, 0), b"kept".into(), false).unwrap();
        }
        let junk = d.0.join(TMP).join("deadbeef");
        let staged = d.0.join(TMP).join(format!("{:016x}.3", fid(1, 0).raw()));
        fs::write(&junk, b"junk").unwrap();
        fs::write(&staged, b"half-written").unwrap();
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert!(!junk.exists());
        assert!(!staged.exists());
        assert_eq!(s.read(fid(1, 0), 0, 4).unwrap(), b"kept");
    }

    /// Group commit batches concurrent appends: far fewer journal fsyncs
    /// than stores, and every acked store survives reopen.
    #[test]
    fn group_commit_batches_concurrent_stores() {
        let d = TempDir::new("batch");
        let s = std::sync::Arc::new(
            FileStore::open_with_durability(&d.0, 0, Durability::Group(Duration::from_millis(5)))
                .unwrap(),
        );
        let threads: u32 = 8;
        let per: u64 = 4;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads as usize));
        let mut handles = Vec::new();
        for t in 0..threads {
            let s = s.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per {
                    s.store(fid(t, i), vec![t as u8; 128].into(), false)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stores = threads as u64 * per;
        assert!(
            s.journal_fsyncs() < stores,
            "expected batching: {} fsyncs for {stores} stores",
            s.journal_fsyncs()
        );
        assert_eq!(s.journal_batches(), s.journal_fsyncs());
        drop(s);
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        assert_eq!(s.fragment_count(), stores);
    }

    /// A store serialized against a concurrent delete of the same FID
    /// must either land after the delete or be refused — never have its
    /// freshly renamed slot file unlinked by the delete's tail.
    #[test]
    fn store_during_delete_of_same_fid_is_refused() {
        let d = TempDir::new("storedel");
        let s = FileStore::open_with(&d.0, 0, false).unwrap();
        s.store(fid(1, 0), b"old".into(), false).unwrap();
        {
            // Pin the FID in `deleting` as the journal append would.
            s.index.lock().deleting.insert(fid(1, 0));
            s.index.lock().remove_fragment(fid(1, 0));
            let err = s.store(fid(1, 0), b"new".into(), false).unwrap_err();
            assert!(matches!(err, SwarmError::FragmentExists(_)), "{err}");
            s.index.lock().deleting.remove(&fid(1, 0));
        }
    }
}
