//! The Swarm storage server (§2.3 of the paper).
//!
//! "A Swarm storage server is merely a repository for log fragments" — it
//! stores opaque fragments keyed by FID, serves byte-range reads, deletes
//! fragments when the cleaner reclaims their stripe, preallocates slots,
//! tracks *marked* fragments for client crash recovery, and enforces ACLs
//! on byte ranges. It never interprets fragment contents and never talks
//! to other servers; all intelligence lives in the clients.
//!
//! Layout of this crate:
//!
//! * [`FragmentStore`] — the slot-oriented persistence abstraction
//!   ("the server divides its disk(s) into fragment-sized slots", §3.2).
//! * [`MemStore`] — in-memory store for tests and benchmarks.
//! * [`FileStore`] — durable store: one file per fragment plus a journaled
//!   fragment map, with atomic store semantics (§2.3.1: "all storage
//!   server operations are atomic").
//! * [`AclDb`] — ACL database indexed by AID (§2.3.2).
//! * [`StorageServer`] — ties the pieces together and implements
//!   [`swarm_net::RequestHandler`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod filestore;
pub mod memstore;
pub mod server;
pub mod store;

pub use acl::AclDb;
pub use filestore::{CrashPoint, Durability, FileStore};
pub use memstore::MemStore;
pub use server::StorageServer;
pub use store::{FragmentMeta, FragmentStore};
