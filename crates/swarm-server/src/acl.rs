//! Access control lists (§2.3.2).
//!
//! "The server maintains a database of ACLs, indexed by an ACL ID (AID).
//! … When a fragment is stored each non-overlapping byte range can be
//! assigned an AID. Subsequent accesses to a byte range will only be
//! permitted if the requesting client is a member of the ACL."
//!
//! Bytes not covered by any range are world-accessible, and the reserved
//! [`Aid::WORLD`] ACL admits every client. Once stored, a range's AID
//! cannot change — permissions change by changing ACL membership, which is
//! exactly the paper's mechanism for adding a new client with the same
//! privileges as existing ones.

use std::collections::{BTreeMap, HashSet};

use parking_lot::RwLock;
use swarm_net::StoreRange;
use swarm_types::{Aid, ClientId, FragmentId, Result, SwarmError};

/// The per-server ACL database plus per-fragment protected-range table.
#[derive(Debug, Default)]
pub struct AclDb {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    acls: BTreeMap<Aid, HashSet<ClientId>>,
    ranges: BTreeMap<FragmentId, Vec<StoreRange>>,
    next_aid: u32,
}

impl AclDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        AclDb {
            inner: RwLock::new(Inner {
                acls: BTreeMap::new(),
                ranges: BTreeMap::new(),
                next_aid: 1, // 0 is Aid::WORLD
            }),
        }
    }

    /// Creates an ACL with the given members, returning its new id.
    pub fn create(&self, members: impl IntoIterator<Item = ClientId>) -> Aid {
        let mut inner = self.inner.write();
        let aid = Aid::new(inner.next_aid);
        inner.next_aid += 1;
        inner.acls.insert(aid, members.into_iter().collect());
        aid
    }

    /// Adds and removes members of an existing ACL.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::AclNotFound`] for an unknown id, and
    /// [`SwarmError::InvalidArgument`] for [`Aid::WORLD`], which is
    /// immutable.
    pub fn modify(
        &self,
        aid: Aid,
        add: impl IntoIterator<Item = ClientId>,
        remove: impl IntoIterator<Item = ClientId>,
    ) -> Result<()> {
        if aid == Aid::WORLD {
            return Err(SwarmError::invalid("the world ACL is immutable"));
        }
        let mut inner = self.inner.write();
        let members = inner
            .acls
            .get_mut(&aid)
            .ok_or(SwarmError::AclNotFound(aid))?;
        for c in add {
            members.insert(c);
        }
        for c in remove {
            members.remove(&c);
        }
        Ok(())
    }

    /// Deletes an ACL. Ranges that reference it become inaccessible (a
    /// deliberate fail-closed choice).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::AclNotFound`] for an unknown id and
    /// [`SwarmError::InvalidArgument`] for [`Aid::WORLD`].
    pub fn delete(&self, aid: Aid) -> Result<()> {
        if aid == Aid::WORLD {
            return Err(SwarmError::invalid("the world ACL cannot be deleted"));
        }
        let mut inner = self.inner.write();
        inner
            .acls
            .remove(&aid)
            .map(|_| ())
            .ok_or(SwarmError::AclNotFound(aid))
    }

    /// Is `client` a member of `aid`?
    ///
    /// [`Aid::WORLD`] admits everyone; a deleted/unknown ACL admits no one.
    pub fn is_member(&self, aid: Aid, client: ClientId) -> bool {
        if aid == Aid::WORLD {
            return true;
        }
        self.inner
            .read()
            .acls
            .get(&aid)
            .is_some_and(|m| m.contains(&client))
    }

    /// Records the protected ranges supplied with a fragment store,
    /// validating that they are non-overlapping (the paper requires
    /// "non-overlapping byte range\[s\]") and reference known ACLs.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] on overlap and
    /// [`SwarmError::AclNotFound`] for ranges referencing unknown ACLs.
    pub fn attach_ranges(&self, fid: FragmentId, mut ranges: Vec<StoreRange>) -> Result<()> {
        if ranges.is_empty() {
            return Ok(());
        }
        ranges.sort_by_key(|r| r.offset);
        for pair in ranges.windows(2) {
            if pair[0].offset + pair[0].len > pair[1].offset {
                return Err(SwarmError::invalid(format!(
                    "overlapping protected ranges at offsets {} and {}",
                    pair[0].offset, pair[1].offset
                )));
            }
        }
        let inner = self.inner.read();
        for r in &ranges {
            if r.aid != Aid::WORLD && !inner.acls.contains_key(&r.aid) {
                return Err(SwarmError::AclNotFound(r.aid));
            }
        }
        drop(inner);
        self.inner.write().ranges.insert(fid, ranges);
        Ok(())
    }

    /// Forgets the ranges of a deleted fragment.
    pub fn detach_ranges(&self, fid: FragmentId) {
        self.inner.write().ranges.remove(&fid);
    }

    /// Checks that `client` may access `[offset, offset+len)` of `fid`.
    ///
    /// Every protected range overlapping the request must admit the
    /// client; unprotected bytes are world-accessible.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::AccessDenied`] naming the denying ACL.
    pub fn check(
        &self,
        fid: FragmentId,
        offset: u32,
        len: u32,
        client: ClientId,
        op: &'static str,
    ) -> Result<()> {
        let inner = self.inner.read();
        let Some(ranges) = inner.ranges.get(&fid) else {
            return Ok(());
        };
        let req_end = offset.saturating_add(len);
        for r in ranges {
            let r_end = r.offset + r.len;
            let overlaps = r.offset < req_end && offset < r_end;
            if !overlaps || r.aid == Aid::WORLD {
                continue;
            }
            let admitted = inner.acls.get(&r.aid).is_some_and(|m| m.contains(&client));
            if !admitted {
                return Err(SwarmError::AccessDenied { aid: r.aid, op });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(s: u64) -> FragmentId {
        FragmentId::new(ClientId::new(1), s)
    }

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }

    #[test]
    fn create_and_membership() {
        let db = AclDb::new();
        let aid = db.create([c(1), c(2)]);
        assert!(db.is_member(aid, c(1)));
        assert!(db.is_member(aid, c(2)));
        assert!(!db.is_member(aid, c(3)));
    }

    #[test]
    fn world_admits_everyone_and_is_immutable() {
        let db = AclDb::new();
        assert!(db.is_member(Aid::WORLD, c(999)));
        assert!(db.modify(Aid::WORLD, [c(1)], []).is_err());
        assert!(db.delete(Aid::WORLD).is_err());
    }

    #[test]
    fn modify_changes_membership() {
        let db = AclDb::new();
        let aid = db.create([c(1)]);
        db.modify(aid, [c(2)], [c(1)]).unwrap();
        assert!(!db.is_member(aid, c(1)));
        assert!(db.is_member(aid, c(2)));
    }

    #[test]
    fn adding_a_client_grants_access_to_existing_data() {
        // The paper's motivating scenario: add a client to existing ACLs
        // and all data protected by them becomes accessible.
        let db = AclDb::new();
        let aid = db.create([c(1)]);
        db.attach_ranges(
            fid(0),
            vec![StoreRange {
                offset: 0,
                len: 100,
                aid,
            }],
        )
        .unwrap();
        assert!(db.check(fid(0), 0, 10, c(9), "read").is_err());
        db.modify(aid, [c(9)], []).unwrap();
        db.check(fid(0), 0, 10, c(9), "read").unwrap();
    }

    #[test]
    fn unprotected_bytes_are_world_readable() {
        let db = AclDb::new();
        let aid = db.create([c(1)]);
        db.attach_ranges(
            fid(0),
            vec![StoreRange {
                offset: 100,
                len: 50,
                aid,
            }],
        )
        .unwrap();
        // [0,100) unprotected.
        db.check(fid(0), 0, 100, c(9), "read").unwrap();
        // Overlapping the protected range denies.
        assert!(db.check(fid(0), 90, 20, c(9), "read").is_err());
        // Member passes.
        db.check(fid(0), 90, 20, c(1), "read").unwrap();
    }

    #[test]
    fn fragment_without_ranges_is_open() {
        let db = AclDb::new();
        db.check(fid(3), 0, u32::MAX, c(42), "read").unwrap();
    }

    #[test]
    fn overlapping_ranges_rejected() {
        let db = AclDb::new();
        let aid = db.create([c(1)]);
        let err = db
            .attach_ranges(
                fid(0),
                vec![
                    StoreRange {
                        offset: 0,
                        len: 10,
                        aid,
                    },
                    StoreRange {
                        offset: 5,
                        len: 10,
                        aid,
                    },
                ],
            )
            .unwrap_err();
        assert!(matches!(err, SwarmError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn unknown_acl_in_range_rejected() {
        let db = AclDb::new();
        let err = db
            .attach_ranges(
                fid(0),
                vec![StoreRange {
                    offset: 0,
                    len: 10,
                    aid: Aid::new(77),
                }],
            )
            .unwrap_err();
        assert!(matches!(err, SwarmError::AclNotFound(_)), "{err}");
    }

    #[test]
    fn deleted_acl_fails_closed() {
        let db = AclDb::new();
        let aid = db.create([c(1)]);
        db.attach_ranges(
            fid(0),
            vec![StoreRange {
                offset: 0,
                len: 10,
                aid,
            }],
        )
        .unwrap();
        db.delete(aid).unwrap();
        // Even the former member is now denied.
        assert!(db.check(fid(0), 0, 10, c(1), "read").is_err());
    }

    #[test]
    fn detach_forgets_ranges() {
        let db = AclDb::new();
        let aid = db.create([c(1)]);
        db.attach_ranges(
            fid(0),
            vec![StoreRange {
                offset: 0,
                len: 10,
                aid,
            }],
        )
        .unwrap();
        db.detach_ranges(fid(0));
        db.check(fid(0), 0, 10, c(9), "read").unwrap();
    }

    #[test]
    fn distinct_aids_assigned() {
        let db = AclDb::new();
        let a = db.create([]);
        let b = db.create([]);
        assert_ne!(a, b);
        assert_ne!(a, Aid::WORLD);
    }
}
