//! In-memory [`FragmentStore`].
//!
//! Used by tests, examples, and throughput benchmarks where disk latency
//! would only add noise. Shares all semantics with [`crate::FileStore`]
//! (both pass the same conformance suite).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use parking_lot::Mutex;
use swarm_types::{BlockAddr, Bytes, ClientId, FragmentId, Result, SwarmError};

use crate::store::{FragmentMeta, FragmentStore};

#[derive(Default)]
struct Inner {
    fragments: BTreeMap<FragmentId, (Bytes, bool)>,
    prealloc: HashSet<FragmentId>,
    marked: HashMap<ClientId, BTreeSet<FragmentId>>,
    bytes: u64,
}

/// A heap-backed fragment store.
pub struct MemStore {
    inner: Mutex<Inner>,
    capacity: u64,
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStore {
    /// Creates an unbounded store.
    pub fn new() -> Self {
        MemStore {
            inner: Mutex::new(Inner::default()),
            capacity: 0,
        }
    }

    /// Creates a store with a fixed number of fragment slots, like a
    /// prototype server's fragment-sized disk slots (§3.2).
    pub fn with_capacity(slots: u64) -> Self {
        MemStore {
            inner: Mutex::new(Inner::default()),
            capacity: slots,
        }
    }

    fn slots_used(inner: &Inner) -> u64 {
        inner.fragments.len() as u64 + inner.prealloc.len() as u64
    }
}

impl FragmentStore for MemStore {
    fn store(&self, fid: FragmentId, data: Bytes, marked: bool) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.fragments.contains_key(&fid) {
            return Err(SwarmError::FragmentExists(fid));
        }
        let had_slot = inner.prealloc.remove(&fid);
        if !had_slot && self.capacity != 0 && Self::slots_used(&inner) >= self.capacity {
            return Err(SwarmError::OutOfSpace(format!(
                "all {} slots in use",
                self.capacity
            )));
        }
        // Keep the shared view as-is: on the TCP path this aliases the
        // network frame the fragment arrived in (no copy).
        inner.bytes += data.len() as u64;
        inner.fragments.insert(fid, (data, marked));
        if marked {
            inner.marked.entry(fid.client()).or_default().insert(fid);
        }
        Ok(())
    }

    fn read(&self, fid: FragmentId, offset: u32, len: u32) -> Result<Bytes> {
        let inner = self.inner.lock();
        let (data, _) = inner
            .fragments
            .get(&fid)
            .ok_or(SwarmError::FragmentNotFound(fid))?;
        let end = offset as usize + len as usize;
        if end > data.len() || offset as usize > data.len() {
            return Err(SwarmError::RangeOutOfBounds {
                addr: BlockAddr::new(fid, offset, len),
                stored: data.len() as u32,
            });
        }
        Ok(data.slice(offset as usize..end))
    }

    fn delete(&self, fid: FragmentId) -> Result<()> {
        let mut inner = self.inner.lock();
        let (data, marked) = inner
            .fragments
            .remove(&fid)
            .ok_or(SwarmError::FragmentNotFound(fid))?;
        inner.bytes -= data.len() as u64;
        if marked {
            if let Some(set) = inner.marked.get_mut(&fid.client()) {
                set.remove(&fid);
            }
        }
        Ok(())
    }

    fn preallocate(&self, fid: FragmentId, _len: u32) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.fragments.contains_key(&fid) || inner.prealloc.contains(&fid) {
            return Ok(());
        }
        if self.capacity != 0 && Self::slots_used(&inner) >= self.capacity {
            return Err(SwarmError::OutOfSpace(format!(
                "all {} slots in use",
                self.capacity
            )));
        }
        inner.prealloc.insert(fid);
        Ok(())
    }

    fn meta(&self, fid: FragmentId) -> Option<FragmentMeta> {
        let inner = self.inner.lock();
        inner
            .fragments
            .get(&fid)
            .map(|(data, marked)| FragmentMeta {
                len: data.len() as u32,
                marked: *marked,
            })
    }

    fn last_marked(&self, client: ClientId) -> Option<FragmentId> {
        let inner = self.inner.lock();
        inner
            .marked
            .get(&client)
            .and_then(|set| set.iter().next_back().copied())
    }

    fn list(&self) -> Vec<FragmentId> {
        self.inner.lock().fragments.keys().copied().collect()
    }

    fn fragment_count(&self) -> u64 {
        self.inner.lock().fragments.len() as u64
    }

    fn byte_count(&self) -> u64 {
        self.inner.lock().bytes
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::conformance;

    #[test]
    fn conformance_store_read_roundtrip() {
        conformance::store_read_roundtrip(&MemStore::new());
    }

    #[test]
    fn conformance_double_store_rejected() {
        conformance::double_store_rejected(&MemStore::new());
    }

    #[test]
    fn conformance_missing_fragment_errors() {
        conformance::missing_fragment_errors(&MemStore::new());
    }

    #[test]
    fn conformance_out_of_range_read_errors() {
        conformance::out_of_range_read_errors(&MemStore::new());
    }

    #[test]
    fn conformance_delete_frees_fragment() {
        conformance::delete_frees_fragment(&MemStore::new());
    }

    #[test]
    fn conformance_marked_tracking() {
        conformance::marked_tracking(&MemStore::new());
    }

    #[test]
    fn conformance_capacity_enforced() {
        conformance::capacity_enforced(&MemStore::with_capacity(2));
    }

    #[test]
    fn conformance_accounting() {
        conformance::accounting(&MemStore::new());
    }

    #[test]
    fn conformance_concurrent_store_read_delete() {
        conformance::concurrent_store_read_delete(&MemStore::new());
    }

    #[test]
    fn preallocate_is_idempotent() {
        let s = MemStore::with_capacity(1);
        let fid = FragmentId::new(ClientId::new(0), 0);
        s.preallocate(fid, 10).unwrap();
        s.preallocate(fid, 10).unwrap();
        s.store(fid, b"x".into(), false).unwrap();
        s.preallocate(fid, 10).unwrap(); // already stored: no-op
    }
}
