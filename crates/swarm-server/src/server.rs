//! The storage server request handler: glues a [`FragmentStore`] and an
//! [`AclDb`] behind the wire protocol.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use swarm_net::{BatchReply, Request, RequestHandler, Response, ServerStats};
use swarm_types::{Bytes, ClientId, FragmentId, Result, ServerId, SwarmError};

use crate::acl::AclDb;
use crate::store::FragmentStore;

struct ServerMetrics {
    stores: swarm_metrics::Counter,
    store_bytes: swarm_metrics::Counter,
    reads: swarm_metrics::Counter,
    deletes: swarm_metrics::Counter,
    cache_hits: swarm_metrics::Counter,
    read_cache_hits: swarm_metrics::Counter,
    read_cache_misses: swarm_metrics::Counter,
    read_cache_bypass: swarm_metrics::Counter,
    errors: swarm_metrics::Counter,
    store_us: swarm_metrics::Histogram,
    read_us: swarm_metrics::Histogram,
}

fn metrics() -> &'static ServerMetrics {
    static M: std::sync::OnceLock<ServerMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| ServerMetrics {
        stores: swarm_metrics::counter("server.stores"),
        store_bytes: swarm_metrics::counter("server.store_bytes"),
        reads: swarm_metrics::counter("server.reads"),
        deletes: swarm_metrics::counter("server.deletes"),
        cache_hits: swarm_metrics::counter("server.cache_hits"),
        read_cache_hits: swarm_metrics::counter("server.read_cache_hits"),
        read_cache_misses: swarm_metrics::counter("server.read_cache_misses"),
        read_cache_bypass: swarm_metrics::counter("server.read_cache_bypass"),
        errors: swarm_metrics::counter("server.errors"),
        store_us: swarm_metrics::histogram("server.store_us"),
        read_us: swarm_metrics::histogram("server.read_us"),
    })
}

/// A complete Swarm storage server.
///
/// Generic over its [`FragmentStore`] so the identical request-handling
/// logic (ACL checks, marked-fragment queries, statistics) runs in-memory,
/// on disk, over TCP, or inside the simulator.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use swarm_server::{MemStore, StorageServer};
/// use swarm_net::{Request, RequestHandler, Response};
/// use swarm_types::{ClientId, FragmentId, ServerId};
///
/// let server = StorageServer::new(ServerId::new(0), MemStore::new());
/// let fid = FragmentId::new(ClientId::new(1), 0);
/// let resp = server.handle(ClientId::new(1), Request::Store {
///     fid, marked: false, ranges: vec![], data: vec![1, 2, 3].into(),
/// });
/// assert_eq!(resp, Response::Ok);
/// ```
pub struct StorageServer<S> {
    id: ServerId,
    store: S,
    acls: AclDb,
    stores: AtomicU64,
    reads: AtomicU64,
    deletes: AtomicU64,
    cache_hits: AtomicU64,
    /// Optional in-memory fragment cache (sharded LRU). The paper's
    /// prototype had none ("the prototype servers do not cache log
    /// fragments in memory", §3.4) — this is the extension it names.
    cache: Option<ShardedCache>,
}

/// Number of independent LRU shards in the read cache. Each shard has
/// its own lock, so concurrent reads from the worker pool only contend
/// when they land on the same shard — the same bookkeeping-only locking
/// discipline as the FileStore index.
const CACHE_SHARDS: usize = 8;

/// A fragment cache split into [`CACHE_SHARDS`] independently-locked LRU
/// shards keyed by a hash of the fragment id. The lock only guards
/// bookkeeping (map + recency index); the cached payloads are shared
/// [`Bytes`], so holding a shard lock never copies fragment data.
struct ShardedCache {
    shards: Vec<Mutex<CacheShard>>,
    hits: Vec<AtomicU64>,
    misses: Vec<AtomicU64>,
    bypasses: Vec<AtomicU64>,
}

/// One LRU shard: recency is a monotonic stamp per entry plus a
/// stamp→fid index, so get-refresh and evict-oldest are both O(log n).
struct CacheShard {
    capacity: usize,
    clock: u64,
    map: HashMap<FragmentId, (Bytes, u64)>,
    by_age: BTreeMap<u64, FragmentId>,
}

impl CacheShard {
    fn touch(&mut self, fid: FragmentId) -> Option<Bytes> {
        let next = self.clock;
        let (bytes, stamp) = self.map.get_mut(&fid)?;
        self.by_age.remove(&*stamp);
        *stamp = next;
        let out = bytes.share();
        self.by_age.insert(next, fid);
        self.clock += 1;
        Some(out)
    }
}

impl ShardedCache {
    fn new(capacity: usize) -> Self {
        // Distribute the budget across shards, rounding up so every
        // shard can hold at least one fragment; the effective total is
        // therefore approximate (within CACHE_SHARDS of the request).
        let per_shard = capacity.div_ceil(CACHE_SHARDS).max(1);
        ShardedCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| {
                    Mutex::new(CacheShard {
                        capacity: per_shard,
                        clock: 0,
                        map: HashMap::new(),
                        by_age: BTreeMap::new(),
                    })
                })
                .collect(),
            hits: (0..CACHE_SHARDS).map(|_| AtomicU64::new(0)).collect(),
            misses: (0..CACHE_SHARDS).map(|_| AtomicU64::new(0)).collect(),
            bypasses: (0..CACHE_SHARDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Which shard a fragment lives in: a Fibonacci-hash mix of the raw
    /// fid so sequential fragment ids still spread across shards.
    fn shard_of(fid: FragmentId) -> usize {
        let mixed = fid.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed >> 56) as usize % CACHE_SHARDS
    }

    /// LRU probe: a hit refreshes the entry's recency.
    fn get(&self, fid: FragmentId) -> Option<Bytes> {
        let shard = Self::shard_of(fid);
        let got = self.shards[shard].lock().touch(fid);
        match &got {
            Some(_) => {
                self.hits[shard].fetch_add(1, Ordering::Relaxed);
                metrics().read_cache_hits.inc();
            }
            None => {
                self.misses[shard].fetch_add(1, Ordering::Relaxed);
                metrics().read_cache_misses.inc();
            }
        }
        got
    }

    /// Probe that records a hit but never a miss: the reactor fast path
    /// declines on a miss and the worker-path probe that follows records
    /// it, so one logical read counts at most one miss.
    fn get_resident(&self, fid: FragmentId) -> Option<Bytes> {
        let shard = Self::shard_of(fid);
        let got = self.shards[shard].lock().touch(fid);
        if got.is_some() {
            self.hits[shard].fetch_add(1, Ordering::Relaxed);
            metrics().read_cache_hits.inc();
        }
        got
    }

    /// Like [`get`], but a miss counts against the bypass counter: the
    /// caller (a `ReadBatch` sweep) will not admit what it fetches.
    fn get_bypass(&self, fid: FragmentId) -> Option<Bytes> {
        let shard = Self::shard_of(fid);
        let got = self.shards[shard].lock().touch(fid);
        match &got {
            Some(_) => {
                self.hits[shard].fetch_add(1, Ordering::Relaxed);
                metrics().read_cache_hits.inc();
            }
            None => {
                self.bypasses[shard].fetch_add(1, Ordering::Relaxed);
                metrics().read_cache_bypass.inc();
            }
        }
        got
    }

    fn insert(&self, fid: FragmentId, bytes: Bytes) {
        let mut shard = self.shards[Self::shard_of(fid)].lock();
        if let Some((slot, stamp)) = shard.map.get_mut(&fid) {
            // Replace in place (re-store of a live fid): new bytes, new
            // recency.
            *slot = bytes;
            let old = *stamp;
            let next = shard.clock;
            shard.clock += 1;
            shard.map.get_mut(&fid).expect("present").1 = next;
            shard.by_age.remove(&old);
            shard.by_age.insert(next, fid);
            return;
        }
        while shard.map.len() >= shard.capacity {
            let Some((&oldest, &victim)) = shard.by_age.iter().next() else {
                break;
            };
            shard.by_age.remove(&oldest);
            shard.map.remove(&victim);
        }
        let next = shard.clock;
        shard.clock += 1;
        shard.map.insert(fid, (bytes, next));
        shard.by_age.insert(next, fid);
    }

    fn remove(&self, fid: FragmentId) {
        let mut shard = self.shards[Self::shard_of(fid)].lock();
        if let Some((_, stamp)) = shard.map.remove(&fid) {
            shard.by_age.remove(&stamp);
        }
    }

    /// Per-shard `(hits, misses, bypasses)` counters.
    fn shard_stats(&self) -> Vec<(u64, u64, u64)> {
        (0..CACHE_SHARDS)
            .map(|i| {
                (
                    self.hits[i].load(Ordering::Relaxed),
                    self.misses[i].load(Ordering::Relaxed),
                    self.bypasses[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }
}

impl<S: FragmentStore> StorageServer<S> {
    /// Creates a server with an empty ACL database.
    pub fn new(id: ServerId, store: S) -> Self {
        StorageServer {
            id,
            store,
            acls: AclDb::new(),
            stores: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache: None,
        }
    }

    /// Enables an in-memory read cache of roughly `fragments` recently
    /// stored or read fragments — the server-side caching §3.4 names as
    /// the optimization the prototype lacked. The budget is spread over
    /// [`CACHE_SHARDS`] independently-locked LRU shards (each at least
    /// one fragment deep), so the effective capacity is approximate.
    pub fn with_read_cache(mut self, fragments: usize) -> Self {
        if fragments > 0 {
            self.cache = Some(ShardedCache::new(fragments));
        }
        self
    }

    /// Cache hits served so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Per-shard read-cache `(hits, misses, bypasses)` counters; empty
    /// when the cache is disabled.
    pub fn read_cache_shard_stats(&self) -> Vec<(u64, u64, u64)> {
        self.cache
            .as_ref()
            .map(ShardedCache::shard_stats)
            .unwrap_or_default()
    }

    /// Convenience: wraps the server in an [`Arc`] for sharing with
    /// transports.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Direct access to the backing store (used by tests and tools).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Direct access to the ACL database.
    pub fn acls(&self) -> &AclDb {
        &self.acls
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            fragments: self.store.fragment_count(),
            bytes: self.store.byte_count(),
            stores: self.stores.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            capacity_fragments: self.store.capacity(),
        }
    }

    fn dispatch(&self, client: ClientId, request: Request) -> Result<Response> {
        match request {
            Request::Store {
                fid,
                marked,
                ranges,
                data,
            } => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                let m = metrics();
                m.stores.inc();
                m.store_bytes.add(data.len() as u64);
                let _span = m.store_us.span("server.store");
                // Validate ranges (and record them) before committing the
                // bytes so a bad request stores nothing.
                self.acls.attach_ranges(fid, ranges)?;
                // `share()` is an O(1) refcount bump; the store and the
                // cache alias the same buffer (on TCP, the network frame).
                if let Err(e) = self.store.store(fid, data.share(), marked) {
                    self.acls.detach_ranges(fid);
                    return Err(e);
                }
                if let Some(cache) = &self.cache {
                    cache.insert(fid, data);
                }
                Ok(Response::Ok)
            }
            Request::Read { fid, offset, len } => {
                self.reads.fetch_add(1, Ordering::Relaxed);
                let m = metrics();
                m.reads.inc();
                let _span = m.read_us.span("server.read");
                self.acls.check(fid, offset, len, client, "read")?;
                if let Some(cache) = &self.cache {
                    if let Some(bytes) = cache.get(fid) {
                        let end = offset as usize + len as usize;
                        if end <= bytes.len() {
                            self.cache_hits.fetch_add(1, Ordering::Relaxed);
                            m.cache_hits.inc();
                            return Ok(Response::Data(bytes.slice(offset as usize..end)));
                        }
                    }
                    let data = self.store.read(fid, offset, len)?;
                    // Admit whole-fragment reads — the client's normal
                    // unit — so a re-read working set is served from
                    // memory. Partial reads are not admitted: the cache
                    // holds whole fragments only.
                    if offset == 0
                        && self
                            .store
                            .meta(fid)
                            .is_some_and(|meta| meta.len as usize == data.len())
                    {
                        cache.insert(fid, data.share());
                    }
                    return Ok(Response::Data(data));
                }
                let data = self.store.read(fid, offset, len)?;
                Ok(Response::Data(data))
            }
            Request::ReadBatch { reads } => {
                let m = metrics();
                let _span = m.read_us.span("server.read_batch");
                self.reads.fetch_add(reads.len() as u64, Ordering::Relaxed);
                m.reads.add(reads.len() as u64);
                // One worker job serves the whole sweep. Each read still
                // probes the cache (hits refresh recency), but misses are
                // NOT admitted — a scan must not evict the hot set.
                let results = reads
                    .into_iter()
                    .map(|spec| {
                        self.acls
                            .check(spec.fid, spec.offset, spec.len, client, "read")?;
                        if let Some(cache) = &self.cache {
                            if let Some(bytes) = cache.get_bypass(spec.fid) {
                                let end = spec.offset as usize + spec.len as usize;
                                if end <= bytes.len() {
                                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                                    m.cache_hits.inc();
                                    return Ok(bytes.slice(spec.offset as usize..end));
                                }
                            }
                        }
                        self.store.read(spec.fid, spec.offset, spec.len)
                    })
                    .collect();
                Ok(Response::Batch(BatchReply::from_results(results)))
            }
            Request::Delete { fid } => {
                self.deletes.fetch_add(1, Ordering::Relaxed);
                metrics().deletes.inc();
                self.acls.check(fid, 0, u32::MAX, client, "delete")?;
                self.store.delete(fid)?;
                self.acls.detach_ranges(fid);
                if let Some(cache) = &self.cache {
                    cache.remove(fid);
                }
                Ok(Response::Ok)
            }
            Request::Preallocate { fid, len } => {
                self.store.preallocate(fid, len)?;
                Ok(Response::Ok)
            }
            Request::LastMarked => Ok(Response::LastMarked(self.store.last_marked(client))),
            Request::Locate { fid, header_len } => match self.store.meta(fid) {
                None => Ok(Response::Located(None)),
                Some(meta) => {
                    let take = header_len.min(meta.len);
                    self.acls.check(fid, 0, take, client, "locate")?;
                    let header = self.store.read(fid, 0, take)?;
                    Ok(Response::Located(Some(header)))
                }
            },
            Request::AclCreate { members } => Ok(Response::AclCreated(self.acls.create(members))),
            Request::AclModify { aid, add, remove } => {
                self.acls.modify(aid, add, remove)?;
                Ok(Response::Ok)
            }
            Request::AclDelete { aid } => {
                self.acls.delete(aid)?;
                Ok(Response::Ok)
            }
            Request::Stat => Ok(Response::Stats(self.stats())),
            Request::Ping => Ok(Response::Ok),
            Request::Metrics => Ok(Response::Metrics(swarm_metrics::snapshot().to_json())),
            other => Err(SwarmError::protocol(format!(
                "unsupported request {other:?}"
            ))),
        }
    }
}

impl<S: FragmentStore> RequestHandler for StorageServer<S> {
    fn handle(&self, client: ClientId, request: Request) -> Response {
        // A panic anywhere in request handling must degrade to an error
        // response, not kill the serving thread: one malformed or hostile
        // request may cost its sender an error, never the server. The
        // stores use parking_lot locks (no poisoning), so catching here
        // cannot wedge later requests.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.dispatch(client, request)
        }));
        match result {
            Ok(Ok(resp)) => resp,
            Ok(Err(e)) => {
                metrics().errors.inc();
                swarm_metrics::trace!(
                    "server.error",
                    "server {} request from {client} failed: {e}",
                    self.id.raw()
                );
                Response::from_error(&e)
            }
            Err(panic) => {
                metrics().errors.inc();
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                swarm_metrics::trace!(
                    "server.error",
                    "server {} PANIC serving request from {client}: {msg}",
                    self.id.raw()
                );
                Response::from_error(&SwarmError::other(format!("internal server error: {msg}")))
            }
        }
    }

    fn try_handle_fast(&self, client: ClientId, request: &Request) -> Option<Response> {
        // Only a single ranged read of a cache-resident fragment
        // qualifies: everything below is an ACL map probe plus one shard
        // lookup — bounded bookkeeping a reactor thread can afford.
        // Anything else (including a batch, whose misses touch the
        // store) takes the worker path.
        let Request::Read { fid, offset, len } = *request else {
            return None;
        };
        let cache = self.cache.as_ref()?;
        let m = metrics();
        if let Err(e) = self.acls.check(fid, offset, len, client, "read") {
            self.reads.fetch_add(1, Ordering::Relaxed);
            m.reads.inc();
            m.errors.inc();
            return Some(Response::from_error(&e));
        }
        let bytes = cache.get_resident(fid)?;
        let end = offset as usize + len as usize;
        if end > bytes.len() {
            // Short entry for this range: let the store rule on bounds.
            return None;
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        m.reads.inc();
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        m.cache_hits.inc();
        Some(Response::Data(bytes.slice(offset as usize..end)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memstore::MemStore;
    use swarm_net::StoreRange;
    use swarm_types::{Aid, FragmentId};

    fn server() -> StorageServer<MemStore> {
        StorageServer::new(ServerId::new(0), MemStore::new())
    }

    fn fid(c: u32, s: u64) -> FragmentId {
        FragmentId::new(ClientId::new(c), s)
    }

    /// A store whose every operation panics — stands in for any internal
    /// bug reached through request handling.
    struct PanicStore;

    impl crate::store::FragmentStore for PanicStore {
        fn store(&self, _: FragmentId, _: swarm_types::Bytes, _: bool) -> Result<()> {
            panic!("injected store panic")
        }
        fn read(&self, _: FragmentId, _: u32, _: u32) -> Result<swarm_types::Bytes> {
            panic!("injected read panic")
        }
        fn delete(&self, _: FragmentId) -> Result<()> {
            panic!("injected delete panic")
        }
        fn preallocate(&self, _: FragmentId, _: u32) -> Result<()> {
            panic!("injected preallocate panic")
        }
        fn meta(&self, _: FragmentId) -> Option<crate::store::FragmentMeta> {
            None
        }
        fn last_marked(&self, _: ClientId) -> Option<FragmentId> {
            None
        }
        fn list(&self) -> Vec<FragmentId> {
            Vec::new()
        }
        fn fragment_count(&self) -> u64 {
            0
        }
        fn byte_count(&self) -> u64 {
            0
        }
        fn capacity(&self) -> u64 {
            0
        }
    }

    /// A panic inside request handling must come back as an error
    /// response — never kill the serving thread — and the server must
    /// keep answering afterwards.
    #[test]
    fn panic_in_dispatch_becomes_error_response() {
        let s = StorageServer::new(ServerId::new(0), PanicStore);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let resp = s.handle(
            ClientId::new(1),
            Request::Store {
                fid: fid(1, 0),
                marked: false,
                ranges: vec![],
                data: b"boom".to_vec().into(),
            },
        );
        std::panic::set_hook(prev);
        let err = resp.into_result().unwrap_err();
        assert!(matches!(err, SwarmError::Other(_)), "{err}");
        // Still serving.
        assert_eq!(s.handle(ClientId::new(1), Request::Ping), Response::Ok);
    }

    fn ok(resp: Response) -> Response {
        resp.into_result().expect("expected success")
    }

    #[test]
    fn store_read_delete_cycle() {
        let srv = server();
        let me = ClientId::new(1);
        ok(srv.handle(
            me,
            Request::Store {
                fid: fid(1, 0),
                marked: false,
                ranges: vec![],
                data: b"hello".into(),
            },
        ));
        let resp = ok(srv.handle(
            me,
            Request::Read {
                fid: fid(1, 0),
                offset: 1,
                len: 3,
            },
        ));
        assert_eq!(resp, Response::Data(b"ell".into()));
        ok(srv.handle(me, Request::Delete { fid: fid(1, 0) }));
        let resp = srv.handle(
            me,
            Request::Read {
                fid: fid(1, 0),
                offset: 0,
                len: 1,
            },
        );
        assert!(resp.into_result().is_err());
    }

    #[test]
    fn last_marked_is_per_client() {
        let srv = server();
        for (c, s, m) in [(1, 0, true), (1, 1, false), (2, 5, true), (1, 2, true)] {
            ok(srv.handle(
                ClientId::new(c),
                Request::Store {
                    fid: fid(c, s),
                    marked: m,
                    ranges: vec![],
                    data: vec![0].into(),
                },
            ));
        }
        assert_eq!(
            ok(srv.handle(ClientId::new(1), Request::LastMarked)),
            Response::LastMarked(Some(fid(1, 2)))
        );
        assert_eq!(
            ok(srv.handle(ClientId::new(2), Request::LastMarked)),
            Response::LastMarked(Some(fid(2, 5)))
        );
        assert_eq!(
            ok(srv.handle(ClientId::new(3), Request::LastMarked)),
            Response::LastMarked(None)
        );
    }

    #[test]
    fn locate_returns_fragment_prefix() {
        let srv = server();
        let me = ClientId::new(1);
        ok(srv.handle(
            me,
            Request::Store {
                fid: fid(1, 3),
                marked: false,
                ranges: vec![],
                data: b"headerbody".into(),
            },
        ));
        let resp = ok(srv.handle(
            me,
            Request::Locate {
                fid: fid(1, 3),
                header_len: 6,
            },
        ));
        assert_eq!(resp, Response::Located(Some(b"header".into())));
        // header_len longer than the fragment is clamped, not an error.
        let resp = ok(srv.handle(
            me,
            Request::Locate {
                fid: fid(1, 3),
                header_len: 1000,
            },
        ));
        assert_eq!(resp, Response::Located(Some(b"headerbody".into())));
        let resp = ok(srv.handle(
            me,
            Request::Locate {
                fid: fid(1, 9),
                header_len: 6,
            },
        ));
        assert_eq!(resp, Response::Located(None));
    }

    #[test]
    fn acl_protected_store_and_read() {
        let srv = server();
        let owner = ClientId::new(1);
        let other = ClientId::new(2);
        let aid = match ok(srv.handle(
            owner,
            Request::AclCreate {
                members: vec![owner],
            },
        )) {
            Response::AclCreated(aid) => aid,
            r => panic!("{r:?}"),
        };
        ok(srv.handle(
            owner,
            Request::Store {
                fid: fid(1, 0),
                marked: false,
                ranges: vec![StoreRange {
                    offset: 0,
                    len: 5,
                    aid,
                }],
                data: b"secret+public".into(),
            },
        ));
        // Non-member denied on protected bytes…
        let resp = srv.handle(
            other,
            Request::Read {
                fid: fid(1, 0),
                offset: 0,
                len: 5,
            },
        );
        assert!(matches!(
            resp.into_result(),
            Err(SwarmError::AccessDenied { .. })
        ));
        // …but allowed on unprotected bytes.
        let resp = ok(srv.handle(
            other,
            Request::Read {
                fid: fid(1, 0),
                offset: 7,
                len: 6,
            },
        ));
        assert_eq!(resp, Response::Data(b"public".into()));
        // Granting membership opens the protected range.
        ok(srv.handle(
            owner,
            Request::AclModify {
                aid,
                add: vec![other],
                remove: vec![],
            },
        ));
        ok(srv.handle(
            other,
            Request::Read {
                fid: fid(1, 0),
                offset: 0,
                len: 5,
            },
        ));
    }

    #[test]
    fn failed_store_leaves_no_acl_ranges() {
        let srv = server();
        let me = ClientId::new(1);
        ok(srv.handle(
            me,
            Request::Store {
                fid: fid(1, 0),
                marked: false,
                ranges: vec![],
                data: vec![1].into(),
            },
        ));
        // Second store of same fid fails; its ranges must not take effect.
        let aid = match ok(srv.handle(me, Request::AclCreate { members: vec![] })) {
            Response::AclCreated(aid) => aid,
            r => panic!("{r:?}"),
        };
        let resp = srv.handle(
            me,
            Request::Store {
                fid: fid(1, 0),
                marked: false,
                ranges: vec![StoreRange {
                    offset: 0,
                    len: 1,
                    aid,
                }],
                data: vec![2].into(),
            },
        );
        assert!(resp.into_result().is_err());
        // Anyone can still read the original byte (no lingering ACL).
        ok(srv.handle(
            ClientId::new(9),
            Request::Read {
                fid: fid(1, 0),
                offset: 0,
                len: 1,
            },
        ));
    }

    #[test]
    fn stats_count_operations() {
        let srv = server();
        let me = ClientId::new(1);
        ok(srv.handle(
            me,
            Request::Store {
                fid: fid(1, 0),
                marked: false,
                ranges: vec![],
                data: vec![0; 64].into(),
            },
        ));
        ok(srv.handle(
            me,
            Request::Read {
                fid: fid(1, 0),
                offset: 0,
                len: 8,
            },
        ));
        let stats = match ok(srv.handle(me, Request::Stat)) {
            Response::Stats(s) => s,
            r => panic!("{r:?}"),
        };
        assert_eq!(stats.fragments, 1);
        assert_eq!(stats.bytes, 64);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.reads, 1);
    }

    #[test]
    fn errors_never_panic_the_handler() {
        let srv = server();
        let me = ClientId::new(1);
        // Read of missing fragment, bad ranges, unknown ACL: all must
        // come back as Response::Err.
        let r1 = srv.handle(
            me,
            Request::Read {
                fid: fid(1, 0),
                offset: 0,
                len: 1,
            },
        );
        assert!(matches!(r1, Response::Err { .. }));
        let r2 = srv.handle(
            me,
            Request::AclModify {
                aid: Aid::new(999),
                add: vec![],
                remove: vec![],
            },
        );
        assert!(matches!(r2, Response::Err { .. }));
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use crate::memstore::MemStore;
    use crate::store::FragmentMeta;
    use swarm_types::FragmentId;

    /// Counts reads that actually reach the backing store.
    struct CountingStore {
        inner: MemStore,
        reads: AtomicU64,
    }

    impl FragmentStore for CountingStore {
        fn store(&self, fid: FragmentId, data: Bytes, marked: bool) -> Result<()> {
            self.inner.store(fid, data, marked)
        }
        fn read(&self, fid: FragmentId, offset: u32, len: u32) -> Result<Bytes> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.inner.read(fid, offset, len)
        }
        fn delete(&self, fid: FragmentId) -> Result<()> {
            self.inner.delete(fid)
        }
        fn preallocate(&self, fid: FragmentId, len: u32) -> Result<()> {
            self.inner.preallocate(fid, len)
        }
        fn meta(&self, fid: FragmentId) -> Option<FragmentMeta> {
            self.inner.meta(fid)
        }
        fn last_marked(&self, client: ClientId) -> Option<FragmentId> {
            self.inner.last_marked(client)
        }
        fn list(&self) -> Vec<FragmentId> {
            self.inner.list()
        }
        fn fragment_count(&self) -> u64 {
            self.inner.fragment_count()
        }
        fn byte_count(&self) -> u64 {
            self.inner.byte_count()
        }
        fn capacity(&self) -> u64 {
            self.inner.capacity()
        }
    }

    fn fid(s: u64) -> FragmentId {
        FragmentId::new(ClientId::new(1), s)
    }

    fn counting_server(cache: usize) -> StorageServer<CountingStore> {
        let srv = StorageServer::new(
            ServerId::new(0),
            CountingStore {
                inner: MemStore::new(),
                reads: AtomicU64::new(0),
            },
        );
        if cache > 0 {
            srv.with_read_cache(cache)
        } else {
            srv
        }
    }

    fn store_frag(srv: &StorageServer<CountingStore>, seq: u64, data: &[u8]) {
        srv.handle(
            ClientId::new(1),
            Request::Store {
                fid: fid(seq),
                marked: false,
                ranges: vec![],
                data: data.into(),
            },
        )
        .into_result()
        .unwrap();
    }

    fn read_frag(srv: &StorageServer<CountingStore>, seq: u64, offset: u32, len: u32) -> Response {
        srv.handle(
            ClientId::new(1),
            Request::Read {
                fid: fid(seq),
                offset,
                len,
            },
        )
    }

    #[test]
    fn cached_reads_never_hit_the_disk() {
        let srv = counting_server(4);
        store_frag(&srv, 0, &[7u8; 1024]);
        for _ in 0..10 {
            assert_eq!(
                read_frag(&srv, 0, 100, 16),
                Response::Data(vec![7u8; 16].into())
            );
        }
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 0);
        assert_eq!(srv.cache_hits(), 10);
    }

    #[test]
    fn fast_path_serves_resident_reads_and_declines_misses() {
        let srv = counting_server(4);
        store_frag(&srv, 0, &[9u8; 512]);
        // Resident: answered in place with the requested slice.
        let resp = srv
            .try_handle_fast(
                ClientId::new(1),
                &Request::Read {
                    fid: fid(0),
                    offset: 8,
                    len: 16,
                },
            )
            .expect("resident fragment answers fast");
        assert_eq!(resp, Response::Data(vec![9u8; 16].into()));
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 0);
        // Not resident: declined, and no miss is charged — the worker
        // path that follows the decline records it.
        assert!(srv
            .try_handle_fast(
                ClientId::new(1),
                &Request::Read {
                    fid: fid(99),
                    offset: 0,
                    len: 4,
                },
            )
            .is_none());
        let (hits, misses, _) = srv
            .read_cache_shard_stats()
            .into_iter()
            .fold((0, 0, 0), |a, s| (a.0 + s.0, a.1 + s.1, a.2 + s.2));
        assert_eq!(hits, 1);
        assert_eq!(misses, 0);
        // Anything but a single Read never qualifies.
        assert!(srv
            .try_handle_fast(ClientId::new(1), &Request::LastMarked)
            .is_none());
    }

    #[test]
    fn fast_path_declines_without_a_cache() {
        let srv = counting_server(0);
        store_frag(&srv, 0, &[9u8; 64]);
        assert!(srv
            .try_handle_fast(
                ClientId::new(1),
                &Request::Read {
                    fid: fid(0),
                    offset: 0,
                    len: 8,
                },
            )
            .is_none());
    }

    #[test]
    fn without_cache_every_read_hits_the_store() {
        let srv = counting_server(0);
        store_frag(&srv, 0, &[7u8; 1024]);
        for _ in 0..5 {
            read_frag(&srv, 0, 0, 8);
        }
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 5);
        assert_eq!(srv.cache_hits(), 0);
    }

    /// First `n` fragment seqs that all land in the same cache shard,
    /// so eviction order is deterministic regardless of the shard hash.
    fn same_shard_seqs(n: usize) -> Vec<u64> {
        let target = ShardedCache::shard_of(fid(0));
        let mut out = vec![0u64];
        let mut s = 1u64;
        while out.len() < n {
            if ShardedCache::shard_of(fid(s)) == target {
                out.push(s);
            }
            s += 1;
        }
        out
    }

    #[test]
    fn cache_evicts_lru_within_a_shard_and_falls_back_to_store() {
        // Capacity 16 over 8 shards = 2 entries per shard.
        let srv = counting_server(16);
        let seqs = same_shard_seqs(3);
        let (a, b, c) = (seqs[0], seqs[1], seqs[2]);
        store_frag(&srv, a, &[1u8; 64]);
        store_frag(&srv, b, &[2u8; 64]);
        // Refresh `a`: under LRU the next eviction victim is `b`, even
        // though `a` entered the shard first (FIFO would evict `a`).
        read_frag(&srv, a, 0, 4);
        store_frag(&srv, c, &[3u8; 64]);
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 0);
        // `a` and `c` still cached; `b` was evicted and hits the store.
        read_frag(&srv, a, 0, 4);
        read_frag(&srv, c, 0, 4);
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 0);
        assert_eq!(
            read_frag(&srv, b, 0, 4),
            Response::Data(vec![2u8; 4].into())
        );
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn single_read_miss_admits_the_whole_fragment() {
        // Capacity 1 ⇒ one entry per shard; `b` evicts `a`.
        let srv = counting_server(1);
        let seqs = same_shard_seqs(2);
        let (a, b) = (seqs[0], seqs[1]);
        store_frag(&srv, a, &[1u8; 64]);
        store_frag(&srv, b, &[2u8; 64]);
        // Whole-fragment read of the evicted `a` hits the store once and
        // re-admits it; the re-read is then served from cache.
        assert_eq!(
            read_frag(&srv, a, 0, 64),
            Response::Data(vec![1u8; 64].into())
        );
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 1);
        read_frag(&srv, a, 0, 16);
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 1);
        // A *partial* read of the (now evicted) `b` is served from the
        // store but NOT admitted: partial bytes can't seed the cache.
        read_frag(&srv, b, 0, 16);
        read_frag(&srv, b, 0, 16);
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn read_batch_probes_the_cache_but_never_admits() {
        use swarm_net::ReadSpec;
        let srv = counting_server(1);
        let seqs = same_shard_seqs(2);
        let (a, b) = (seqs[0], seqs[1]);
        store_frag(&srv, a, &[1u8; 64]);
        store_frag(&srv, b, &[2u8; 64]); // evicts `a` from its shard
        let batch = |specs: Vec<ReadSpec>| match srv
            .handle(ClientId::new(1), Request::ReadBatch { reads: specs })
        {
            Response::Batch(reply) => reply.into_results(),
            r => panic!("{r:?}"),
        };
        let spec = |seq: u64| ReadSpec {
            fid: fid(seq),
            offset: 0,
            len: 64,
        };
        // `b` is cached (hit), `a` is not (bypass: store read, no
        // admission), and a missing fid yields a per-item error without
        // poisoning the batch.
        for _ in 0..2 {
            let results = batch(vec![spec(a), spec(b), spec(999)]);
            assert_eq!(results[0].as_ref().unwrap().as_slice(), &[1u8; 64][..]);
            assert_eq!(results[1].as_ref().unwrap().as_slice(), &[2u8; 64][..]);
            assert!(results[2].is_err());
        }
        // Both sweeps re-read `a` (and re-attempt the missing fid) from
        // the store: batches never admit.
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 4);
        let stats = srv.read_cache_shard_stats();
        let (hits, _misses, bypasses) = stats
            .iter()
            .fold((0, 0, 0), |acc, s| (acc.0 + s.0, acc.1 + s.1, acc.2 + s.2));
        assert_eq!(bypasses, 4, "bypassed probes of `a` and the missing fid");
        assert!(hits >= 2, "cached `b` probed twice: {stats:?}");
    }

    #[test]
    fn delete_invalidates_the_cache() {
        let srv = counting_server(4);
        store_frag(&srv, 0, &[1u8; 64]);
        srv.handle(ClientId::new(1), Request::Delete { fid: fid(0) })
            .into_result()
            .unwrap();
        // Same fid re-stored with different contents must not serve stale
        // bytes (it re-populates, so the store is never read, but the
        // data must be the NEW data).
        store_frag(&srv, 0, &[2u8; 64]);
        assert_eq!(
            read_frag(&srv, 0, 0, 4),
            Response::Data(vec![2u8; 4].into())
        );
    }

    #[test]
    fn out_of_range_cached_read_still_errors() {
        let srv = counting_server(4);
        store_frag(&srv, 0, &[1u8; 64]);
        let resp = read_frag(&srv, 0, 60, 10);
        assert!(resp.into_result().is_err());
    }
}
