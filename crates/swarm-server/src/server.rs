//! The storage server request handler: glues a [`FragmentStore`] and an
//! [`AclDb`] behind the wire protocol.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use swarm_net::{Request, RequestHandler, Response, ServerStats};
use swarm_types::{Bytes, ClientId, FragmentId, Result, ServerId, SwarmError};

use crate::acl::AclDb;
use crate::store::FragmentStore;

struct ServerMetrics {
    stores: swarm_metrics::Counter,
    store_bytes: swarm_metrics::Counter,
    reads: swarm_metrics::Counter,
    deletes: swarm_metrics::Counter,
    cache_hits: swarm_metrics::Counter,
    errors: swarm_metrics::Counter,
    store_us: swarm_metrics::Histogram,
    read_us: swarm_metrics::Histogram,
}

fn metrics() -> &'static ServerMetrics {
    static M: std::sync::OnceLock<ServerMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| ServerMetrics {
        stores: swarm_metrics::counter("server.stores"),
        store_bytes: swarm_metrics::counter("server.store_bytes"),
        reads: swarm_metrics::counter("server.reads"),
        deletes: swarm_metrics::counter("server.deletes"),
        cache_hits: swarm_metrics::counter("server.cache_hits"),
        errors: swarm_metrics::counter("server.errors"),
        store_us: swarm_metrics::histogram("server.store_us"),
        read_us: swarm_metrics::histogram("server.read_us"),
    })
}

/// A complete Swarm storage server.
///
/// Generic over its [`FragmentStore`] so the identical request-handling
/// logic (ACL checks, marked-fragment queries, statistics) runs in-memory,
/// on disk, over TCP, or inside the simulator.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use swarm_server::{MemStore, StorageServer};
/// use swarm_net::{Request, RequestHandler, Response};
/// use swarm_types::{ClientId, FragmentId, ServerId};
///
/// let server = StorageServer::new(ServerId::new(0), MemStore::new());
/// let fid = FragmentId::new(ClientId::new(1), 0);
/// let resp = server.handle(ClientId::new(1), Request::Store {
///     fid, marked: false, ranges: vec![], data: vec![1, 2, 3].into(),
/// });
/// assert_eq!(resp, Response::Ok);
/// ```
pub struct StorageServer<S> {
    id: ServerId,
    store: S,
    acls: AclDb,
    stores: AtomicU64,
    reads: AtomicU64,
    deletes: AtomicU64,
    cache_hits: AtomicU64,
    /// Optional in-memory fragment cache (FIFO). The paper's prototype
    /// had none ("the prototype servers do not cache log fragments in
    /// memory", §3.4) — this is the extension it names.
    cache: Option<Mutex<FragmentCache>>,
}

struct FragmentCache {
    capacity: usize,
    map: HashMap<FragmentId, Bytes>,
    order: VecDeque<FragmentId>,
}

impl FragmentCache {
    fn new(capacity: usize) -> Self {
        FragmentCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, fid: FragmentId) -> Option<Bytes> {
        self.map.get(&fid).map(Bytes::share)
    }

    fn insert(&mut self, fid: FragmentId, bytes: Bytes) {
        if self.map.insert(fid, bytes).is_none() {
            self.order.push_back(fid);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    fn remove(&mut self, fid: FragmentId) {
        self.map.remove(&fid);
        self.order.retain(|f| *f != fid);
    }
}

impl<S: FragmentStore> StorageServer<S> {
    /// Creates a server with an empty ACL database.
    pub fn new(id: ServerId, store: S) -> Self {
        StorageServer {
            id,
            store,
            acls: AclDb::new(),
            stores: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache: None,
        }
    }

    /// Enables an in-memory read cache of `fragments` recently stored or
    /// read fragments — the server-side caching §3.4 names as the
    /// optimization the prototype lacked.
    pub fn with_read_cache(mut self, fragments: usize) -> Self {
        if fragments > 0 {
            self.cache = Some(Mutex::new(FragmentCache::new(fragments)));
        }
        self
    }

    /// Cache hits served so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Convenience: wraps the server in an [`Arc`] for sharing with
    /// transports.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Direct access to the backing store (used by tests and tools).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Direct access to the ACL database.
    pub fn acls(&self) -> &AclDb {
        &self.acls
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            fragments: self.store.fragment_count(),
            bytes: self.store.byte_count(),
            stores: self.stores.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            capacity_fragments: self.store.capacity(),
        }
    }

    fn dispatch(&self, client: ClientId, request: Request) -> Result<Response> {
        match request {
            Request::Store {
                fid,
                marked,
                ranges,
                data,
            } => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                let m = metrics();
                m.stores.inc();
                m.store_bytes.add(data.len() as u64);
                let _span = m.store_us.span("server.store");
                // Validate ranges (and record them) before committing the
                // bytes so a bad request stores nothing.
                self.acls.attach_ranges(fid, ranges)?;
                // `share()` is an O(1) refcount bump; the store and the
                // cache alias the same buffer (on TCP, the network frame).
                if let Err(e) = self.store.store(fid, data.share(), marked) {
                    self.acls.detach_ranges(fid);
                    return Err(e);
                }
                if let Some(cache) = &self.cache {
                    cache.lock().insert(fid, data);
                }
                Ok(Response::Ok)
            }
            Request::Read { fid, offset, len } => {
                self.reads.fetch_add(1, Ordering::Relaxed);
                let m = metrics();
                m.reads.inc();
                let _span = m.read_us.span("server.read");
                self.acls.check(fid, offset, len, client, "read")?;
                if let Some(cache) = &self.cache {
                    if let Some(bytes) = cache.lock().get(fid) {
                        let end = offset as usize + len as usize;
                        if end <= bytes.len() {
                            self.cache_hits.fetch_add(1, Ordering::Relaxed);
                            m.cache_hits.inc();
                            return Ok(Response::Data(bytes.slice(offset as usize..end)));
                        }
                    }
                }
                let data = self.store.read(fid, offset, len)?;
                Ok(Response::Data(data))
            }
            Request::Delete { fid } => {
                self.deletes.fetch_add(1, Ordering::Relaxed);
                metrics().deletes.inc();
                self.acls.check(fid, 0, u32::MAX, client, "delete")?;
                self.store.delete(fid)?;
                self.acls.detach_ranges(fid);
                if let Some(cache) = &self.cache {
                    cache.lock().remove(fid);
                }
                Ok(Response::Ok)
            }
            Request::Preallocate { fid, len } => {
                self.store.preallocate(fid, len)?;
                Ok(Response::Ok)
            }
            Request::LastMarked => Ok(Response::LastMarked(self.store.last_marked(client))),
            Request::Locate { fid, header_len } => match self.store.meta(fid) {
                None => Ok(Response::Located(None)),
                Some(meta) => {
                    let take = header_len.min(meta.len);
                    self.acls.check(fid, 0, take, client, "locate")?;
                    let header = self.store.read(fid, 0, take)?;
                    Ok(Response::Located(Some(header)))
                }
            },
            Request::AclCreate { members } => Ok(Response::AclCreated(self.acls.create(members))),
            Request::AclModify { aid, add, remove } => {
                self.acls.modify(aid, add, remove)?;
                Ok(Response::Ok)
            }
            Request::AclDelete { aid } => {
                self.acls.delete(aid)?;
                Ok(Response::Ok)
            }
            Request::Stat => Ok(Response::Stats(self.stats())),
            Request::Ping => Ok(Response::Ok),
            Request::Metrics => Ok(Response::Metrics(swarm_metrics::snapshot().to_json())),
            other => Err(SwarmError::protocol(format!(
                "unsupported request {other:?}"
            ))),
        }
    }
}

impl<S: FragmentStore> RequestHandler for StorageServer<S> {
    fn handle(&self, client: ClientId, request: Request) -> Response {
        // A panic anywhere in request handling must degrade to an error
        // response, not kill the serving thread: one malformed or hostile
        // request may cost its sender an error, never the server. The
        // stores use parking_lot locks (no poisoning), so catching here
        // cannot wedge later requests.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.dispatch(client, request)
        }));
        match result {
            Ok(Ok(resp)) => resp,
            Ok(Err(e)) => {
                metrics().errors.inc();
                swarm_metrics::trace!(
                    "server.error",
                    "server {} request from {client} failed: {e}",
                    self.id.raw()
                );
                Response::from_error(&e)
            }
            Err(panic) => {
                metrics().errors.inc();
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                swarm_metrics::trace!(
                    "server.error",
                    "server {} PANIC serving request from {client}: {msg}",
                    self.id.raw()
                );
                Response::from_error(&SwarmError::other(format!("internal server error: {msg}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memstore::MemStore;
    use swarm_net::StoreRange;
    use swarm_types::{Aid, FragmentId};

    fn server() -> StorageServer<MemStore> {
        StorageServer::new(ServerId::new(0), MemStore::new())
    }

    fn fid(c: u32, s: u64) -> FragmentId {
        FragmentId::new(ClientId::new(c), s)
    }

    /// A store whose every operation panics — stands in for any internal
    /// bug reached through request handling.
    struct PanicStore;

    impl crate::store::FragmentStore for PanicStore {
        fn store(&self, _: FragmentId, _: swarm_types::Bytes, _: bool) -> Result<()> {
            panic!("injected store panic")
        }
        fn read(&self, _: FragmentId, _: u32, _: u32) -> Result<swarm_types::Bytes> {
            panic!("injected read panic")
        }
        fn delete(&self, _: FragmentId) -> Result<()> {
            panic!("injected delete panic")
        }
        fn preallocate(&self, _: FragmentId, _: u32) -> Result<()> {
            panic!("injected preallocate panic")
        }
        fn meta(&self, _: FragmentId) -> Option<crate::store::FragmentMeta> {
            None
        }
        fn last_marked(&self, _: ClientId) -> Option<FragmentId> {
            None
        }
        fn list(&self) -> Vec<FragmentId> {
            Vec::new()
        }
        fn fragment_count(&self) -> u64 {
            0
        }
        fn byte_count(&self) -> u64 {
            0
        }
        fn capacity(&self) -> u64 {
            0
        }
    }

    /// A panic inside request handling must come back as an error
    /// response — never kill the serving thread — and the server must
    /// keep answering afterwards.
    #[test]
    fn panic_in_dispatch_becomes_error_response() {
        let s = StorageServer::new(ServerId::new(0), PanicStore);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let resp = s.handle(
            ClientId::new(1),
            Request::Store {
                fid: fid(1, 0),
                marked: false,
                ranges: vec![],
                data: b"boom".to_vec().into(),
            },
        );
        std::panic::set_hook(prev);
        let err = resp.into_result().unwrap_err();
        assert!(matches!(err, SwarmError::Other(_)), "{err}");
        // Still serving.
        assert_eq!(s.handle(ClientId::new(1), Request::Ping), Response::Ok);
    }

    fn ok(resp: Response) -> Response {
        resp.into_result().expect("expected success")
    }

    #[test]
    fn store_read_delete_cycle() {
        let srv = server();
        let me = ClientId::new(1);
        ok(srv.handle(
            me,
            Request::Store {
                fid: fid(1, 0),
                marked: false,
                ranges: vec![],
                data: b"hello".into(),
            },
        ));
        let resp = ok(srv.handle(
            me,
            Request::Read {
                fid: fid(1, 0),
                offset: 1,
                len: 3,
            },
        ));
        assert_eq!(resp, Response::Data(b"ell".into()));
        ok(srv.handle(me, Request::Delete { fid: fid(1, 0) }));
        let resp = srv.handle(
            me,
            Request::Read {
                fid: fid(1, 0),
                offset: 0,
                len: 1,
            },
        );
        assert!(resp.into_result().is_err());
    }

    #[test]
    fn last_marked_is_per_client() {
        let srv = server();
        for (c, s, m) in [(1, 0, true), (1, 1, false), (2, 5, true), (1, 2, true)] {
            ok(srv.handle(
                ClientId::new(c),
                Request::Store {
                    fid: fid(c, s),
                    marked: m,
                    ranges: vec![],
                    data: vec![0].into(),
                },
            ));
        }
        assert_eq!(
            ok(srv.handle(ClientId::new(1), Request::LastMarked)),
            Response::LastMarked(Some(fid(1, 2)))
        );
        assert_eq!(
            ok(srv.handle(ClientId::new(2), Request::LastMarked)),
            Response::LastMarked(Some(fid(2, 5)))
        );
        assert_eq!(
            ok(srv.handle(ClientId::new(3), Request::LastMarked)),
            Response::LastMarked(None)
        );
    }

    #[test]
    fn locate_returns_fragment_prefix() {
        let srv = server();
        let me = ClientId::new(1);
        ok(srv.handle(
            me,
            Request::Store {
                fid: fid(1, 3),
                marked: false,
                ranges: vec![],
                data: b"headerbody".into(),
            },
        ));
        let resp = ok(srv.handle(
            me,
            Request::Locate {
                fid: fid(1, 3),
                header_len: 6,
            },
        ));
        assert_eq!(resp, Response::Located(Some(b"header".into())));
        // header_len longer than the fragment is clamped, not an error.
        let resp = ok(srv.handle(
            me,
            Request::Locate {
                fid: fid(1, 3),
                header_len: 1000,
            },
        ));
        assert_eq!(resp, Response::Located(Some(b"headerbody".into())));
        let resp = ok(srv.handle(
            me,
            Request::Locate {
                fid: fid(1, 9),
                header_len: 6,
            },
        ));
        assert_eq!(resp, Response::Located(None));
    }

    #[test]
    fn acl_protected_store_and_read() {
        let srv = server();
        let owner = ClientId::new(1);
        let other = ClientId::new(2);
        let aid = match ok(srv.handle(
            owner,
            Request::AclCreate {
                members: vec![owner],
            },
        )) {
            Response::AclCreated(aid) => aid,
            r => panic!("{r:?}"),
        };
        ok(srv.handle(
            owner,
            Request::Store {
                fid: fid(1, 0),
                marked: false,
                ranges: vec![StoreRange {
                    offset: 0,
                    len: 5,
                    aid,
                }],
                data: b"secret+public".into(),
            },
        ));
        // Non-member denied on protected bytes…
        let resp = srv.handle(
            other,
            Request::Read {
                fid: fid(1, 0),
                offset: 0,
                len: 5,
            },
        );
        assert!(matches!(
            resp.into_result(),
            Err(SwarmError::AccessDenied { .. })
        ));
        // …but allowed on unprotected bytes.
        let resp = ok(srv.handle(
            other,
            Request::Read {
                fid: fid(1, 0),
                offset: 7,
                len: 6,
            },
        ));
        assert_eq!(resp, Response::Data(b"public".into()));
        // Granting membership opens the protected range.
        ok(srv.handle(
            owner,
            Request::AclModify {
                aid,
                add: vec![other],
                remove: vec![],
            },
        ));
        ok(srv.handle(
            other,
            Request::Read {
                fid: fid(1, 0),
                offset: 0,
                len: 5,
            },
        ));
    }

    #[test]
    fn failed_store_leaves_no_acl_ranges() {
        let srv = server();
        let me = ClientId::new(1);
        ok(srv.handle(
            me,
            Request::Store {
                fid: fid(1, 0),
                marked: false,
                ranges: vec![],
                data: vec![1].into(),
            },
        ));
        // Second store of same fid fails; its ranges must not take effect.
        let aid = match ok(srv.handle(me, Request::AclCreate { members: vec![] })) {
            Response::AclCreated(aid) => aid,
            r => panic!("{r:?}"),
        };
        let resp = srv.handle(
            me,
            Request::Store {
                fid: fid(1, 0),
                marked: false,
                ranges: vec![StoreRange {
                    offset: 0,
                    len: 1,
                    aid,
                }],
                data: vec![2].into(),
            },
        );
        assert!(resp.into_result().is_err());
        // Anyone can still read the original byte (no lingering ACL).
        ok(srv.handle(
            ClientId::new(9),
            Request::Read {
                fid: fid(1, 0),
                offset: 0,
                len: 1,
            },
        ));
    }

    #[test]
    fn stats_count_operations() {
        let srv = server();
        let me = ClientId::new(1);
        ok(srv.handle(
            me,
            Request::Store {
                fid: fid(1, 0),
                marked: false,
                ranges: vec![],
                data: vec![0; 64].into(),
            },
        ));
        ok(srv.handle(
            me,
            Request::Read {
                fid: fid(1, 0),
                offset: 0,
                len: 8,
            },
        ));
        let stats = match ok(srv.handle(me, Request::Stat)) {
            Response::Stats(s) => s,
            r => panic!("{r:?}"),
        };
        assert_eq!(stats.fragments, 1);
        assert_eq!(stats.bytes, 64);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.reads, 1);
    }

    #[test]
    fn errors_never_panic_the_handler() {
        let srv = server();
        let me = ClientId::new(1);
        // Read of missing fragment, bad ranges, unknown ACL: all must
        // come back as Response::Err.
        let r1 = srv.handle(
            me,
            Request::Read {
                fid: fid(1, 0),
                offset: 0,
                len: 1,
            },
        );
        assert!(matches!(r1, Response::Err { .. }));
        let r2 = srv.handle(
            me,
            Request::AclModify {
                aid: Aid::new(999),
                add: vec![],
                remove: vec![],
            },
        );
        assert!(matches!(r2, Response::Err { .. }));
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use crate::memstore::MemStore;
    use crate::store::FragmentMeta;
    use swarm_types::FragmentId;

    /// Counts reads that actually reach the backing store.
    struct CountingStore {
        inner: MemStore,
        reads: AtomicU64,
    }

    impl FragmentStore for CountingStore {
        fn store(&self, fid: FragmentId, data: Bytes, marked: bool) -> Result<()> {
            self.inner.store(fid, data, marked)
        }
        fn read(&self, fid: FragmentId, offset: u32, len: u32) -> Result<Bytes> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.inner.read(fid, offset, len)
        }
        fn delete(&self, fid: FragmentId) -> Result<()> {
            self.inner.delete(fid)
        }
        fn preallocate(&self, fid: FragmentId, len: u32) -> Result<()> {
            self.inner.preallocate(fid, len)
        }
        fn meta(&self, fid: FragmentId) -> Option<FragmentMeta> {
            self.inner.meta(fid)
        }
        fn last_marked(&self, client: ClientId) -> Option<FragmentId> {
            self.inner.last_marked(client)
        }
        fn list(&self) -> Vec<FragmentId> {
            self.inner.list()
        }
        fn fragment_count(&self) -> u64 {
            self.inner.fragment_count()
        }
        fn byte_count(&self) -> u64 {
            self.inner.byte_count()
        }
        fn capacity(&self) -> u64 {
            self.inner.capacity()
        }
    }

    fn fid(s: u64) -> FragmentId {
        FragmentId::new(ClientId::new(1), s)
    }

    fn counting_server(cache: usize) -> StorageServer<CountingStore> {
        let srv = StorageServer::new(
            ServerId::new(0),
            CountingStore {
                inner: MemStore::new(),
                reads: AtomicU64::new(0),
            },
        );
        if cache > 0 {
            srv.with_read_cache(cache)
        } else {
            srv
        }
    }

    fn store_frag(srv: &StorageServer<CountingStore>, seq: u64, data: &[u8]) {
        srv.handle(
            ClientId::new(1),
            Request::Store {
                fid: fid(seq),
                marked: false,
                ranges: vec![],
                data: data.into(),
            },
        )
        .into_result()
        .unwrap();
    }

    fn read_frag(srv: &StorageServer<CountingStore>, seq: u64, offset: u32, len: u32) -> Response {
        srv.handle(
            ClientId::new(1),
            Request::Read {
                fid: fid(seq),
                offset,
                len,
            },
        )
    }

    #[test]
    fn cached_reads_never_hit_the_disk() {
        let srv = counting_server(4);
        store_frag(&srv, 0, &[7u8; 1024]);
        for _ in 0..10 {
            assert_eq!(
                read_frag(&srv, 0, 100, 16),
                Response::Data(vec![7u8; 16].into())
            );
        }
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 0);
        assert_eq!(srv.cache_hits(), 10);
    }

    #[test]
    fn without_cache_every_read_hits_the_store() {
        let srv = counting_server(0);
        store_frag(&srv, 0, &[7u8; 1024]);
        for _ in 0..5 {
            read_frag(&srv, 0, 0, 8);
        }
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 5);
        assert_eq!(srv.cache_hits(), 0);
    }

    #[test]
    fn cache_evicts_fifo_and_falls_back_to_store() {
        let srv = counting_server(2);
        for seq in 0..3 {
            store_frag(&srv, seq, &[seq as u8; 64]);
        }
        // Fragment 0 was evicted by 2; reading it hits the store.
        assert_eq!(
            read_frag(&srv, 0, 0, 4),
            Response::Data(vec![0u8; 4].into())
        );
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 1);
        // Fragments 1 and 2 still cached.
        read_frag(&srv, 1, 0, 4);
        read_frag(&srv, 2, 0, 4);
        assert_eq!(srv.store().reads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn delete_invalidates_the_cache() {
        let srv = counting_server(4);
        store_frag(&srv, 0, &[1u8; 64]);
        srv.handle(ClientId::new(1), Request::Delete { fid: fid(0) })
            .into_result()
            .unwrap();
        // Same fid re-stored with different contents must not serve stale
        // bytes (it re-populates, so the store is never read, but the
        // data must be the NEW data).
        store_frag(&srv, 0, &[2u8; 64]);
        assert_eq!(
            read_frag(&srv, 0, 0, 4),
            Response::Data(vec![2u8; 4].into())
        );
    }

    #[test]
    fn out_of_range_cached_read_still_errors() {
        let srv = counting_server(4);
        store_frag(&srv, 0, &[1u8; 64]);
        let resp = read_frag(&srv, 0, 60, 10);
        assert!(resp.into_result().is_err());
    }
}
