//! Protocol robustness: arbitrary bytes must never panic the decoders,
//! and valid messages must survive frame + codec round trips bit-exactly.

use proptest::prelude::*;
use swarm_net::{
    read_frame, write_frame, write_frame_vectored, Request, Response, ServerStats, StoreRange,
};
use swarm_types::{Aid, ByteWriter, ClientId, Decode, Encode, FragmentId};

fn arb_fid() -> impl Strategy<Value = FragmentId> {
    (0u32..100, 0u64..1_000_000).prop_map(|(c, s)| FragmentId::new(ClientId::new(c), s))
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            arb_fid(),
            any::<bool>(),
            proptest::collection::vec(
                (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(o, l, a)| StoreRange {
                    offset: o,
                    len: l,
                    aid: Aid::new(a)
                }),
                0..4
            ),
            proptest::collection::vec(any::<u8>(), 0..512),
        )
            .prop_map(|(fid, marked, ranges, data)| Request::Store {
                fid,
                marked,
                ranges,
                data: data.into()
            }),
        (arb_fid(), any::<u32>(), any::<u32>()).prop_map(|(fid, offset, len)| Request::Read {
            fid,
            offset,
            len
        }),
        arb_fid().prop_map(|fid| Request::Delete { fid }),
        (arb_fid(), any::<u32>()).prop_map(|(fid, len)| Request::Preallocate { fid, len }),
        Just(Request::LastMarked),
        (arb_fid(), any::<u32>()).prop_map(|(fid, header_len)| Request::Locate { fid, header_len }),
        proptest::collection::vec(0u32..1000, 0..6).prop_map(|m| Request::AclCreate {
            members: m.into_iter().map(ClientId::new).collect()
        }),
        Just(Request::Stat),
        Just(Request::Ping),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        proptest::collection::vec(any::<u8>(), 0..512).prop_map(|d| Response::Data(d.into())),
        (any::<bool>(), arb_fid())
            .prop_map(|(some, fid)| Response::LastMarked(some.then_some(fid))),
        (
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(some, h)| Response::Located(some.then(|| h.into()))),
        any::<u32>().prop_map(|a| Response::AclCreated(Aid::new(a))),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(
                |(fragments, bytes, stores, reads, deletes, capacity_fragments)| {
                    Response::Stats(ServerStats {
                        fragments,
                        bytes,
                        stores,
                        reads,
                        deletes,
                        capacity_fragments,
                    })
                }
            ),
        ".*".prop_map(Response::Metrics),
        (any::<u16>(), any::<u64>(), ".*").prop_map(|(code, datum, detail)| Response::Err {
            code,
            datum,
            detail,
        }),
    ]
}

/// Frames `msg` both ways — the contiguous path (`write_frame` over
/// `encode_to_vec`) and the vectored path (`encode_split` header + payload
/// through `write_frame_vectored`) — and asserts identical wire bytes.
fn assert_vectored_framing_identical(header: &[u8], payload: &[u8], contiguous: &[u8]) {
    let mut old_wire = Vec::new();
    write_frame(&mut old_wire, contiguous).unwrap();
    let mut new_wire = Vec::new();
    write_frame_vectored(&mut new_wire, header, payload).unwrap();
    assert_eq!(old_wire, new_wire);
}

proptest! {
    #[test]
    fn vectored_framing_matches_contiguous_for_requests(req in arb_request()) {
        let mut w = ByteWriter::new();
        let payload = req.encode_split(&mut w).unwrap_or(&[]);
        let mut concat = w.as_slice().to_vec();
        concat.extend_from_slice(payload);
        prop_assert_eq!(&concat, &req.encode_to_vec());
        assert_vectored_framing_identical(w.as_slice(), payload, &concat);
    }

    #[test]
    fn vectored_framing_matches_contiguous_for_responses(resp in arb_response()) {
        let mut w = ByteWriter::new();
        let payload = resp.encode_split(&mut w).unwrap_or(&[]);
        let mut concat = w.as_slice().to_vec();
        concat.extend_from_slice(payload);
        prop_assert_eq!(&concat, &resp.encode_to_vec());
        assert_vectored_framing_identical(w.as_slice(), payload, &concat);
    }

    #[test]
    fn decode_of_arbitrary_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode_all(&data);
        let _ = Response::decode_all(&data);
    }

    #[test]
    fn frames_of_arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_frame(std::io::Cursor::new(&data));
    }

    #[test]
    fn valid_requests_survive_frame_and_codec(req in arb_request()) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &req.encode_to_vec()).unwrap();
        let payload = read_frame(std::io::Cursor::new(&framed)).unwrap();
        prop_assert_eq!(Request::decode_all(&payload).unwrap(), req);
    }

    #[test]
    fn corrupted_frames_are_rejected_not_misparsed(
        req in arb_request(),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &req.encode_to_vec()).unwrap();
        let i = flip_at.index(framed.len());
        framed[i] ^= 1 << flip_bit;
        match read_frame(std::io::Cursor::new(&framed)) {
            // Either the frame is rejected (bad magic/length/CRC)…
            Err(_) => {}
            // …or the CRC32 caught nothing because the flip was repaired
            // by coincidence — for single-bit flips that cannot happen,
            // so a successful parse must return the original request.
            Ok(payload) => {
                prop_assert_eq!(Request::decode_all(&payload).ok(), Some(req));
            }
        }
    }
}
