//! Protocol robustness: arbitrary bytes must never panic the decoders,
//! and valid messages must survive frame + codec round trips bit-exactly.

use proptest::prelude::*;
use swarm_net::{read_frame, write_frame, Request, Response, StoreRange};
use swarm_types::{Aid, ClientId, Decode, Encode, FragmentId};

fn arb_fid() -> impl Strategy<Value = FragmentId> {
    (0u32..100, 0u64..1_000_000).prop_map(|(c, s)| FragmentId::new(ClientId::new(c), s))
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            arb_fid(),
            any::<bool>(),
            proptest::collection::vec(
                (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(o, l, a)| StoreRange {
                    offset: o,
                    len: l,
                    aid: Aid::new(a)
                }),
                0..4
            ),
            proptest::collection::vec(any::<u8>(), 0..512),
        )
            .prop_map(|(fid, marked, ranges, data)| Request::Store {
                fid,
                marked,
                ranges,
                data
            }),
        (arb_fid(), any::<u32>(), any::<u32>()).prop_map(|(fid, offset, len)| Request::Read {
            fid,
            offset,
            len
        }),
        arb_fid().prop_map(|fid| Request::Delete { fid }),
        (arb_fid(), any::<u32>()).prop_map(|(fid, len)| Request::Preallocate { fid, len }),
        Just(Request::LastMarked),
        (arb_fid(), any::<u32>()).prop_map(|(fid, header_len)| Request::Locate { fid, header_len }),
        proptest::collection::vec(0u32..1000, 0..6).prop_map(|m| Request::AclCreate {
            members: m.into_iter().map(ClientId::new).collect()
        }),
        Just(Request::Stat),
        Just(Request::Ping),
    ]
}

proptest! {
    #[test]
    fn decode_of_arbitrary_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode_all(&data);
        let _ = Response::decode_all(&data);
    }

    #[test]
    fn frames_of_arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_frame(std::io::Cursor::new(&data));
    }

    #[test]
    fn valid_requests_survive_frame_and_codec(req in arb_request()) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &req.encode_to_vec()).unwrap();
        let payload = read_frame(std::io::Cursor::new(&framed)).unwrap();
        prop_assert_eq!(Request::decode_all(&payload).unwrap(), req);
    }

    #[test]
    fn corrupted_frames_are_rejected_not_misparsed(
        req in arb_request(),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &req.encode_to_vec()).unwrap();
        let i = flip_at.index(framed.len());
        framed[i] ^= 1 << flip_bit;
        match read_frame(std::io::Cursor::new(&framed)) {
            // Either the frame is rejected (bad magic/length/CRC)…
            Err(_) => {}
            // …or the CRC32 caught nothing because the flip was repaired
            // by coincidence — for single-bit flips that cannot happen,
            // so a successful parse must return the original request.
            Ok(payload) => {
                prop_assert_eq!(Request::decode_all(&payload).ok(), Some(req));
            }
        }
    }
}
