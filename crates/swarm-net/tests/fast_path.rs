//! Reactor fast-path integration: a handler that answers reads via
//! `try_handle_fast` serves them inline on the epoll reactor thread,
//! skipping the worker pool — and a read issued behind a slow store
//! completes while that store is still running. Linux-only — the
//! reactor needs epoll.

#![cfg(target_os = "linux")]

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use swarm_net::tcp::{ServerConfig, TcpServer, TcpTransport};
use swarm_net::transport::Transport;
use swarm_net::{PreparedRequest, Request, RequestHandler, Response, Runtime};
use swarm_types::{ClientId, FragmentId, ServerId};

/// How long the worker path dawdles per store — the clock the inline
/// read path must beat.
const STORE_DELAY: Duration = Duration::from_millis(100);

/// A store whose worker path is slow (every `Store` sleeps) but whose
/// reads are all answerable from memory via the fast path.
#[derive(Default)]
struct SlowStore {
    frags: Mutex<std::collections::HashMap<FragmentId, Vec<u8>>>,
}

impl SlowStore {
    fn read(&self, fid: FragmentId, offset: u32, len: u32) -> Response {
        let frags = self.frags.lock();
        let Some(data) = frags.get(&fid) else {
            return Response::from_error(&swarm_types::SwarmError::protocol("no such fragment"));
        };
        let start = (offset as usize).min(data.len());
        let end = (start + len as usize).min(data.len());
        Response::Data(data[start..end].to_vec().into())
    }
}

impl RequestHandler for SlowStore {
    fn handle(&self, _client: ClientId, request: Request) -> Response {
        match request {
            Request::Store { fid, data, .. } => {
                std::thread::sleep(STORE_DELAY);
                self.frags.lock().insert(fid, data.to_vec());
                Response::Ok
            }
            Request::Read { fid, offset, len } => self.read(fid, offset, len),
            _ => Response::Ok,
        }
    }

    fn try_handle_fast(&self, _client: ClientId, request: &Request) -> Option<Response> {
        let Request::Read { fid, offset, len } = *request else {
            return None;
        };
        Some(self.read(fid, offset, len))
    }
}

fn fid(seq: u64) -> FragmentId {
    FragmentId::new(ClientId::new(9), seq)
}

#[test]
fn inline_reads_answer_while_a_store_crawls_through_the_workers() {
    let server = TcpServer::spawn_with_config(
        ServerId::new(1),
        "127.0.0.1:0",
        Arc::new(SlowStore::default()),
        ServerConfig {
            runtime: Runtime::Epoll,
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("spawn epoll server");
    let transport = Arc::new(TcpTransport::with_servers([(
        ServerId::new(1),
        server.addr(),
    )]));
    let mut conn = transport
        .connect(ServerId::new(1), ClientId::new(9))
        .expect("connect");

    // Seed one fragment (pays the store delay once).
    let payload: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();
    conn.call(&Request::Store {
        fid: fid(0),
        marked: false,
        ranges: vec![],
        data: payload.clone().into(),
    })
    .expect("seed store")
    .into_result()
    .expect("store ok");

    let fast_before = swarm_metrics::snapshot().counter("net.server.fast_reads");

    // Launch a slow store, then read while it is still in the workers:
    // the read must come back well inside the store's sleep.
    let pending = conn.start_prepared(&PreparedRequest::new(Request::Store {
        fid: fid(1),
        marked: false,
        ranges: vec![],
        data: vec![7u8; 512].into(),
    }));
    let started = Instant::now();
    let got = conn
        .call(&Request::Read {
            fid: fid(0),
            offset: 256,
            len: 128,
        })
        .expect("read during store");
    let read_latency = started.elapsed();
    assert_eq!(got, Response::Data(payload[256..384].to_vec().into()));
    assert!(
        read_latency < STORE_DELAY,
        "inline read took {read_latency:?}, slower than the {STORE_DELAY:?} store it should overtake"
    );
    pending
        .wait()
        .expect("store completes")
        .into_result()
        .expect("store ok");

    // Byte-exactness over a sweep of offsets, all served inline.
    for (offset, len) in [(0u32, 64u32), (100, 1), (512, 512), (1000, 24)] {
        let got = conn
            .call(&Request::Read {
                fid: fid(0),
                offset,
                len,
            })
            .expect("read");
        let want = payload[offset as usize..(offset + len) as usize].to_vec();
        assert_eq!(
            got,
            Response::Data(want.into()),
            "offset {offset} len {len}"
        );
    }

    let fast_after = swarm_metrics::snapshot().counter("net.server.fast_reads");
    assert!(
        fast_after >= fast_before + 5,
        "expected >=5 inline reads, counter moved {fast_before} -> {fast_after}"
    );
    drop(conn);
    drop(server);
}
