//! Integration stress for the epoll runtime: request-id multiplexing
//! under random pipelined interleavings, and a server holding 1000
//! concurrent connections. Linux-only — the reactor needs epoll.

#![cfg(target_os = "linux")]

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use proptest::prelude::*;
use swarm_net::tcp::{ServerConfig, TcpServer, TcpTransport};
use swarm_net::transport::Transport;
use swarm_net::{Request, RequestHandler, Response, Runtime};
use swarm_types::{ClientId, FragmentId, ServerId};

/// Minimal in-memory fragment store: enough Store/Read/Ping to exercise
/// the wire paths.
#[derive(Default)]
struct MapStore {
    frags: Mutex<std::collections::HashMap<FragmentId, Vec<u8>>>,
}

impl RequestHandler for MapStore {
    fn handle(&self, _client: ClientId, request: Request) -> Response {
        match request {
            Request::Store { fid, data, .. } => {
                self.frags.lock().insert(fid, data.to_vec());
                Response::Ok
            }
            Request::Read { fid, offset, len } => {
                let frags = self.frags.lock();
                let Some(data) = frags.get(&fid) else {
                    return Response::from_error(&swarm_types::SwarmError::protocol(
                        "no such fragment",
                    ));
                };
                let start = (offset as usize).min(data.len());
                let end = (start + len as usize).min(data.len());
                Response::Data(data[start..end].to_vec().into())
            }
            _ => Response::Ok,
        }
    }
}

fn epoll_server(id: u32, workers: usize) -> TcpServer {
    TcpServer::spawn_with_config(
        ServerId::new(id),
        "127.0.0.1:0",
        Arc::new(MapStore::default()),
        ServerConfig {
            runtime: Runtime::Epoll,
            workers,
            ..ServerConfig::default()
        },
    )
    .expect("spawn epoll server")
}

/// Deterministic payload for `(thread, call)` so a cross-matched response
/// (a mux id bug) is detected byte-for-byte, not just by length.
fn payload_for(thread: usize, call: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (thread.wrapping_mul(31) ^ call.wrapping_mul(17) ^ i) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random interleavings of pipelined requests on ONE multiplexed
    /// connection: every thread stores its own fragments then reads them
    /// back, and each response must match the caller's bytes exactly. A
    /// request-id correlation bug anywhere (client mux table, server id
    /// echo, frame reassembly) surfaces as another call's data.
    #[test]
    fn pipelined_interleavings_match_byte_exact(
        threads in 2usize..6,
        calls in 2usize..10,
        lens in proptest::collection::vec(0usize..4096, 64..65),
    ) {
        let server = epoll_server(1, 8);
        let transport = Arc::new(TcpTransport::with_servers([(
            ServerId::new(1),
            server.addr(),
        )]));
        let lens = Arc::new(lens);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let transport = transport.clone();
                let lens = lens.clone();
                std::thread::spawn(move || {
                    // Same ClientId on every thread: all calls share one
                    // mux channel and interleave on one socket.
                    let mut conn = transport
                        .connect(ServerId::new(1), ClientId::new(7))
                        .expect("connect");
                    for c in 0..calls {
                        let len = lens[(t * calls + c) % lens.len()];
                        let data = payload_for(t, c, len);
                        let fid = FragmentId::new(ClientId::new(7), (t * 1000 + c) as u64);
                        let resp = conn
                            .call(&Request::Store {
                                fid,
                                marked: false,
                                ranges: vec![],
                                data: data.clone().into(),
                            })
                            .expect("store");
                        assert_eq!(resp, Response::Ok);
                        let resp = conn
                            .call(&Request::Read {
                                fid,
                                offset: 0,
                                len: len as u32,
                            })
                            .expect("read");
                        assert_eq!(
                            resp,
                            Response::Data(data.into()),
                            "thread {t} call {c} got another call's bytes"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pipelining thread panicked");
        }
        prop_assert_eq!(transport.mux_channels(), 1);
    }
}

/// One caller pipelines a window of stores through `start_prepared` on a
/// single mux connection, then harvests the completions: every store must
/// land, readback must be byte-exact, and the channel's inflight peak must
/// prove the requests genuinely overlapped on the wire.
#[test]
fn start_prepared_pipelines_a_window_on_one_connection() {
    use swarm_net::PreparedRequest;

    const WINDOW: usize = 8;
    let server = epoll_server(3, 4);
    let transport = Arc::new(TcpTransport::with_servers([(
        ServerId::new(3),
        server.addr(),
    )]));
    let mut conn = transport
        .connect(ServerId::new(3), ClientId::new(11))
        .expect("connect");
    assert!(conn.pipeline_width() >= WINDOW);

    let payloads: Vec<Vec<u8>> = (0..WINDOW).map(|i| payload_for(9, i, 2048)).collect();
    let pending: Vec<_> = payloads
        .iter()
        .enumerate()
        .map(|(i, data)| {
            let prepared = PreparedRequest::new(Request::Store {
                fid: FragmentId::new(ClientId::new(11), i as u64),
                marked: false,
                ranges: vec![],
                data: data.clone().into(),
            });
            conn.start_prepared(&prepared)
        })
        .collect();
    // All WINDOW requests are on the wire before the first harvest.
    assert!(
        transport.mux_inflight_peak() >= WINDOW,
        "inflight peak {} never reached the window",
        transport.mux_inflight_peak()
    );
    for p in pending {
        assert_eq!(p.wait().expect("store"), Response::Ok);
    }
    for (i, data) in payloads.iter().enumerate() {
        let resp = conn
            .call(&Request::Read {
                fid: FragmentId::new(ClientId::new(11), i as u64),
                offset: 0,
                len: data.len() as u32,
            })
            .expect("read");
        assert_eq!(resp, Response::Data(data.clone().into()), "fragment {i}");
    }
    assert_eq!(transport.mux_channels(), 1, "everything shared one socket");
}

/// The reactor holds 1000 concurrent connections — far beyond the worker
/// pool width — and serves every one of them while all are open.
#[test]
fn epoll_server_handles_1000_concurrent_connections() {
    const CONNS: usize = 1000;
    // Each client connection costs one fd on each side, plus the harness'
    // own files; make sure the soft limit is not the bottleneck.
    epoll::raise_nofile_soft_limit(2 * CONNS as u64 + 512).expect("raise RLIMIT_NOFILE");

    let server = epoll_server(2, 8);
    let transport = TcpTransport::with_servers([(ServerId::new(2), server.addr())]);
    // Blocking client runtime: every connection is a real socket, so the
    // server genuinely holds 1000 of them (the mux client would share 1).
    transport.set_runtime(Runtime::Blocking);
    transport.set_call_timeout(Some(Duration::from_secs(60)));

    let mut conns = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let mut conn = transport
            .connect(ServerId::new(2), ClientId::new(i as u32))
            .unwrap_or_else(|e| panic!("dial {i} failed: {e}"));
        assert_eq!(conn.call(&Request::Ping).expect("first ping"), Response::Ok);
        conns.push(conn);
    }
    // All 1000 are open simultaneously; every single one is still served.
    for (i, conn) in conns.iter_mut().enumerate() {
        assert_eq!(
            conn.call(&Request::Ping)
                .unwrap_or_else(|e| panic!("ping {i} failed: {e}")),
            Response::Ok
        );
    }
}
