//! End-to-end fault-injection semantics over both transports.
//!
//! These tests pin the behaviour the chaos harness (`swarm-chaos`) relies
//! on: a reset is a pre-delivery failure, a truncation is a post-delivery
//! ack loss, disk-full is an error response, and the connection pool
//! recovers from severed connections without leaking slots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use std::collections::HashMap;
use swarm_net::tcp::{TcpServer, TcpTransport};
use swarm_net::{
    ConnectionPool, FaultHandler, FaultPlan, FaultTransport, MemTransport, Request, RequestHandler,
    Response, Transport,
};
use swarm_types::{Bytes, ClientId, FragmentId, ServerId, SwarmError};

/// Minimal fragment server that also counts every request it actually
/// receives — the counter is how the tests distinguish "request never
/// delivered" (reset) from "request processed, ack lost" (truncation).
#[derive(Default)]
struct CountingStore {
    requests: AtomicU64,
    fragments: Mutex<HashMap<FragmentId, Bytes>>,
}

impl CountingStore {
    fn seen(&self) -> u64 {
        self.requests.load(Ordering::SeqCst)
    }
}

impl RequestHandler for CountingStore {
    fn handle(&self, _client: ClientId, request: Request) -> Response {
        self.requests.fetch_add(1, Ordering::SeqCst);
        match request {
            Request::Ping => Response::Ok,
            Request::Store { fid, data, .. } => {
                let mut frags = self.fragments.lock();
                if frags.contains_key(&fid) {
                    return Response::from_error(&SwarmError::FragmentExists(fid));
                }
                frags.insert(fid, data);
                Response::Ok
            }
            Request::Read { fid, offset, len } => match self.fragments.lock().get(&fid) {
                None => Response::from_error(&SwarmError::FragmentNotFound(fid)),
                Some(data) => {
                    let start = offset as usize;
                    let end = start + len as usize;
                    if end > data.len() {
                        Response::from_error(&SwarmError::corrupt("short fragment"))
                    } else {
                        Response::Data(data.slice(start..end))
                    }
                }
            },
            _ => Response::Ok,
        }
    }
}

fn fid(c: u32, s: u64) -> FragmentId {
    FragmentId::new(ClientId::new(c), s)
}

fn store_req(f: FragmentId, data: &[u8]) -> Request {
    Request::Store {
        fid: f,
        marked: false,
        ranges: vec![],
        data: Bytes::from(data),
    }
}

/// Builds a one-server faulty mem cluster; returns (transport, store, plan).
fn mem_cluster(server: ServerId) -> (Arc<FaultTransport>, Arc<CountingStore>, Arc<FaultPlan>) {
    let mem = MemTransport::new();
    let store = Arc::new(CountingStore::default());
    mem.register(server, store.clone());
    let faults = Arc::new(FaultTransport::new(Arc::new(mem)));
    let plan = faults.plan(server);
    (faults, store, plan)
}

#[test]
fn reset_severs_before_delivery_and_pool_recovers() {
    let server = ServerId::new(1);
    let (faults, store, plan) = mem_cluster(server);
    let pool = ConnectionPool::new(faults, ClientId::new(7));

    // Healthy round trip first so the pool holds an idle connection.
    assert_eq!(pool.call(server, &Request::Ping).unwrap(), Response::Ok);
    let baseline = store.seen();

    // Two resets: enough to defeat the pool's single transparent redial.
    plan.inject_reset(2);
    let err = pool.call(server, &Request::Ping).unwrap_err();
    assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
    assert_eq!(
        store.seen(),
        baseline,
        "reset request must not be delivered"
    );

    // The pool redials on the next call and recovers.
    assert_eq!(pool.call(server, &Request::Ping).unwrap(), Response::Ok);
    assert_eq!(store.seen(), baseline + 1);
}

#[test]
fn pool_does_not_leak_slots_across_reset_storms() {
    let server = ServerId::new(1);
    let (faults, _store, plan) = mem_cluster(server);
    let pool = ConnectionPool::new(faults, ClientId::new(7));

    for round in 0..32 {
        if round % 2 == 0 {
            plan.inject_reset(2);
            let _ = pool.call(server, &Request::Ping);
        } else {
            assert_eq!(pool.call(server, &Request::Ping).unwrap(), Response::Ok);
        }
        assert!(
            pool.idle_count(server) <= 4,
            "idle slots exceeded cap after round {round}: {}",
            pool.idle_count(server)
        );
    }
    // Severed connections must not be checked back in as idle.
    plan.inject_reset(2);
    let _ = pool.call(server, &Request::Ping);
    assert_eq!(pool.idle_count(server), 0, "severed conns must be dropped");
}

#[test]
fn truncation_is_processed_but_ack_lost() {
    let server = ServerId::new(1);
    let (faults, store, plan) = mem_cluster(server);
    let pool = ConnectionPool::new(faults, ClientId::new(7));

    let f = fid(7, 0);
    plan.inject_truncate(2); // survive the pool's transparent redial
    let err = pool.call(server, &store_req(f, b"hello")).unwrap_err();
    assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
    assert!(
        store.seen() >= 1,
        "truncated request must still be processed"
    );

    // The retry path: the fragment is already there, so the duplicate
    // store reports FragmentExists — which the writer treats as success.
    let err = pool
        .call(server, &store_req(f, b"hello"))
        .unwrap()
        .into_result()
        .unwrap_err();
    assert!(matches!(err, SwarmError::FragmentExists(_)), "{err}");
    let data = pool
        .call(
            server,
            &Request::Read {
                fid: f,
                offset: 0,
                len: 5,
            },
        )
        .unwrap();
    assert_eq!(data, Response::Data(Bytes::from(&b"hello"[..])));
}

#[test]
fn delay_slows_exactly_one_call() {
    let server = ServerId::new(1);
    let (faults, _store, plan) = mem_cluster(server);
    let pool = ConnectionPool::new(faults, ClientId::new(7));

    plan.inject_delay_us(50_000);
    let start = Instant::now();
    assert_eq!(pool.call(server, &Request::Ping).unwrap(), Response::Ok);
    assert!(
        start.elapsed() >= Duration::from_millis(45),
        "delay not applied: {:?}",
        start.elapsed()
    );

    let start = Instant::now();
    assert_eq!(pool.call(server, &Request::Ping).unwrap(), Response::Ok);
    assert!(
        start.elapsed() < Duration::from_millis(45),
        "delay must be one-shot: {:?}",
        start.elapsed()
    );
}

#[test]
fn disk_full_rejects_stores_until_freed() {
    let server = ServerId::new(1);
    let mem = Arc::new(MemTransport::new());
    let store = Arc::new(CountingStore::default());
    let faults = Arc::new(FaultTransport::new(mem.clone()));
    let plan = faults.plan(server);
    mem.register(
        server,
        Arc::new(FaultHandler::new(store.clone(), plan.clone())),
    );
    let pool = ConnectionPool::new(faults, ClientId::new(7));

    plan.set_disk_full(true);
    let err = pool
        .call(server, &store_req(fid(7, 0), b"x"))
        .unwrap()
        .into_result()
        .unwrap_err();
    assert!(matches!(err, SwarmError::OutOfSpace(_)), "{err}");
    // Reads still work while the disk is full.
    assert_eq!(pool.call(server, &Request::Ping).unwrap(), Response::Ok);

    plan.set_disk_full(false);
    assert_eq!(
        pool.call(server, &store_req(fid(7, 0), b"x")).unwrap(),
        Response::Ok
    );
}

#[test]
fn tcp_server_side_truncation_tears_a_real_frame() {
    let server = ServerId::new(1);
    let store = Arc::new(CountingStore::default());
    let plan = Arc::new(FaultPlan::new());
    let tcp_server =
        TcpServer::spawn_with_faults(server, "127.0.0.1:0", store.clone(), Some(plan.clone()))
            .unwrap();

    let tcp = TcpTransport::new();
    tcp.add_server(server, tcp_server.addr());
    tcp.set_call_timeout(Some(Duration::from_secs(2)));
    let faults = Arc::new(FaultTransport::new(Arc::new(tcp)));
    // Truncation is consumed server-side: the torn frame crosses the wire.
    faults.set_client_truncation(false);
    let pool = ConnectionPool::new(faults, ClientId::new(7));

    let f = fid(7, 0);
    plan.inject_truncate(2); // survive the pool's transparent redial
    let err = pool.call(server, &store_req(f, b"payload")).unwrap_err();
    assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
    assert!(store.seen() >= 1, "server must have processed the request");

    // Retry on a fresh connection: duplicate store, then readable.
    let err = pool
        .call(server, &store_req(f, b"payload"))
        .unwrap()
        .into_result()
        .unwrap_err();
    assert!(matches!(err, SwarmError::FragmentExists(_)), "{err}");
    let data = pool
        .call(
            server,
            &Request::Read {
                fid: f,
                offset: 0,
                len: 7,
            },
        )
        .unwrap();
    assert_eq!(data, Response::Data(Bytes::from(&b"payload"[..])));
}

#[test]
fn same_plan_semantics_on_mem_and_tcp() {
    // The same injection sequence produces the same observable outcomes on
    // both transports — the property the chaos harness is built on.
    fn kind(e: &SwarmError) -> &'static str {
        match e {
            SwarmError::ServerUnavailable(_) => "unavail",
            SwarmError::FragmentExists(_) => "exists",
            SwarmError::OutOfSpace(_) => "nospace",
            _ => "other",
        }
    }

    fn outcomes(transport: Arc<dyn Transport>) -> Vec<String> {
        let server = ServerId::new(1);
        let faults = Arc::new(FaultTransport::new(transport));
        let plan = faults.plan(server);
        let pool = ConnectionPool::new(faults, ClientId::new(7));
        let mut log = Vec::new();
        let mut step = |tag: &str, r: swarm_types::Result<Response>| {
            log.push(format!(
                "{tag}:{}",
                match r {
                    Ok(_) => "ok".to_string(),
                    Err(e) => format!("err({})", kind(&e)),
                }
            ));
        };
        step("ping", pool.call(server, &Request::Ping));
        plan.inject_reset(2);
        step("reset-ping", pool.call(server, &Request::Ping));
        step("store", pool.call(server, &store_req(fid(7, 0), b"abc")));
        plan.set_down(true);
        step("down-ping", pool.call(server, &Request::Ping));
        plan.set_down(false);
        step("up-ping", pool.call(server, &Request::Ping));
        log
    }

    // Mem cluster.
    let server = ServerId::new(1);
    let mem = MemTransport::new();
    mem.register(server, Arc::new(CountingStore::default()));
    let mem_log = outcomes(Arc::new(mem));

    // TCP cluster.
    let store = Arc::new(CountingStore::default());
    let tcp_server = TcpServer::spawn(server, "127.0.0.1:0", store).unwrap();
    let tcp = TcpTransport::new();
    tcp.add_server(server, tcp_server.addr());
    tcp.set_call_timeout(Some(Duration::from_secs(2)));
    let tcp_log = outcomes(Arc::new(tcp));

    assert_eq!(mem_log, tcp_log);
}
