//! The Swarm storage-server protocol.
//!
//! §2.3 of the paper: "The fragment operations supported by the server
//! consist of storing data in a fragment, retrieving data from a fragment,
//! deleting a fragment, preallocating space for a fragment, and querying
//! the FID of the last marked fragment", plus ACL management (§2.3.2). The
//! prototype used TCL scripts as its request encoding; we use the typed
//! binary messages below (the paper notes the encoding overhead was
//! inconsequential because every operation involves a disk access).
//!
//! Fragments are opaque to servers: `Store` carries raw bytes assembled by
//! the client's log layer, and `Locate` (used during reconstruction,
//! §2.3.3) returns a *prefix* of those bytes — the log layer keeps its
//! self-identifying stripe-group header at the front of every fragment.

use swarm_types::{
    Aid, BlockAddr, ByteReader, ByteWriter, Bytes, ClientId, Decode, Encode, FragmentId, Result,
    SwarmError,
};

/// An access-controlled byte range within a stored fragment (§2.3.2).
///
/// "When a fragment is stored each non-overlapping byte range can be
/// assigned an AID."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreRange {
    /// Offset of the protected range within the fragment.
    pub offset: u32,
    /// Length of the protected range.
    pub len: u32,
    /// ACL protecting the range.
    pub aid: Aid,
}

impl Encode for StoreRange {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.offset);
        w.put_u32(self.len);
        self.aid.encode(w);
    }
}

impl Decode for StoreRange {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(StoreRange {
            offset: r.get_u32()?,
            len: r.get_u32()?,
            aid: Aid::decode(r)?,
        })
    }
}

/// One cooperative-cache directory hint: "`holder` probably caches
/// `addr`". Hints ride piggy-back on [`Request::PeerRead`] (both
/// directions) and on [`Request::PeerGossip`] pushes; they are lazy and
/// possibly stale by design — a wrong hint costs one extra probe, never
/// wrong bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HintSpec {
    /// Block the hint is about.
    pub addr: BlockAddr,
    /// Client believed to cache it.
    pub holder: ClientId,
}

impl Encode for HintSpec {
    fn encode(&self, w: &mut ByteWriter) {
        self.addr.encode(w);
        self.holder.encode(w);
    }
}

impl Decode for HintSpec {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(HintSpec {
            addr: BlockAddr::decode(r)?,
            holder: ClientId::decode(r)?,
        })
    }
}

/// One read within a [`Request::ReadBatch`]: the same `(fid, offset,
/// len)` triple as [`Request::Read`], batched so a scan or stripe fetch
/// against one server costs a single round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReadSpec {
    /// Fragment to read from.
    pub fid: FragmentId,
    /// Starting byte offset.
    pub offset: u32,
    /// Number of bytes to return.
    pub len: u32,
}

impl Encode for ReadSpec {
    fn encode(&self, w: &mut ByteWriter) {
        self.fid.encode(w);
        w.put_u32(self.offset);
        w.put_u32(self.len);
    }
}

impl Decode for ReadSpec {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(ReadSpec {
            fid: FragmentId::decode(r)?,
            offset: r.get_u32()?,
            len: r.get_u32()?,
        })
    }
}

/// Per-read outcome inside a [`Response::Batch`], in request order.
///
/// `Data { len }` claims the next `len` bytes of the reply's single
/// concatenated payload; `Err` carries the same wire triple as
/// [`Response::Err`]. Reads fail independently — one missing fragment
/// does not poison its batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchItem {
    /// The read succeeded; its bytes are the next `len` of the payload.
    Data {
        /// Byte count this read contributes to the shared payload.
        len: u32,
    },
    /// The read failed; see [`wire_error`].
    Err {
        /// Error category code (see `wire_error` mapping).
        code: u16,
        /// Associated 64-bit datum (usually a fragment id).
        datum: u64,
        /// Human-readable detail.
        detail: String,
    },
}

/// The reply to a [`Request::ReadBatch`]: per-read outcomes plus one
/// concatenated data payload.
///
/// The single-payload shape is deliberate: `encode_split` hands the
/// framing layer at most one bulk slice, so a batch reply rides the same
/// vectored zero-copy path as [`Response::Data`], and on the receive
/// side every successful read is a [`Bytes::slice`] view of the frame
/// allocation — N reads, one allocation, zero copies client-side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReply {
    /// Per-read outcomes, in request order.
    pub items: Vec<BatchItem>,
    /// Every successful read's bytes, concatenated in request order.
    pub data: Bytes,
}

impl BatchReply {
    /// Builds a reply from per-read results (server side). Successful
    /// payloads are concatenated here — the one copy a batch costs.
    pub fn from_results(results: Vec<Result<Bytes>>) -> BatchReply {
        let total: usize = results
            .iter()
            .map(|r| r.as_ref().map_or(0, |b| b.len()))
            .sum();
        let mut data = Vec::with_capacity(total);
        let mut items = Vec::with_capacity(results.len());
        for r in results {
            match r {
                Ok(bytes) => {
                    items.push(BatchItem::Data {
                        len: u32::try_from(bytes.len()).expect("field too long"),
                    });
                    data.extend_from_slice(&bytes);
                }
                Err(e) => {
                    let (code, datum, detail) = wire_error::to_wire(&e);
                    items.push(BatchItem::Err {
                        code,
                        datum,
                        detail,
                    });
                }
            }
        }
        BatchReply {
            items,
            data: data.into(),
        }
    }

    /// Splits the reply back into per-read results (client side). Each
    /// `Ok` is a shared slice of the reply payload — no copy.
    pub fn into_results(self) -> Vec<Result<Bytes>> {
        let mut out = Vec::with_capacity(self.items.len());
        let mut off = 0usize;
        for item in self.items {
            match item {
                BatchItem::Data { len } => {
                    let len = len as usize;
                    out.push(Ok(self.data.slice(off..off + len)));
                    off += len;
                }
                BatchItem::Err {
                    code,
                    datum,
                    detail,
                } => out.push(Err(wire_error::from_wire(code, datum, detail))),
            }
        }
        out
    }
}

/// Point-in-time counters describing one storage server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Fragments currently stored.
    pub fragments: u64,
    /// Bytes of fragment data currently stored.
    pub bytes: u64,
    /// Total store operations accepted since start.
    pub stores: u64,
    /// Total read operations served since start.
    pub reads: u64,
    /// Total delete operations since start.
    pub deletes: u64,
    /// Slot capacity (0 = unbounded).
    pub capacity_fragments: u64,
}

impl Encode for ServerStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.fragments);
        w.put_u64(self.bytes);
        w.put_u64(self.stores);
        w.put_u64(self.reads);
        w.put_u64(self.deletes);
        w.put_u64(self.capacity_fragments);
    }
}

impl Decode for ServerStats {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(ServerStats {
            fragments: r.get_u64()?,
            bytes: r.get_u64()?,
            stores: r.get_u64()?,
            reads: r.get_u64()?,
            deletes: r.get_u64()?,
            capacity_fragments: r.get_u64()?,
        })
    }
}

/// A request from a client to a storage server.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Request {
    /// Store a complete fragment. Atomic: after a crash the fragment either
    /// exists in full or not at all (§2.3.1).
    Store {
        /// Fragment id chosen by the client.
        fid: FragmentId,
        /// Marked fragments are returned by [`Request::LastMarked`];
        /// clients store checkpoints in marked fragments (§2.3.1).
        marked: bool,
        /// Access-controlled byte ranges (may be empty = world access).
        ranges: Vec<StoreRange>,
        /// Opaque fragment bytes assembled by the log layer. A shared
        /// [`Bytes`] view: the writer, retry loop, and parity accumulator
        /// all alias the sealed fragment's single allocation.
        data: Bytes,
    },
    /// Read `len` bytes at `offset` within fragment `fid`.
    Read {
        /// Fragment to read from.
        fid: FragmentId,
        /// Starting byte offset.
        offset: u32,
        /// Number of bytes to return.
        len: u32,
    },
    /// Execute several reads in one round trip (scan / stripe fetch).
    /// Served as a single worker job; answered by [`Response::Batch`].
    /// Reads fail independently, and batch reads bypass the server's
    /// read-cache *admission* (they still probe it) so a sweep cannot
    /// evict the hot set.
    ReadBatch {
        /// The reads, answered in order.
        reads: Vec<ReadSpec>,
    },
    /// Delete a fragment (invoked by the cleaner once a stripe is dead).
    Delete {
        /// Fragment to delete.
        fid: FragmentId,
    },
    /// Reserve a slot for a future fragment so a later `Store` cannot fail
    /// for lack of space.
    Preallocate {
        /// Fragment id the slot is reserved for.
        fid: FragmentId,
        /// Expected fragment length in bytes.
        len: u32,
    },
    /// Return the id of the newest *marked* fragment this client has stored
    /// on this server (checkpoint discovery after a crash, §2.3.1).
    LastMarked,
    /// Does this server hold `fid`? If so return the first `header_len`
    /// bytes (the log layer's self-identifying header). Used by broadcast
    /// reconstruction (§2.3.3).
    Locate {
        /// Fragment being sought.
        fid: FragmentId,
        /// How many leading bytes of the fragment to return.
        header_len: u32,
    },
    /// Create an ACL whose members are `members`; the server assigns the id.
    AclCreate {
        /// Initial member list.
        members: Vec<ClientId>,
    },
    /// Add and/or remove members of an existing ACL.
    AclModify {
        /// ACL to change.
        aid: Aid,
        /// Clients to add.
        add: Vec<ClientId>,
        /// Clients to remove.
        remove: Vec<ClientId>,
    },
    /// Delete an ACL.
    AclDelete {
        /// ACL to delete.
        aid: Aid,
    },
    /// Fetch server statistics.
    Stat,
    /// Liveness probe.
    Ping,
    /// Fetch the server process's full metrics snapshot (counters, gauges,
    /// latency histograms) as JSON. Richer than [`Request::Stat`]: covers
    /// every subsystem registered with `swarm-metrics`, not just the
    /// fragment-store counters.
    Metrics,
    /// Cooperative-cache probe, served by a *client-embedded* peer
    /// responder rather than a storage server: "do you still cache
    /// `addr`?" The requester piggybacks a batch of directory hints it
    /// recently learned; the responder's [`Response::PeerData`] carries
    /// hints back the other way — the gossip channel of the hint-based
    /// cooperative caching design (§2.2) rides entirely on the RPCs the
    /// cache was already making.
    PeerRead {
        /// Block being sought in the peer's cache.
        addr: BlockAddr,
        /// Piggybacked directory gossip from the requester.
        hints: Vec<HintSpec>,
    },
    /// Opportunistic directory push to a peer responder (bootstrap: the
    /// first fetch of a block has no [`Request::PeerRead`] to piggyback
    /// on, so the new holder pushes its hint to a few members directly).
    /// Answered with [`Response::Ok`].
    PeerGossip {
        /// Hints the sender wants the receiver to learn.
        hints: Vec<HintSpec>,
    },
}

/// A reply from a storage server.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Response {
    /// Operation succeeded with nothing to return.
    Ok,
    /// `Read` succeeded. On the receive path the [`Bytes`] aliases the
    /// decoded network frame, so the data is not copied again.
    Data(Bytes),
    /// `ReadBatch` result: per-read outcomes plus one concatenated
    /// payload (see [`BatchReply`]).
    Batch(BatchReply),
    /// `LastMarked` result (None = this client has no marked fragment here).
    LastMarked(Option<FragmentId>),
    /// `Locate` result (None = fragment not stored here).
    Located(Option<Bytes>),
    /// `AclCreate` result.
    AclCreated(Aid),
    /// `Stat` result.
    Stats(ServerStats),
    /// `Metrics` result: a JSON metrics snapshot (see `swarm-metrics`).
    Metrics(String),
    /// `PeerRead` result: the block bytes if the peer still caches them
    /// (`None` = the hint was stale), plus piggybacked hints from the
    /// responder's own directory. On the receive path the [`Bytes`]
    /// aliases the decoded network frame.
    PeerData {
        /// The cached block, if the peer still holds it.
        data: Option<Bytes>,
        /// Directory gossip from the responder.
        hints: Vec<HintSpec>,
    },
    /// The operation failed; see [`wire_error`].
    Err {
        /// Error category code (see `wire_error` mapping).
        code: u16,
        /// Associated 64-bit datum (usually a fragment id).
        datum: u64,
        /// Human-readable detail.
        detail: String,
    },
}

impl Response {
    /// Converts an error into its wire representation.
    pub fn from_error(err: &SwarmError) -> Response {
        let (code, datum, detail) = wire_error::to_wire(err);
        Response::Err {
            code,
            datum,
            detail,
        }
    }

    /// If this response is an error, converts it back into a [`SwarmError`].
    pub fn into_result(self) -> Result<Response> {
        match self {
            Response::Err {
                code,
                datum,
                detail,
            } => Err(wire_error::from_wire(code, datum, detail)),
            other => Ok(other),
        }
    }
}

/// Mapping between [`SwarmError`] and the `(code, datum, detail)` triple
/// carried by [`Response::Err`]. Keeping errors typed across the wire lets
/// the log layer react to `FragmentNotFound` (trigger reconstruction)
/// differently from `AccessDenied` (report to the caller).
pub mod wire_error {
    use swarm_types::{Aid, FragmentId, ServerId, SwarmError};

    /// Error category codes; stable across releases.
    pub mod code {
        /// Fragment not found on the server.
        pub const FRAGMENT_NOT_FOUND: u16 = 1;
        /// Fragment already exists.
        pub const FRAGMENT_EXISTS: u16 = 2;
        /// Read past end of fragment.
        pub const RANGE: u16 = 3;
        /// ACL denied the operation.
        pub const ACCESS_DENIED: u16 = 4;
        /// Unknown ACL id.
        pub const ACL_NOT_FOUND: u16 = 5;
        /// Server out of slots.
        pub const OUT_OF_SPACE: u16 = 6;
        /// Malformed request.
        pub const PROTOCOL: u16 = 7;
        /// Server-side I/O failure.
        pub const IO: u16 = 8;
        /// Stored data failed validation.
        pub const CORRUPT: u16 = 9;
        /// Admission throttled: the server bounded this client's backlog.
        /// Retryable pushback — the writer backs off and resubmits.
        pub const BUSY: u16 = 10;
        /// Anything else.
        pub const OTHER: u16 = 255;
    }

    /// Encodes `err` as a `(code, datum, detail)` triple.
    pub fn to_wire(err: &SwarmError) -> (u16, u64, String) {
        match err {
            SwarmError::FragmentNotFound(fid) => {
                (code::FRAGMENT_NOT_FOUND, fid.raw(), String::new())
            }
            SwarmError::FragmentExists(fid) => (code::FRAGMENT_EXISTS, fid.raw(), String::new()),
            SwarmError::RangeOutOfBounds { addr, stored } => (
                code::RANGE,
                addr.fid.raw(),
                format!("offset {} len {} stored {stored}", addr.offset, addr.len),
            ),
            SwarmError::AccessDenied { aid, op } => {
                (code::ACCESS_DENIED, aid.raw() as u64, (*op).to_string())
            }
            SwarmError::AclNotFound(aid) => (code::ACL_NOT_FOUND, aid.raw() as u64, String::new()),
            SwarmError::OutOfSpace(m) => (code::OUT_OF_SPACE, 0, m.clone()),
            SwarmError::Protocol(m) => (code::PROTOCOL, 0, m.clone()),
            SwarmError::Io(e) => (code::IO, 0, e.to_string()),
            SwarmError::Corrupt(m) => (code::CORRUPT, 0, m.clone()),
            SwarmError::Busy(server) => (code::BUSY, u64::from(server.raw()), String::new()),
            other => (code::OTHER, 0, other.to_string()),
        }
    }

    /// Decodes a wire triple back into a [`SwarmError`].
    pub fn from_wire(c: u16, datum: u64, detail: String) -> SwarmError {
        match c {
            code::FRAGMENT_NOT_FOUND => SwarmError::FragmentNotFound(FragmentId::from_raw(datum)),
            code::FRAGMENT_EXISTS => SwarmError::FragmentExists(FragmentId::from_raw(datum)),
            code::RANGE => SwarmError::corrupt(format!(
                "range error on fragment {}: {detail}",
                FragmentId::from_raw(datum)
            )),
            code::ACCESS_DENIED => SwarmError::AccessDenied {
                aid: Aid::new(datum as u32),
                op: "remote operation",
            },
            code::ACL_NOT_FOUND => SwarmError::AclNotFound(Aid::new(datum as u32)),
            code::OUT_OF_SPACE => SwarmError::OutOfSpace(detail),
            code::PROTOCOL => SwarmError::Protocol(detail),
            code::IO => SwarmError::Other(format!("remote i/o error: {detail}")),
            code::CORRUPT => SwarmError::Corrupt(detail),
            code::BUSY => SwarmError::Busy(ServerId::new(datum as u32)),
            _ => SwarmError::Other(detail),
        }
    }
}

pub(crate) mod tag {
    pub const STORE: u8 = 1;
    pub const READ: u8 = 2;
    pub const DELETE: u8 = 3;
    pub const PREALLOCATE: u8 = 4;
    pub const LAST_MARKED: u8 = 5;
    pub const LOCATE: u8 = 6;
    pub const ACL_CREATE: u8 = 7;
    pub const ACL_MODIFY: u8 = 8;
    pub const ACL_DELETE: u8 = 9;
    pub const STAT: u8 = 10;
    pub const PING: u8 = 11;
    pub const METRICS: u8 = 12;
    pub const READ_BATCH: u8 = 13;
    pub const PEER_READ: u8 = 14;
    pub const PEER_GOSSIP: u8 = 15;

    pub const R_OK: u8 = 128;
    pub const R_DATA: u8 = 129;
    pub const R_LAST_MARKED: u8 = 130;
    pub const R_LOCATED: u8 = 131;
    pub const R_ACL_CREATED: u8 = 132;
    pub const R_STATS: u8 = 133;
    pub const R_METRICS: u8 = 134;
    pub const R_BATCH: u8 = 135;
    pub const R_PEER_DATA: u8 = 136;
    pub const R_ERR: u8 = 255;
}

impl Request {
    /// Encodes this request into `w`, stopping short of the bulk payload
    /// bytes; if the variant carries a payload, its length prefix is
    /// written and the raw bytes are returned for the caller to append.
    ///
    /// `header ++ returned-payload` is byte-identical to
    /// [`Encode::encode`] output — `Encode` is implemented in terms of
    /// this method — so a peer cannot tell which path produced a frame.
    /// The framing layer sends the two pieces with
    /// [`crate::frame::write_frame_vectored`], which is how a 1 MB store
    /// reaches the socket without ever being copied into a contiguous
    /// message buffer.
    pub fn encode_split<'a>(&'a self, w: &mut ByteWriter) -> Option<&'a [u8]> {
        match self {
            Request::Store {
                fid,
                marked,
                ranges,
                data,
            } => {
                w.put_u8(tag::STORE);
                fid.encode(w);
                w.put_bool(*marked);
                w.put_u32(ranges.len() as u32);
                for r in ranges {
                    r.encode(w);
                }
                w.put_u32(u32::try_from(data.len()).expect("field too long"));
                return Some(data);
            }
            Request::Read { fid, offset, len } => {
                w.put_u8(tag::READ);
                fid.encode(w);
                w.put_u32(*offset);
                w.put_u32(*len);
            }
            Request::ReadBatch { reads } => {
                w.put_u8(tag::READ_BATCH);
                w.put_u32(reads.len() as u32);
                for spec in reads {
                    spec.encode(w);
                }
            }
            Request::Delete { fid } => {
                w.put_u8(tag::DELETE);
                fid.encode(w);
            }
            Request::Preallocate { fid, len } => {
                w.put_u8(tag::PREALLOCATE);
                fid.encode(w);
                w.put_u32(*len);
            }
            Request::LastMarked => w.put_u8(tag::LAST_MARKED),
            Request::Locate { fid, header_len } => {
                w.put_u8(tag::LOCATE);
                fid.encode(w);
                w.put_u32(*header_len);
            }
            Request::AclCreate { members } => {
                w.put_u8(tag::ACL_CREATE);
                members.encode(w);
            }
            Request::AclModify { aid, add, remove } => {
                w.put_u8(tag::ACL_MODIFY);
                aid.encode(w);
                add.encode(w);
                remove.encode(w);
            }
            Request::AclDelete { aid } => {
                w.put_u8(tag::ACL_DELETE);
                aid.encode(w);
            }
            Request::Stat => w.put_u8(tag::STAT),
            Request::Ping => w.put_u8(tag::PING),
            Request::Metrics => w.put_u8(tag::METRICS),
            Request::PeerRead { addr, hints } => {
                w.put_u8(tag::PEER_READ);
                addr.encode(w);
                w.put_u32(hints.len() as u32);
                for h in hints {
                    h.encode(w);
                }
            }
            Request::PeerGossip { hints } => {
                w.put_u8(tag::PEER_GOSSIP);
                w.put_u32(hints.len() as u32);
                for h in hints {
                    h.encode(w);
                }
            }
        }
        None
    }
}

impl Encode for Request {
    fn encode(&self, w: &mut ByteWriter) {
        if let Some(payload) = self.encode_split(w) {
            w.put_raw(payload);
        }
    }
}

/// Decodes a length-prefixed hint list with the same count sanity cap the
/// batch-read path uses: a corrupt frame must not trigger a huge allocation.
fn decode_hints(r: &mut ByteReader<'_>) -> Result<Vec<HintSpec>> {
    let n = r.get_u32()? as usize;
    if n > crate::frame::MAX_FRAME_LEN / 16 {
        return Err(SwarmError::corrupt("too many peer hints"));
    }
    let mut hints = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        hints.push(HintSpec::decode(r)?);
    }
    Ok(hints)
}

impl Decode for Request {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let t = r.get_u8()?;
        Ok(match t {
            tag::STORE => {
                let fid = FragmentId::decode(r)?;
                let marked = r.get_bool()?;
                let n = r.get_u32()? as usize;
                if n > crate::frame::MAX_FRAME_LEN / 12 {
                    return Err(SwarmError::corrupt("too many store ranges"));
                }
                let mut ranges = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ranges.push(StoreRange::decode(r)?);
                }
                let data = r.get_shared_bytes()?;
                Request::Store {
                    fid,
                    marked,
                    ranges,
                    data,
                }
            }
            tag::READ => Request::Read {
                fid: FragmentId::decode(r)?,
                offset: r.get_u32()?,
                len: r.get_u32()?,
            },
            tag::READ_BATCH => {
                let n = r.get_u32()? as usize;
                if n > crate::frame::MAX_FRAME_LEN / 16 {
                    return Err(SwarmError::corrupt("too many batch reads"));
                }
                let mut reads = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    reads.push(ReadSpec::decode(r)?);
                }
                Request::ReadBatch { reads }
            }
            tag::DELETE => Request::Delete {
                fid: FragmentId::decode(r)?,
            },
            tag::PREALLOCATE => Request::Preallocate {
                fid: FragmentId::decode(r)?,
                len: r.get_u32()?,
            },
            tag::LAST_MARKED => Request::LastMarked,
            tag::LOCATE => Request::Locate {
                fid: FragmentId::decode(r)?,
                header_len: r.get_u32()?,
            },
            tag::ACL_CREATE => Request::AclCreate {
                members: Vec::<ClientId>::decode(r)?,
            },
            tag::ACL_MODIFY => Request::AclModify {
                aid: Aid::decode(r)?,
                add: Vec::<ClientId>::decode(r)?,
                remove: Vec::<ClientId>::decode(r)?,
            },
            tag::ACL_DELETE => Request::AclDelete {
                aid: Aid::decode(r)?,
            },
            tag::STAT => Request::Stat,
            tag::PING => Request::Ping,
            tag::METRICS => Request::Metrics,
            tag::PEER_READ => {
                let addr = BlockAddr::decode(r)?;
                let hints = decode_hints(r)?;
                Request::PeerRead { addr, hints }
            }
            tag::PEER_GOSSIP => Request::PeerGossip {
                hints: decode_hints(r)?,
            },
            other => return Err(SwarmError::protocol(format!("unknown request tag {other}"))),
        })
    }
}

impl Response {
    /// The response-side twin of [`Request::encode_split`]: encodes up to
    /// (and including) the payload length prefix, returning the raw
    /// payload bytes — if any — for the caller to append or send
    /// vectored.
    pub fn encode_split<'a>(&'a self, w: &mut ByteWriter) -> Option<&'a [u8]> {
        match self {
            Response::Ok => w.put_u8(tag::R_OK),
            Response::Data(data) => {
                w.put_u8(tag::R_DATA);
                w.put_u32(u32::try_from(data.len()).expect("field too long"));
                return Some(data);
            }
            Response::Batch(reply) => {
                w.put_u8(tag::R_BATCH);
                w.put_u32(reply.items.len() as u32);
                for item in &reply.items {
                    match item {
                        BatchItem::Data { len } => {
                            w.put_bool(true);
                            w.put_u32(*len);
                        }
                        BatchItem::Err {
                            code,
                            datum,
                            detail,
                        } => {
                            w.put_bool(false);
                            w.put_u16(*code);
                            w.put_u64(*datum);
                            w.put_str(detail);
                        }
                    }
                }
                w.put_u32(u32::try_from(reply.data.len()).expect("field too long"));
                return Some(&reply.data);
            }
            Response::LastMarked(fid) => {
                w.put_u8(tag::R_LAST_MARKED);
                fid.encode(w);
            }
            Response::Located(header) => {
                w.put_u8(tag::R_LOCATED);
                match header {
                    None => w.put_bool(false),
                    Some(h) => {
                        w.put_bool(true);
                        w.put_u32(u32::try_from(h.len()).expect("field too long"));
                        return Some(h);
                    }
                }
            }
            Response::AclCreated(aid) => {
                w.put_u8(tag::R_ACL_CREATED);
                aid.encode(w);
            }
            Response::Stats(s) => {
                w.put_u8(tag::R_STATS);
                s.encode(w);
            }
            Response::Metrics(json) => {
                w.put_u8(tag::R_METRICS);
                w.put_str(json);
            }
            Response::PeerData { data, hints } => {
                w.put_u8(tag::R_PEER_DATA);
                w.put_u32(hints.len() as u32);
                for h in hints {
                    h.encode(w);
                }
                match data {
                    None => w.put_bool(false),
                    Some(d) => {
                        w.put_bool(true);
                        w.put_u32(u32::try_from(d.len()).expect("field too long"));
                        return Some(d);
                    }
                }
            }
            Response::Err {
                code,
                datum,
                detail,
            } => {
                w.put_u8(tag::R_ERR);
                w.put_u16(*code);
                w.put_u64(*datum);
                w.put_str(detail);
            }
        }
        None
    }
}

impl Encode for Response {
    fn encode(&self, w: &mut ByteWriter) {
        if let Some(payload) = self.encode_split(w) {
            w.put_raw(payload);
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let t = r.get_u8()?;
        Ok(match t {
            tag::R_OK => Response::Ok,
            tag::R_DATA => Response::Data(r.get_shared_bytes()?),
            tag::R_BATCH => {
                let n = r.get_u32()? as usize;
                if n > crate::frame::MAX_FRAME_LEN / 16 {
                    return Err(SwarmError::corrupt("too many batch items"));
                }
                let mut items = Vec::with_capacity(n.min(1024));
                let mut claimed = 0u64;
                for _ in 0..n {
                    if r.get_bool()? {
                        let len = r.get_u32()?;
                        claimed += u64::from(len);
                        items.push(BatchItem::Data { len });
                    } else {
                        items.push(BatchItem::Err {
                            code: r.get_u16()?,
                            datum: r.get_u64()?,
                            detail: r.get_str()?,
                        });
                    }
                }
                let data = r.get_shared_bytes()?;
                if claimed != data.len() as u64 {
                    return Err(SwarmError::corrupt(format!(
                        "batch items claim {claimed} payload bytes, frame carries {}",
                        data.len()
                    )));
                }
                Response::Batch(BatchReply { items, data })
            }
            tag::R_LAST_MARKED => Response::LastMarked(Option::<FragmentId>::decode(r)?),
            tag::R_LOCATED => {
                if r.get_bool()? {
                    Response::Located(Some(r.get_shared_bytes()?))
                } else {
                    Response::Located(None)
                }
            }
            tag::R_ACL_CREATED => Response::AclCreated(Aid::decode(r)?),
            tag::R_STATS => Response::Stats(ServerStats::decode(r)?),
            tag::R_METRICS => Response::Metrics(r.get_str()?),
            tag::R_PEER_DATA => {
                let hints = decode_hints(r)?;
                let data = if r.get_bool()? {
                    Some(r.get_shared_bytes()?)
                } else {
                    None
                };
                Response::PeerData { data, hints }
            }
            tag::R_ERR => Response::Err {
                code: r.get_u16()?,
                datum: r.get_u64()?,
                detail: r.get_str()?,
            },
            other => {
                return Err(SwarmError::protocol(format!(
                    "unknown response tag {other}"
                )))
            }
        })
    }
}

/// A request encoded once, up front, so retries reuse both the header
/// bytes and the shared payload buffer.
///
/// The write pool prepares each `Store` exactly once before entering its
/// retry loop; every attempt (and every reconnect) then ships the same
/// header slice and the same [`Bytes`] payload. Nothing is re-encoded
/// and nothing is re-cloned, no matter how many times the send is
/// retried.
#[derive(Debug, Clone)]
pub struct PreparedRequest {
    request: Request,
    header: Vec<u8>,
    payload: Bytes,
}

impl PreparedRequest {
    /// Encodes `request`'s header and captures its payload view.
    pub fn new(request: Request) -> PreparedRequest {
        let mut w = ByteWriter::new();
        let _ = request.encode_split(&mut w);
        let payload = match &request {
            Request::Store { data, .. } => data.share(),
            _ => Bytes::new(),
        };
        PreparedRequest {
            request,
            header: w.into_bytes(),
            payload,
        }
    }

    /// The original request (for transports that dispatch in-process).
    pub fn request(&self) -> &Request {
        &self.request
    }

    /// The pre-encoded message header, including the payload length
    /// prefix. `header() ++ payload()` is the full encoded request.
    pub fn header(&self) -> &[u8] {
        &self.header
    }

    /// The bulk payload (empty for payload-free requests), aliasing the
    /// buffer the request was built from.
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_types::{BlockAddr, ServerId};

    fn roundtrip_req(req: Request) {
        let buf = req.encode_to_vec();
        assert_eq!(Request::decode_all(&buf).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let buf = resp.encode_to_vec();
        assert_eq!(Response::decode_all(&buf).unwrap(), resp);
    }

    fn fid(n: u64) -> FragmentId {
        FragmentId::new(ClientId::new(3), n)
    }

    #[test]
    fn all_requests_roundtrip() {
        roundtrip_req(Request::Store {
            fid: fid(1),
            marked: true,
            ranges: vec![StoreRange {
                offset: 0,
                len: 128,
                aid: Aid::new(5),
            }],
            data: vec![1, 2, 3, 4].into(),
        });
        roundtrip_req(Request::Read {
            fid: fid(2),
            offset: 17,
            len: 4096,
        });
        roundtrip_req(Request::Delete { fid: fid(3) });
        roundtrip_req(Request::Preallocate {
            fid: fid(4),
            len: 1 << 20,
        });
        roundtrip_req(Request::LastMarked);
        roundtrip_req(Request::Locate {
            fid: fid(5),
            header_len: 256,
        });
        roundtrip_req(Request::AclCreate {
            members: vec![ClientId::new(1), ClientId::new(2)],
        });
        roundtrip_req(Request::AclModify {
            aid: Aid::new(9),
            add: vec![ClientId::new(7)],
            remove: vec![],
        });
        roundtrip_req(Request::AclDelete { aid: Aid::new(9) });
        roundtrip_req(Request::Stat);
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::ReadBatch {
            reads: vec![
                ReadSpec {
                    fid: fid(6),
                    offset: 0,
                    len: 512,
                },
                ReadSpec {
                    fid: fid(7),
                    offset: 128,
                    len: 64,
                },
            ],
        });
        roundtrip_req(Request::ReadBatch { reads: vec![] });
        roundtrip_req(Request::PeerRead {
            addr: BlockAddr::new(fid(9), 64, 256),
            hints: vec![
                HintSpec {
                    addr: BlockAddr::new(fid(10), 0, 512),
                    holder: ClientId::new(3),
                },
                HintSpec {
                    addr: BlockAddr::new(fid(11), 128, 128),
                    holder: ClientId::new(4),
                },
            ],
        });
        roundtrip_req(Request::PeerRead {
            addr: BlockAddr::new(fid(9), 0, 32),
            hints: vec![],
        });
        roundtrip_req(Request::PeerGossip {
            hints: vec![HintSpec {
                addr: BlockAddr::new(fid(12), 0, 64),
                holder: ClientId::new(5),
            }],
        });
        roundtrip_req(Request::PeerGossip { hints: vec![] });
    }

    #[test]
    fn all_responses_roundtrip() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Data(vec![9; 100].into()));
        roundtrip_resp(Response::LastMarked(Some(fid(8))));
        roundtrip_resp(Response::LastMarked(None));
        roundtrip_resp(Response::Located(Some(vec![1, 2].into())));
        roundtrip_resp(Response::Located(None));
        roundtrip_resp(Response::AclCreated(Aid::new(44)));
        roundtrip_resp(Response::Stats(ServerStats {
            fragments: 1,
            bytes: 2,
            stores: 3,
            reads: 4,
            deletes: 5,
            capacity_fragments: 6,
        }));
        roundtrip_resp(Response::Metrics("{\"counters\": {}}".into()));
        roundtrip_resp(Response::Err {
            code: 4,
            datum: 2,
            detail: "denied".into(),
        });
        roundtrip_resp(Response::Batch(BatchReply {
            items: vec![
                BatchItem::Data { len: 3 },
                BatchItem::Err {
                    code: 1,
                    datum: 42,
                    detail: String::new(),
                },
                BatchItem::Data { len: 2 },
            ],
            data: vec![1, 2, 3, 4, 5].into(),
        }));
        roundtrip_resp(Response::Batch(BatchReply {
            items: vec![],
            data: Bytes::new(),
        }));
        roundtrip_resp(Response::PeerData {
            data: Some(vec![6; 300].into()),
            hints: vec![HintSpec {
                addr: BlockAddr::new(fid(13), 0, 300),
                holder: ClientId::new(6),
            }],
        });
        roundtrip_resp(Response::PeerData {
            data: None,
            hints: vec![],
        });
    }

    #[test]
    fn batch_reply_results_roundtrip_without_copying() {
        let results = vec![
            Ok(Bytes::from(vec![7u8; 100])),
            Err(SwarmError::FragmentNotFound(fid(5))),
            Ok(Bytes::from(vec![9u8; 50])),
        ];
        let reply = BatchReply::from_results(results);
        let wire = Bytes::from(Response::Batch(reply).encode_to_vec());
        let Response::Batch(back) = Response::decode_all_shared(&wire).unwrap() else {
            panic!("wrong variant");
        };
        // The shared payload aliases the frame; every Ok slice does too.
        let frame_tail = wire[wire.len() - 150..].as_ptr();
        assert_eq!(back.data.as_ptr(), frame_tail);
        let split = back.into_results();
        assert_eq!(split.len(), 3);
        assert_eq!(split[0].as_ref().unwrap().as_ptr(), frame_tail);
        assert_eq!(split[0].as_ref().unwrap().as_slice(), &[7u8; 100][..]);
        assert!(matches!(
            split[1],
            Err(SwarmError::FragmentNotFound(f)) if f == fid(5)
        ));
        assert_eq!(split[2].as_ref().unwrap().as_slice(), &[9u8; 50][..]);
    }

    #[test]
    fn batch_reply_with_bad_length_table_is_corrupt() {
        let reply = BatchReply {
            items: vec![BatchItem::Data { len: 10 }],
            data: vec![1, 2, 3].into(),
        };
        let wire = Response::Batch(reply).encode_to_vec();
        let err = Response::decode_all(&wire).unwrap_err();
        assert!(matches!(err, SwarmError::Corrupt(_)), "{err}");
    }

    #[test]
    fn unknown_tag_is_protocol_error() {
        let err = Request::decode_all(&[200]).unwrap_err();
        assert!(matches!(err, SwarmError::Protocol(_)));
        let err = Response::decode_all(&[3]).unwrap_err();
        assert!(matches!(err, SwarmError::Protocol(_)));
    }

    #[test]
    fn typed_errors_survive_the_wire() {
        let cases = vec![
            SwarmError::FragmentNotFound(fid(7)),
            SwarmError::FragmentExists(fid(8)),
            SwarmError::RangeOutOfBounds {
                addr: BlockAddr::new(fid(1), 10, 20),
                stored: 5,
            },
            SwarmError::AccessDenied {
                aid: Aid::new(3),
                op: "read",
            },
            SwarmError::AclNotFound(Aid::new(4)),
            SwarmError::OutOfSpace("full".into()),
            SwarmError::Protocol("bad".into()),
            SwarmError::corrupt("crc"),
            SwarmError::Busy(ServerId::new(6)),
        ];
        for err in cases {
            let resp = Response::from_error(&err);
            let buf = resp.encode_to_vec();
            let back = Response::decode_all(&buf)
                .unwrap()
                .into_result()
                .unwrap_err();
            // Same variant family (FragmentNotFound stays FragmentNotFound, etc.)
            match (&err, &back) {
                (SwarmError::FragmentNotFound(a), SwarmError::FragmentNotFound(b)) => {
                    assert_eq!(a, b)
                }
                (SwarmError::FragmentExists(a), SwarmError::FragmentExists(b)) => assert_eq!(a, b),
                (SwarmError::RangeOutOfBounds { .. }, SwarmError::Corrupt(_)) => {}
                (
                    SwarmError::AccessDenied { aid: a, .. },
                    SwarmError::AccessDenied { aid: b, .. },
                ) => {
                    assert_eq!(a, b)
                }
                (SwarmError::AclNotFound(a), SwarmError::AclNotFound(b)) => assert_eq!(a, b),
                (SwarmError::OutOfSpace(_), SwarmError::OutOfSpace(_)) => {}
                (SwarmError::Protocol(_), SwarmError::Protocol(_)) => {}
                (SwarmError::Corrupt(_), SwarmError::Corrupt(_)) => {}
                (SwarmError::Busy(a), SwarmError::Busy(b)) => assert_eq!(a, b),
                (a, b) => panic!("variant mismatch: {a:?} -> {b:?}"),
            }
        }
    }

    #[test]
    fn ok_response_into_result_is_ok() {
        assert!(Response::Ok.into_result().is_ok());
    }

    #[test]
    fn encode_split_concat_equals_encode_for_payload_variants() {
        let store = Request::Store {
            fid: fid(1),
            marked: true,
            ranges: vec![StoreRange {
                offset: 4,
                len: 9,
                aid: Aid::new(2),
            }],
            data: vec![0xaau8; 300].into(),
        };
        let mut w = ByteWriter::new();
        let payload = store.encode_split(&mut w).expect("store has a payload");
        let mut joined = w.as_slice().to_vec();
        joined.extend_from_slice(payload);
        assert_eq!(joined, store.encode_to_vec());

        for resp in [
            Response::Data(vec![7u8; 64].into()),
            Response::Located(Some(b"prefix".into())),
            Response::Batch(BatchReply::from_results(vec![
                Ok(vec![1u8; 32].into()),
                Ok(vec![2u8; 16].into()),
            ])),
            Response::PeerData {
                data: Some(vec![8u8; 48].into()),
                hints: vec![HintSpec {
                    addr: BlockAddr::new(fid(3), 0, 48),
                    holder: ClientId::new(2),
                }],
            },
        ] {
            let mut w = ByteWriter::new();
            let payload = resp.encode_split(&mut w).expect("has a payload");
            let mut joined = w.as_slice().to_vec();
            joined.extend_from_slice(payload);
            assert_eq!(joined, resp.encode_to_vec());
        }
    }

    #[test]
    fn encode_split_is_full_encoding_for_payload_free_variants() {
        for req in [Request::Ping, Request::Stat, Request::LastMarked] {
            let mut w = ByteWriter::new();
            assert!(req.encode_split(&mut w).is_none());
            assert_eq!(w.as_slice(), req.encode_to_vec());
        }
        for resp in [
            Response::Ok,
            Response::Located(None),
            Response::PeerData {
                data: None,
                hints: vec![],
            },
        ] {
            let mut w = ByteWriter::new();
            assert!(resp.encode_split(&mut w).is_none());
            assert_eq!(w.as_slice(), resp.encode_to_vec());
        }
    }

    #[test]
    fn prepared_request_reuses_header_and_payload() {
        let data = Bytes::from(vec![3u8; 1024]);
        let data_ptr = data.as_ptr();
        let prepared = PreparedRequest::new(Request::Store {
            fid: fid(9),
            marked: false,
            ranges: vec![],
            data,
        });
        // The payload aliases the original buffer — no clone happened.
        assert_eq!(prepared.payload().as_ptr(), data_ptr);
        // header ++ payload is the canonical encoding.
        let mut joined = prepared.header().to_vec();
        joined.extend_from_slice(prepared.payload());
        assert_eq!(joined, prepared.request().encode_to_vec());
        // Payload-free requests have an empty payload and full header.
        let ping = PreparedRequest::new(Request::Ping);
        assert!(ping.payload().is_empty());
        assert_eq!(ping.header(), Request::Ping.encode_to_vec());
    }

    #[test]
    fn shared_decode_aliases_the_frame_buffer() {
        let req = Request::Store {
            fid: fid(4),
            marked: false,
            ranges: vec![],
            data: vec![0x5au8; 256].into(),
        };
        let wire = Bytes::from(req.encode_to_vec());
        let decoded = Request::decode_all_shared(&wire).unwrap();
        let Request::Store { data, .. } = decoded else {
            panic!("wrong variant");
        };
        assert_eq!(data, vec![0x5au8; 256]);
        // Zero-copy: the decoded payload points into the wire buffer.
        assert_eq!(data.as_ptr(), wire[wire.len() - 256..].as_ptr());
    }
}
