//! In-process transport: direct dispatch to registered handlers, with
//! fault injection.
//!
//! This stands in for the prototype's switched 100 Mb/s Ethernet when the
//! whole cluster runs inside one process (tests, examples, benchmarks).
//! Requests still travel through the full encode → frame → decode path so
//! the exact bytes that would cross a socket are exercised; only the socket
//! itself is elided.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use swarm_types::{Bytes, ClientId, Decode, Encode, Result, ServerId, SwarmError};

use crate::fault::FaultPlan;
use crate::handler::RequestHandler;
use crate::proto::{Request, Response};
use crate::transport::{Connection, PeerHost, Transport};

struct Member {
    handler: Arc<dyn RequestHandler>,
    faults: Arc<FaultPlan>,
}

struct MemMetrics {
    requests: swarm_metrics::Counter,
    injected_faults: swarm_metrics::Counter,
    bytes_out: swarm_metrics::Counter,
    bytes_in: swarm_metrics::Counter,
    call_us: swarm_metrics::Histogram,
}

fn mem_metrics() -> &'static MemMetrics {
    static M: std::sync::OnceLock<MemMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| MemMetrics {
        requests: swarm_metrics::counter("net.mem.requests"),
        injected_faults: swarm_metrics::counter("net.mem.injected_faults"),
        bytes_out: swarm_metrics::counter("net.mem.bytes_out"),
        bytes_in: swarm_metrics::counter("net.mem.bytes_in"),
        call_us: swarm_metrics::histogram("net.mem.call_us"),
    })
}

/// An in-process cluster of storage servers.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use swarm_net::{MemTransport, Transport, Request};
/// use swarm_types::{ClientId, ServerId};
///
/// # fn handler() -> Arc<dyn swarm_net::RequestHandler> { unimplemented!() }
/// let transport = MemTransport::new();
/// transport.register(ServerId::new(0), handler());
/// let mut conn = transport.connect(ServerId::new(0), ClientId::new(1))?;
/// let reply = conn.call(&Request::Ping)?;
/// # Ok::<(), swarm_types::SwarmError>(())
/// ```
#[derive(Default)]
pub struct MemTransport {
    members: RwLock<BTreeMap<ServerId, Member>>,
    /// Client-embedded peer responders (cooperative cache). Kept apart from
    /// `members` so they never appear in [`Transport::servers`] — locate
    /// broadcasts and reconstruction fan-out must not dial peers.
    peers: RwLock<BTreeMap<ServerId, Arc<dyn RequestHandler>>>,
    /// When true, requests/responses are serialized through the wire codec
    /// on every call (catches codec asymmetries in tests; small overhead).
    verify_codec: bool,
}

impl MemTransport {
    /// Creates an empty cluster that round-trips every message through the
    /// wire codec (the safe default).
    pub fn new() -> Self {
        MemTransport {
            members: RwLock::new(BTreeMap::new()),
            peers: RwLock::new(BTreeMap::new()),
            verify_codec: true,
        }
    }

    /// Creates an empty cluster that skips codec round-trips, dispatching
    /// requests by reference. Use for throughput-sensitive benchmarks.
    pub fn new_fast() -> Self {
        MemTransport {
            members: RwLock::new(BTreeMap::new()),
            peers: RwLock::new(BTreeMap::new()),
            verify_codec: false,
        }
    }

    /// Adds (or replaces) a server.
    pub fn register(&self, server: ServerId, handler: Arc<dyn RequestHandler>) {
        self.members.write().insert(
            server,
            Member {
                handler,
                faults: Arc::new(FaultPlan::new()),
            },
        );
    }

    /// Removes a server entirely (as opposed to marking it down).
    pub fn deregister(&self, server: ServerId) {
        self.members.write().remove(&server);
    }

    /// Marks a server down or back up. Down servers refuse connections and
    /// fail in-flight calls with [`SwarmError::ServerUnavailable`].
    pub fn set_down(&self, server: ServerId, down: bool) {
        if let Some(m) = self.members.read().get(&server) {
            m.faults.set_down(down);
        }
    }

    /// Access the fault plan of a server for fine-grained scenarios.
    pub fn faults(&self, server: ServerId) -> Option<Arc<FaultPlan>> {
        self.members.read().get(&server).map(|m| m.faults.clone())
    }
}

impl Transport for MemTransport {
    fn connect(&self, server: ServerId, client: ClientId) -> Result<Box<dyn Connection>> {
        let members = self.members.read();
        let member = match members.get(&server) {
            Some(member) => member,
            None => {
                drop(members);
                // Not a cluster member — maybe a published peer responder.
                let handler = self
                    .peers
                    .read()
                    .get(&server)
                    .cloned()
                    .ok_or(SwarmError::ServerUnavailable(server))?;
                return Ok(Box::new(MemConnection {
                    server,
                    client,
                    handler,
                    faults: Arc::new(FaultPlan::new()),
                    verify_codec: self.verify_codec,
                }));
            }
        };
        if member.faults.is_down() {
            return Err(SwarmError::ServerUnavailable(server));
        }
        Ok(Box::new(MemConnection {
            server,
            client,
            handler: member.handler.clone(),
            faults: member.faults.clone(),
            verify_codec: self.verify_codec,
        }))
    }

    fn servers(&self) -> Vec<ServerId> {
        self.members.read().keys().copied().collect()
    }
}

impl PeerHost for MemTransport {
    fn publish(&self, peer: ServerId, handler: Arc<dyn RequestHandler>) -> Result<()> {
        self.peers.write().insert(peer, handler);
        Ok(())
    }

    fn withdraw(&self, peer: ServerId) {
        self.peers.write().remove(&peer);
    }
}

struct MemConnection {
    server: ServerId,
    client: ClientId,
    handler: Arc<dyn RequestHandler>,
    faults: Arc<FaultPlan>,
    verify_codec: bool,
}

impl Connection for MemConnection {
    fn call(&mut self, request: &Request) -> Result<Response> {
        let m = mem_metrics();
        m.requests.inc();
        if self.faults.on_call() {
            m.injected_faults.inc();
            swarm_metrics::trace!(
                "net.mem.fault",
                "injected failure calling server {}",
                self.server
            );
            return Err(SwarmError::ServerUnavailable(self.server));
        }
        let span = m.call_us.span("net.mem.call");
        let response = if self.verify_codec {
            // Round-trip through the exact bytes a socket would carry,
            // decoding them shared just like the TCP path does.
            let wire = Bytes::from(request.encode_to_vec());
            m.bytes_out.add(wire.len() as u64);
            let decoded = Request::decode_all_shared(&wire)?;
            let response = self.handler.handle(self.client, decoded);
            let wire = Bytes::from(response.encode_to_vec());
            m.bytes_in.add(wire.len() as u64);
            Response::decode_all_shared(&wire)?
        } else {
            self.handler.handle(self.client, request.clone())
        };
        drop(span);
        Ok(response)
    }

    fn server(&self) -> ServerId {
        self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::testing::EchoStore;
    use swarm_types::FragmentId;

    fn cluster(n: u32) -> MemTransport {
        let t = MemTransport::new();
        for i in 0..n {
            t.register(ServerId::new(i), Arc::new(EchoStore::default()));
        }
        t
    }

    #[test]
    fn connect_and_ping() {
        let t = cluster(1);
        let mut conn = t.connect(ServerId::new(0), ClientId::new(0)).unwrap();
        assert_eq!(conn.call(&Request::Ping).unwrap(), Response::Ok);
    }

    #[test]
    fn connect_to_unknown_server_fails() {
        let t = cluster(1);
        match t.connect(ServerId::new(9), ClientId::new(0)) {
            Err(err) => assert!(matches!(err, SwarmError::ServerUnavailable(_))),
            Ok(_) => panic!("connect to unknown server should fail"),
        }
    }

    #[test]
    fn down_server_refuses_connections_and_calls() {
        let t = cluster(2);
        let mut conn = t.connect(ServerId::new(1), ClientId::new(0)).unwrap();
        t.set_down(ServerId::new(1), true);
        assert!(conn.call(&Request::Ping).is_err());
        assert!(t.connect(ServerId::new(1), ClientId::new(0)).is_err());
        // Other servers unaffected.
        assert!(t.connect(ServerId::new(0), ClientId::new(0)).is_ok());
    }

    #[test]
    fn server_recovers_after_set_down_false() {
        let t = cluster(1);
        t.set_down(ServerId::new(0), true);
        t.set_down(ServerId::new(0), false);
        let mut conn = t.connect(ServerId::new(0), ClientId::new(0)).unwrap();
        assert_eq!(conn.call(&Request::Ping).unwrap(), Response::Ok);
    }

    #[test]
    fn store_read_through_codec_path() {
        let t = cluster(1);
        let mut conn = t.connect(ServerId::new(0), ClientId::new(2)).unwrap();
        let fid = FragmentId::new(ClientId::new(2), 0);
        let data = vec![7u8; 1024];
        conn.call(&Request::Store {
            fid,
            marked: false,
            ranges: vec![],
            data: data.clone().into(),
        })
        .unwrap()
        .into_result()
        .unwrap();
        let resp = conn
            .call(&Request::Read {
                fid,
                offset: 100,
                len: 24,
            })
            .unwrap();
        assert_eq!(resp, Response::Data(data[100..124].to_vec().into()));
    }

    #[test]
    fn servers_listed_in_order() {
        let t = cluster(4);
        let ids: Vec<u32> = t.servers().iter().map(|s| s.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deregister_removes_server() {
        let t = cluster(2);
        t.deregister(ServerId::new(0));
        assert_eq!(t.servers(), vec![ServerId::new(1)]);
    }

    #[test]
    fn published_peers_are_dialable_but_not_listed() {
        use crate::transport::{peer_server_id, PeerHost};
        let t = cluster(2);
        let peer = peer_server_id(ClientId::new(9));
        t.publish(peer, Arc::new(EchoStore::default())).unwrap();
        // Not a cluster member: broadcasts and locate must skip it.
        assert_eq!(t.servers(), vec![ServerId::new(0), ServerId::new(1)]);
        let mut conn = t.connect(peer, ClientId::new(1)).unwrap();
        assert_eq!(conn.call(&Request::Ping).unwrap(), Response::Ok);
        t.withdraw(peer);
        assert!(t.connect(peer, ClientId::new(1)).is_err());
    }
}
