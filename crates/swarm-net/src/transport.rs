//! Client-side transport abstraction.

use std::sync::Arc;

use swarm_types::{ClientId, Result, ServerId};

use crate::handler::RequestHandler;
use crate::proto::{PreparedRequest, Request, Response};

/// An RPC that has been shipped but whose response has not been consumed.
///
/// [`Connection::start_prepared`] returns one of these; pipelined callers
/// hold a window of them and [`PendingCall::wait`] each when they choose,
/// in any order. Transports without genuine pipelining complete the call
/// inside `start_prepared` and hand back a `Ready` — callers get identical
/// semantics (window degrades to 1 effective slot) with no special-casing.
pub enum PendingCall {
    /// The call already completed (blocking transports, or an error at
    /// submission time).
    Ready(Result<Response>),
    /// The call is in flight; the closure blocks until its response lands.
    Deferred(Box<dyn FnOnce() -> Result<Response> + Send>),
}

impl PendingCall {
    /// Wraps an already-completed call.
    pub fn ready(result: Result<Response>) -> PendingCall {
        PendingCall::Ready(result)
    }

    /// Wraps an in-flight call whose completion `wait` will block on.
    pub fn deferred(wait: impl FnOnce() -> Result<Response> + Send + 'static) -> PendingCall {
        PendingCall::Deferred(Box::new(wait))
    }

    /// Blocks until the response is available and returns it.
    ///
    /// # Errors
    ///
    /// As for [`Connection::call`].
    pub fn wait(self) -> Result<Response> {
        match self {
            PendingCall::Ready(r) => r,
            PendingCall::Deferred(f) => f(),
        }
    }
}

/// A live connection from a client to one storage server.
pub trait Connection: Send {
    /// Sends a request and waits for its reply.
    ///
    /// # Errors
    ///
    /// Returns [`swarm_types::SwarmError::ServerUnavailable`] (or an I/O
    /// error) if the server cannot be reached; protocol-level failures are
    /// returned inside the [`Response`] (`Response::Err`) so callers can
    /// distinguish "server said no" from "server gone".
    fn call(&mut self, request: &Request) -> Result<Response>;

    /// Sends a pre-encoded request (see [`PreparedRequest`]).
    ///
    /// Retry loops prepare a request once and call this on every attempt;
    /// wire transports override it to reuse the prepared header and
    /// payload without re-encoding. The default delegates to
    /// [`Connection::call`] for transports that dispatch in-process.
    ///
    /// # Errors
    ///
    /// As for [`Connection::call`].
    fn call_prepared(&mut self, prepared: &PreparedRequest) -> Result<Response> {
        self.call(prepared.request())
    }

    /// Ships a pre-encoded request without waiting for the reply.
    ///
    /// Pipelined callers keep up to [`Connection::pipeline_width`] of the
    /// returned [`PendingCall`]s outstanding and harvest them in any
    /// order. The default completes the call synchronously (one effective
    /// slot), which is correct for blocking and in-process transports; the
    /// mux transport overrides it to put many requests on the wire first.
    fn start_prepared(&mut self, prepared: &PreparedRequest) -> PendingCall {
        PendingCall::ready(self.call_prepared(prepared))
    }

    /// How many [`Connection::start_prepared`] calls can usefully be in
    /// flight at once on this connection (1 = no pipelining).
    fn pipeline_width(&self) -> usize {
        1
    }

    /// The server this connection talks to.
    fn server(&self) -> ServerId;
}

/// A factory for connections to the servers of a Swarm cluster.
///
/// Swarm clients keep one logical connection per server in their stripe
/// group; reconstruction additionally contacts every member returned by
/// [`Transport::servers`] (the paper's broadcast, §2.3.3).
pub trait Transport: Send + Sync {
    /// Opens a connection to `server`, authenticated as `client`.
    ///
    /// # Errors
    ///
    /// Returns [`swarm_types::SwarmError::ServerUnavailable`] if the server
    /// is unknown or down.
    fn connect(&self, server: ServerId, client: ClientId) -> Result<Box<dyn Connection>>;

    /// All servers currently part of the cluster, in id order.
    fn servers(&self) -> Vec<ServerId>;
}

impl<T: Transport + ?Sized> Transport for std::sync::Arc<T> {
    fn connect(&self, server: ServerId, client: ClientId) -> Result<Box<dyn Connection>> {
        (**self).connect(server, client)
    }

    fn servers(&self) -> Vec<ServerId> {
        (**self).servers()
    }
}

/// The reserved [`ServerId`] bit marking client-embedded peer responders.
///
/// Cooperative-cache peers are dialed through the same [`Transport`]
/// machinery as storage servers, but they are *not* cluster members: they
/// never appear in [`Transport::servers`], so locate broadcasts and
/// reconstruction fan-out skip them. Setting the top-ish bit keeps the two
/// id spaces disjoint without a second addressing scheme.
pub const PEER_SERVER_BASE: u32 = 0x4000_0000;

/// The [`ServerId`] a client's cooperative-cache responder is published at.
pub fn peer_server_id(client: ClientId) -> ServerId {
    ServerId::new(PEER_SERVER_BASE | client.raw())
}

/// A transport that can additionally host client-embedded peer responders
/// (the cooperative cache's `PeerRead` servers).
///
/// `publish` makes `handler` dialable at `peer` by every other client of
/// the same transport; `withdraw` removes it. Published peers are invisible
/// to [`Transport::servers`] — they serve point-to-point fetches only.
pub trait PeerHost: Send + Sync {
    /// Publishes `handler` at `peer` so other clients can dial it.
    ///
    /// # Errors
    ///
    /// Returns an error if the transport cannot host a responder (e.g. a
    /// TCP listener cannot be bound).
    fn publish(&self, peer: ServerId, handler: Arc<dyn RequestHandler>) -> Result<()>;

    /// Withdraws a previously published peer responder. Dials to `peer`
    /// fail with `ServerUnavailable` afterwards; idempotent.
    fn withdraw(&self, peer: ServerId);
}

impl<T: PeerHost + ?Sized> PeerHost for Arc<T> {
    fn publish(&self, peer: ServerId, handler: Arc<dyn RequestHandler>) -> Result<()> {
        (**self).publish(peer, handler)
    }

    fn withdraw(&self, peer: ServerId) {
        (**self).withdraw(peer)
    }
}

/// A transport that both dials servers and hosts peer responders — what
/// the cooperative cache needs from its network. Blanket-implemented for
/// every `Transport + PeerHost` (both built-in transports qualify).
pub trait PeerTransport: Transport + PeerHost {}

impl<T: Transport + PeerHost + ?Sized> PeerTransport for T {}

/// Sends `request` to every server in the cluster and collects the replies
/// that arrive, skipping servers that are down.
///
/// This is the paper's broadcast primitive (§2.3.3): "A client finds
/// fragment N-1 and N+1 by broadcasting to all storage servers." Servers
/// that cannot be reached are absent from the result — exactly the failure
/// reconstruction is designed to tolerate — but every skipped server is
/// counted in `net.broadcast_errors` and traced, so a half-deaf cluster
/// shows up in stats instead of silently degrading.
///
/// This serial, connection-per-call helper is kept for one-shot callers;
/// the read engine uses the parallel [`crate::ConnectionPool::broadcast`].
pub fn broadcast<T: Transport + ?Sized>(
    transport: &T,
    client: ClientId,
    request: &Request,
) -> Vec<(ServerId, Response)> {
    let mut replies = Vec::new();
    for server in transport.servers() {
        let conn = match transport.connect(server, client) {
            Ok(conn) => conn,
            Err(e) => {
                crate::pool::note_broadcast_error(server, &e);
                continue;
            }
        };
        let mut conn = conn;
        match conn.call(request) {
            Ok(resp) => replies.push((server, resp)),
            Err(e) => crate::pool::note_broadcast_error(server, &e),
        }
    }
    replies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemTransport;
    use crate::proto::Request;
    use std::sync::Arc;

    #[test]
    fn broadcast_skips_down_servers() {
        let transport = MemTransport::new();
        for i in 0..3 {
            transport.register(
                ServerId::new(i),
                Arc::new(crate::handler::testing::EchoStore::default()),
            );
        }
        transport.set_down(ServerId::new(1), true);
        let replies = broadcast(&transport, ClientId::new(0), &Request::Ping);
        let ids: Vec<u32> = replies.iter().map(|(s, _)| s.raw()).collect();
        assert_eq!(ids, vec![0, 2]);
    }
}
