//! Request-ID multiplexing: many in-flight RPCs on one connection.
//!
//! The blocking client dedicates a socket (and a parked thread) to each
//! in-flight call, which is why the connection pool and the parallel read
//! engine need several sockets per server. A multiplexed channel carries
//! any number of concurrent calls on a single socket: each request frame
//! is prefixed with a 64-bit request id, the server echoes the id on the
//! response frame, and the channel matches responses to waiting callers
//! by id — order on the wire no longer matters.
//!
//! Negotiation happens in the handshake. A classic hello frame is exactly
//! the 4-byte [`ClientId`] encoding; a mux hello is [`MUX_HELLO_MAGIC`]
//! followed by the client id (8 bytes), which a classic frame can never
//! be. Servers answer both with the plain [`ServerId`] frame, so either
//! side can run either runtime.
//!
//! A mux frame payload is `id:u64le ++ message` in both directions.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use swarm_types::{Bytes, ClientId, Decode, Encode, Result, ServerId, SwarmError};

use crate::frame::{frame_header_for, FrameProgress, FrameReader};
use crate::reactor::{Ctx, Handle, Ready, Source};

/// First four bytes of a multiplexed hello frame: `"MUX1"` little-endian.
/// A classic hello is a bare 4-byte client id, so an 8-byte frame opening
/// with this magic is unambiguous.
pub(crate) const MUX_HELLO_MAGIC: [u8; 4] = *b"MUX1";

/// Length of the request-id prefix on every mux frame payload.
const MUX_ID_PREFIX: usize = 8;

/// Builds the hello frame payload announcing a multiplexed session.
pub(crate) fn encode_mux_hello(client: ClientId) -> Vec<u8> {
    let mut hello = Vec::with_capacity(8);
    hello.extend_from_slice(&MUX_HELLO_MAGIC);
    let mut w = swarm_types::ByteWriter::new();
    client.encode(&mut w);
    hello.extend_from_slice(w.as_slice());
    hello
}

/// Decodes a hello frame payload: `(client, is_mux)`.
///
/// # Errors
///
/// Returns a decode error if the frame is neither a classic client-id
/// hello nor a well-formed mux hello.
pub(crate) fn parse_hello(frame: &[u8]) -> Result<(ClientId, bool)> {
    if frame.len() >= 8 && frame[..4] == MUX_HELLO_MAGIC {
        let client = ClientId::decode_all(&frame[4..])?;
        return Ok((client, true));
    }
    Ok((ClientId::decode_all(frame)?, false))
}

/// One segment of queued output: either an owned header or a shared
/// payload view (a `Store`'s fragment bytes travel to the socket without
/// ever being copied into a contiguous message).
pub(crate) enum Seg {
    /// Owned bytes (frame header + message header).
    Owned(Vec<u8>),
    /// Shared payload view.
    Shared(Bytes),
}

impl Seg {
    pub(crate) fn as_slice(&self) -> &[u8] {
        match self {
            Seg::Owned(v) => v,
            Seg::Shared(b) => b,
        }
    }
}

/// A waiting caller's slot: `None` until the response (or failure) lands.
type PendingSlot = Option<Result<Bytes>>;

struct MuxState {
    next_id: u64,
    /// Bulk frames (requests carrying a payload — stores). Each frame is
    /// a contiguous run of segments: `Owned(head)` then `Shared(payload)`.
    outbox: VecDeque<Seg>,
    /// Payload-free frames (reads, locates, pings): drained ahead of the
    /// bulk lane so a windowed writer's fragment payloads cannot
    /// head-of-line-block a read on the shared socket. Safe to reorder
    /// across lanes: responses are matched by request id, and the
    /// durability contract orders stores via flush, not the wire.
    priority: VecDeque<Seg>,
    pending: HashMap<u64, PendingSlot>,
    /// Set when the socket died; every call fails fast afterwards.
    dead: bool,
    /// High-water mark of concurrently pending calls (diagnostic).
    inflight_peak: usize,
}

/// The caller-facing half of a multiplexed connection: assign an id,
/// queue the frame, wake the reactor, wait on the condvar for the
/// response with that id.
pub(crate) struct MuxChannel {
    server: ServerId,
    state: Mutex<MuxState>,
    cv: Condvar,
    handle: OnceLock<Handle>,
}

impl MuxChannel {
    pub(crate) fn new(server: ServerId) -> Arc<MuxChannel> {
        Arc::new(MuxChannel {
            server,
            state: Mutex::new(MuxState {
                next_id: 1,
                outbox: VecDeque::new(),
                priority: VecDeque::new(),
                pending: HashMap::new(),
                dead: false,
                inflight_peak: 0,
            }),
            cv: Condvar::new(),
            handle: OnceLock::new(),
        })
    }

    pub(crate) fn set_handle(&self, handle: Handle) {
        let _ = self.handle.set(handle);
    }

    /// True until the underlying socket fails.
    pub(crate) fn is_alive(&self) -> bool {
        !self.state.lock().dead
    }

    /// High-water mark of concurrently in-flight calls on this channel.
    pub(crate) fn inflight_peak(&self) -> usize {
        self.state.lock().inflight_peak
    }

    /// Marks the channel dead and asks the reactor to drop its source,
    /// closing the socket. Pending calls fail with `ServerUnavailable`.
    pub(crate) fn shutdown(&self) {
        self.fail_all();
        if let Some(h) = self.handle.get() {
            h.close();
        }
    }

    /// Fails every pending call and poisons the channel.
    pub(crate) fn fail_all(&self) {
        let mut st = self.state.lock();
        st.dead = true;
        st.outbox.clear();
        st.priority.clear();
        for slot in st.pending.values_mut() {
            if slot.is_none() {
                *slot = Some(Err(SwarmError::ServerUnavailable(self.server)));
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Queues `header ++ payload` as one request frame, wakes the reactor,
    /// and returns the request id without waiting for the response. Pair
    /// with [`MuxChannel::finish`]; a caller may hold any number of
    /// outstanding ids, which is what pipelined stores ride on.
    pub(crate) fn begin(&self, header: &[u8], payload: &Bytes) -> Result<u64> {
        let id = {
            let mut st = self.state.lock();
            if st.dead {
                return Err(SwarmError::ServerUnavailable(self.server));
            }
            let id = st.next_id;
            st.next_id += 1;
            let id_bytes = id.to_le_bytes();
            let fh = frame_header_for(&[&id_bytes, header, payload])?;
            let mut head = Vec::with_capacity(12 + MUX_ID_PREFIX + header.len());
            head.extend_from_slice(&fh);
            head.extend_from_slice(&id_bytes);
            head.extend_from_slice(header);
            if payload.is_empty() {
                // Read/control frame: the priority lane, so it cannot
                // queue behind a window's worth of store payloads.
                st.priority.push_back(Seg::Owned(head));
            } else {
                st.outbox.push_back(Seg::Owned(head));
                st.outbox.push_back(Seg::Shared(payload.share()));
            }
            st.pending.insert(id, None);
            let inflight = st.pending.len();
            if inflight > st.inflight_peak {
                st.inflight_peak = inflight;
            }
            id
        };
        if let Some(h) = self.handle.get() {
            h.notify();
        }
        Ok(id)
    }

    /// Blocks until the response for `id` arrives, `deadline` passes, or
    /// the channel dies. Ids may be finished in any order regardless of
    /// the order their responses arrive.
    pub(crate) fn finish(&self, id: u64, deadline: Option<Instant>) -> Result<Bytes> {
        // Fixed deadline, not a fresh `timeout` per wakeup: every response
        // notify_all()s all waiters, so re-waiting the full duration after
        // each wakeup would let a busy channel postpone this call's
        // timeout indefinitely.
        let mut st = self.state.lock();
        loop {
            if let Some(Some(_)) = st.pending.get(&id) {
                // Response (or failure) landed; take it.
                return st.pending.remove(&id).flatten().expect("slot filled");
            }
            if st.dead {
                st.pending.remove(&id);
                return Err(SwarmError::ServerUnavailable(self.server));
            }
            match deadline {
                None => self.cv.wait(&mut st),
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    // The shim's wait_for returns true on timeout.
                    if remaining.is_zero() || self.cv.wait_for(&mut st, remaining) {
                        if let Some(Some(_)) = st.pending.get(&id) {
                            return st.pending.remove(&id).flatten().expect("slot filled");
                        }
                        // Abandon the call; a late response finds no slot
                        // and is dropped by the source.
                        st.pending.remove(&id);
                        return Err(SwarmError::ServerUnavailable(self.server));
                    }
                }
            }
        }
    }

    /// Ships `header ++ payload` as one request frame and blocks until the
    /// response with the matching id arrives, the timeout lapses, or the
    /// channel dies.
    pub(crate) fn call(
        &self,
        header: &[u8],
        payload: &Bytes,
        timeout: Option<Duration>,
    ) -> Result<Bytes> {
        let id = self.begin(header, payload)?;
        self.finish(id, timeout.map(|t| Instant::now() + t))
    }
}

/// The reactor half of a multiplexed connection: drains the channel's
/// outbox to the socket and routes response frames back by id.
pub(crate) struct MuxSource {
    stream: TcpStream,
    channel: Arc<MuxChannel>,
    reader: FrameReader,
    /// Segments taken from the channel outbox, front partially written.
    local: VecDeque<Seg>,
    front_off: usize,
}

impl MuxSource {
    pub(crate) fn new(stream: TcpStream, channel: Arc<MuxChannel>) -> MuxSource {
        MuxSource {
            stream,
            channel,
            reader: FrameReader::new(),
            local: VecDeque::new(),
            front_off: 0,
        }
    }

    /// Moves queued segments from the shared outbox into the local write
    /// queue (shrinking the time the channel lock is held to a swap).
    /// The priority lane drains first; lanes are concatenated, never
    /// interleaved, and `local` is only refilled when empty, so every
    /// frame's head/payload segments stay contiguous on the wire.
    fn take_outbox(&mut self) {
        let mut st = self.channel.state.lock();
        while let Some(seg) = st.priority.pop_front() {
            self.local.push_back(seg);
        }
        while let Some(seg) = st.outbox.pop_front() {
            self.local.push_back(seg);
        }
    }

    /// Writes until the socket would block or the queues drain. Returns
    /// false on a fatal socket error.
    fn pump_write(&mut self) -> bool {
        loop {
            if self.local.is_empty() {
                self.take_outbox();
                if self.local.is_empty() {
                    return true;
                }
            }
            let front = &self.local[0];
            let slice = &front.as_slice()[self.front_off..];
            match (&self.stream).write(slice) {
                Ok(0) => return false,
                Ok(n) => {
                    crate::tcp::metrics().client_bytes_out.add(n as u64);
                    self.front_off += n;
                    if self.front_off == front.as_slice().len() {
                        self.local.pop_front();
                        self.front_off = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Reads response frames and completes their pending calls. Returns
    /// false on EOF, a fatal socket error, or a corrupt stream.
    fn pump_read(&mut self) -> bool {
        loop {
            match self.reader.read_from(&mut &self.stream) {
                Ok(FrameProgress::Frame(frame)) => {
                    crate::tcp::metrics()
                        .client_bytes_in
                        .add(frame.len() as u64);
                    if frame.len() < MUX_ID_PREFIX {
                        return false; // not a mux frame: protocol breach
                    }
                    let id = u64::from_le_bytes(frame[..MUX_ID_PREFIX].try_into().unwrap());
                    let body = Bytes::from(frame).slice(MUX_ID_PREFIX..);
                    let mut st = self.channel.state.lock();
                    if let Some(slot) = st.pending.get_mut(&id) {
                        *slot = Some(Ok(body));
                        drop(st);
                        self.channel.cv.notify_all();
                    }
                    // No slot: the caller timed out and abandoned the id.
                }
                Ok(FrameProgress::Blocked) => return true,
                Ok(FrameProgress::Eof) | Err(_) => return false,
            }
        }
    }
}

impl Source for MuxSource {
    fn fd(&self) -> epoll::RawFd {
        #[cfg(target_os = "linux")]
        {
            use std::os::fd::AsRawFd;
            self.stream.as_raw_fd()
        }
        #[cfg(not(target_os = "linux"))]
        {
            -1
        }
    }

    fn interest(&self) -> epoll::Interest {
        let pending_output = !self.local.is_empty() || {
            let st = self.channel.state.lock();
            !st.outbox.is_empty() || !st.priority.is_empty()
        };
        epoll::Interest {
            readable: true,
            writable: pending_output,
        }
    }

    fn on_ready(&mut self, readable: bool, writable: bool, _ctx: &mut Ctx<'_>) -> Ready {
        if writable && !self.pump_write() {
            self.channel.fail_all();
            return Ready::Close;
        }
        if readable && !self.pump_read() {
            self.channel.fail_all();
            return Ready::Close;
        }
        Ready::Continue
    }

    fn on_notify(&mut self, _ctx: &mut Ctx<'_>) -> Ready {
        if !self.pump_write() {
            self.channel.fail_all();
            return Ready::Close;
        }
        Ready::Continue
    }
}

impl Drop for MuxSource {
    fn drop(&mut self) {
        // The reactor dropped us (shutdown or Close): callers must not
        // wait out their full timeout for a response that cannot come.
        self.channel.fail_all();
    }
}

/// Blocking dial + handshake for a multiplexed connection: connect,
/// announce mux, validate the server's identity, then flip the socket to
/// non-blocking for the reactor. Uses `timeout` for the handshake I/O.
pub(crate) fn mux_dial(
    addr: std::net::SocketAddr,
    server: ServerId,
    client: ClientId,
    timeout: Option<Duration>,
) -> Result<TcpStream> {
    let unavailable = |_| SwarmError::ServerUnavailable(server);
    // Bound the dial by the call timeout: the OS default connect timeout
    // can run to minutes, far longer than any caller is willing to wait.
    let stream = match timeout {
        Some(t) => TcpStream::connect_timeout(&addr, t),
        None => TcpStream::connect(addr),
    }
    .map_err(unavailable)?;
    stream.set_nodelay(true).map_err(unavailable)?;
    stream.set_read_timeout(timeout).map_err(unavailable)?;
    stream.set_write_timeout(timeout).map_err(unavailable)?;
    let mut writer = std::io::BufWriter::new(stream.try_clone().map_err(unavailable)?);
    crate::frame::write_frame(&mut writer, &encode_mux_hello(client))
        .map_err(|_| SwarmError::ServerUnavailable(server))?;
    let mut reader = std::io::BufReader::new(stream.try_clone().map_err(unavailable)?);
    let ack =
        crate::frame::read_frame(&mut reader).map_err(|_| SwarmError::ServerUnavailable(server))?;
    let got = ServerId::decode_all(&ack).map_err(|_| SwarmError::ServerUnavailable(server))?;
    if got != server {
        return Err(SwarmError::protocol(format!(
            "handshake: expected server {server}, got {got}"
        )));
    }
    // Anything buffered beyond the ack would be lost here; the server
    // sends nothing unprompted after its hello, so the buffers are empty.
    drop(reader);
    stream.set_read_timeout(None).map_err(unavailable)?;
    stream.set_write_timeout(None).map_err(unavailable)?;
    stream.set_nonblocking(true).map_err(unavailable)?;
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_negotiation_roundtrips() {
        let mux = encode_mux_hello(ClientId::new(42));
        assert_eq!(mux.len(), 8);
        let (client, is_mux) = parse_hello(&mux).unwrap();
        assert_eq!(client, ClientId::new(42));
        assert!(is_mux);

        let mut w = swarm_types::ByteWriter::new();
        ClientId::new(7).encode(&mut w);
        let (client, is_mux) = parse_hello(w.as_slice()).unwrap();
        assert_eq!(client, ClientId::new(7));
        assert!(!is_mux, "a bare client id is a classic hello");

        assert!(parse_hello(b"garbage that is long").is_err());
    }

    #[test]
    fn dead_channel_fails_calls_fast() {
        let ch = MuxChannel::new(ServerId::new(3));
        ch.fail_all();
        let err = ch
            .call(b"hdr", &Bytes::new(), Some(Duration::from_secs(5)))
            .unwrap_err();
        assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
    }

    /// Split begin/finish: a caller holds several outstanding ids and may
    /// harvest them in submission order even when the responses land in
    /// reverse — the window the pipelined write path relies on.
    #[test]
    fn begin_finish_harvests_out_of_order_completions() {
        let ch = MuxChannel::new(ServerId::new(5));
        let ids: Vec<u64> = (0..4)
            .map(|i| {
                ch.begin(format!("hdr{i}").as_bytes(), &Bytes::new())
                    .expect("begin")
            })
            .collect();
        assert_eq!(ch.inflight_peak(), 4, "all four must be pending at once");

        // Responses arrive in reverse order (what pump_read would do).
        let (ch2, ids2) = (ch.clone(), ids.clone());
        let responder = std::thread::spawn(move || {
            for &id in ids2.iter().rev() {
                std::thread::sleep(Duration::from_millis(5));
                let mut st = ch2.state.lock();
                if let Some(slot) = st.pending.get_mut(&id) {
                    *slot = Some(Ok(Bytes::from(id.to_le_bytes().to_vec())));
                }
                drop(st);
                ch2.cv.notify_all();
            }
        });

        // Harvest in submission order; each finish must get its own bytes.
        for &id in &ids {
            let body = ch
                .finish(id, Some(Instant::now() + Duration::from_secs(5)))
                .expect("finish");
            assert_eq!(&body[..], id.to_le_bytes());
        }
        responder.join().unwrap();
        assert!(ch.state.lock().pending.is_empty());
    }

    /// A payload-free frame queued *after* a window of store frames is
    /// drained to the socket *before* them: the priority lane is the fix
    /// for reads head-of-line-blocking behind windowed store payloads.
    /// Frame contiguity must survive — a store's head and payload stay
    /// adjacent.
    #[test]
    fn priority_lane_overtakes_queued_store_payloads() {
        let ch = MuxChannel::new(ServerId::new(2));
        // Three "stores": header + 4 KiB payload each.
        for i in 0..3u8 {
            ch.begin(&[i], &Bytes::from(vec![i; 4096])).unwrap();
        }
        // Then a "read": no payload.
        let read_id = ch.begin(b"read-hdr", &Bytes::new()).unwrap();

        // What take_outbox would hand the reactor, in order.
        let mut segs = Vec::new();
        {
            let mut st = ch.state.lock();
            while let Some(s) = st.priority.pop_front() {
                segs.push(s);
            }
            while let Some(s) = st.outbox.pop_front() {
                segs.push(s);
            }
        }
        assert_eq!(segs.len(), 7, "1 read head + 3 store (head, payload) pairs");
        // The read frame leads, and its head carries the read's id.
        let Seg::Owned(head) = &segs[0] else {
            panic!("read frame must be an owned head");
        };
        let id = u64::from_le_bytes(head[12..20].try_into().unwrap());
        assert_eq!(id, read_id, "priority frame is the read");
        // Every store's head is immediately followed by its payload.
        for pair in segs[1..].chunks(2) {
            assert!(matches!(pair[0], Seg::Owned(_)));
            assert!(matches!(pair[1], Seg::Shared(_)));
            let Seg::Owned(head) = &pair[0] else {
                unreachable!()
            };
            let Seg::Shared(payload) = &pair[1] else {
                unreachable!()
            };
            // The store head's first body byte (after the 12-byte frame
            // header and 8-byte id) names the fill of its own payload.
            assert_eq!(head[20], payload[0], "store frame torn apart");
        }
    }

    /// Regression: re-waiting with the full timeout after every wakeup let
    /// a busy channel (whose responses notify_all every waiter) postpone a
    /// never-answered call's timeout indefinitely.
    #[test]
    fn call_timeout_survives_unrelated_wakeups() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let ch = MuxChannel::new(ServerId::new(9));
        let stop = Arc::new(AtomicBool::new(false));
        let (ch2, stop2) = (ch.clone(), stop.clone());
        // Spurious wakeups faster than the call timeout, for ~2 s.
        let noisy = std::thread::spawn(move || {
            for _ in 0..400 {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                ch2.cv.notify_all();
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        let t0 = Instant::now();
        let err = ch
            .call(b"hdr", &Bytes::new(), Some(Duration::from_millis(100)))
            .unwrap_err();
        assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "timeout was reset by wakeups: took {:?}",
            t0.elapsed()
        );
        stop.store(true, Ordering::SeqCst);
        noisy.join().unwrap();
    }
}
