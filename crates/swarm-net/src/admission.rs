//! Per-client fair admission in front of the worker pool.
//!
//! The worker pool itself is a plain FIFO: under saturation, one client
//! pipelining 64 stores per connection can monopolize every worker while a
//! light interactive client's single read waits behind the backlog. Swarm's
//! scalability story is per-client logs that never synchronize through the
//! servers — so the server must not let one log's traffic starve another's.
//!
//! [`Admission`] restores fairness with deficit round robin (DRR): while
//! workers are free, jobs are handed straight to the pool (FIFO, no
//! overhead); once every worker is busy, excess jobs queue *per client*,
//! and each completion admits the next job by visiting client queues round
//! robin, letting each spend a byte `deficit` that refills by `quantum`
//! per visit. Request cost is its frame size in bytes, so a client sending
//! large stores gets the same share of worker bytes as one sending many
//! small reads.
//!
//! Queues are bounded: when a saturated client's backlog reaches
//! [`AdmissionConfig::max_client_backlog`], *rejectable* jobs (stores —
//! the one request the writer retries with backoff) bounce with
//! [`swarm_types::SwarmError::Busy`] instead of queueing, surfacing
//! backpressure to the writer rather than buffering unboundedly.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use swarm_types::ClientId;

use crate::workpool::WorkerPool;

/// Tuning for [`Admission`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Deficit refill per DRR visit, in request-frame bytes. Larger values
    /// approach per-request round robin for small requests; the default
    /// (64 KiB) lets a client with one fragment-sized store through per
    /// visit.
    pub quantum: u64,
    /// Queued jobs a single client may hold while the pool is saturated
    /// before its rejectable requests (stores) bounce with `Busy`.
    pub max_client_backlog: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            quantum: 64 * 1024,
            max_client_backlog: 32,
        }
    }
}

/// What [`Admission::submit`] did with a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submitted {
    /// Handed straight to the worker pool (workers were free).
    Ran,
    /// Pool saturated: queued under the client's DRR queue.
    Queued,
    /// Pool saturated and the client's backlog full: the job was dropped.
    /// The caller answers the request with `Busy` pushback.
    Rejected,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct ClientQueue {
    deficit: u64,
    jobs: VecDeque<(u64, Job)>,
}

struct State {
    /// Jobs currently handed to the pool and not yet completed.
    running: usize,
    /// Total queued jobs across clients (mirrors the depth gauge).
    queued: usize,
    /// Clients with non-empty queues, in round-robin visit order.
    active: VecDeque<ClientId>,
    queues: HashMap<ClientId, ClientQueue>,
}

struct AdmissionMetrics {
    queue_depth: swarm_metrics::Gauge,
    throttled: swarm_metrics::Counter,
    drr_admits: swarm_metrics::Counter,
}

fn admission_metrics() -> &'static AdmissionMetrics {
    static M: std::sync::OnceLock<AdmissionMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| AdmissionMetrics {
        queue_depth: swarm_metrics::gauge("server.admission_queue_depth"),
        throttled: swarm_metrics::counter("server.client_throttled"),
        drr_admits: swarm_metrics::counter("server.drr_admits"),
    })
}

/// Deficit-round-robin admission gate in front of a [`WorkerPool`].
///
/// See the module docs for the discipline. One `Admission` fronts one
/// server's pool; the epoll runtime routes every per-request job through
/// it (the blocking runtime submits whole-connection loops, where
/// per-request fairness does not apply).
pub struct Admission {
    pool: Arc<WorkerPool>,
    cfg: AdmissionConfig,
    state: Mutex<State>,
}

impl Admission {
    /// Creates an admission gate feeding `pool`.
    pub fn new(pool: Arc<WorkerPool>, cfg: AdmissionConfig) -> Arc<Admission> {
        Arc::new(Admission {
            pool,
            cfg,
            state: Mutex::new(State {
                running: 0,
                queued: 0,
                active: VecDeque::new(),
                queues: HashMap::new(),
            }),
        })
    }

    /// Submits `job` on behalf of `client`. `cost` is the request's frame
    /// size in bytes (the DRR currency); `rejectable` marks requests the
    /// sender can retry on `Busy` pushback (stores).
    pub fn submit(
        self: &Arc<Self>,
        client: ClientId,
        cost: u64,
        rejectable: bool,
        job: impl FnOnce() + Send + 'static,
    ) -> Submitted {
        let mut st = self.state.lock();
        if st.running < self.pool.width() {
            st.running += 1;
            drop(st);
            self.dispatch(Box::new(job));
            return Submitted::Ran;
        }
        let backlog = st.queues.get(&client).map_or(0, |q| q.jobs.len());
        if rejectable && backlog >= self.cfg.max_client_backlog {
            admission_metrics().throttled.inc();
            return Submitted::Rejected;
        }
        let q = st.queues.entry(client).or_insert_with(|| ClientQueue {
            deficit: 0,
            jobs: VecDeque::new(),
        });
        let newly_active = q.jobs.is_empty();
        q.jobs.push_back((cost, Box::new(job)));
        if newly_active {
            st.active.push_back(client);
        }
        st.queued += 1;
        admission_metrics().queue_depth.set(st.queued as i64);
        Submitted::Queued
    }

    /// Total queued jobs right now (diagnostic).
    pub fn queued(&self) -> usize {
        self.state.lock().queued
    }

    fn dispatch(self: &Arc<Self>, job: Job) {
        let guard = CompleteGuard(Some(self.clone()));
        self.pool.submit(move || {
            // The guard admits the next job even if this one panics (the
            // pool's catch_unwind swallows the panic after our Drop ran);
            // without it a panicking handler would leak a worker slot.
            let _guard = guard;
            job();
        });
    }

    /// Runs after every job: admits the next queued job under DRR order,
    /// or releases the worker slot when nothing is waiting.
    fn on_complete(self: &Arc<Self>) {
        let next = {
            let mut st = self.state.lock();
            match Self::pop_drr(&mut st, self.cfg.quantum) {
                Some(job) => {
                    st.queued -= 1;
                    admission_metrics().queue_depth.set(st.queued as i64);
                    admission_metrics().drr_admits.inc();
                    Some(job)
                }
                None => {
                    st.running -= 1;
                    None
                }
            }
        };
        if let Some(job) = next {
            self.dispatch(job);
        }
    }

    /// Textbook DRR pop: visit the head-of-line client; if its deficit
    /// covers its front job's cost, admit the job (keeping the client at
    /// the front so it can spend the rest of its deficit); otherwise
    /// refill by `quantum` and rotate to the next client. An emptied queue
    /// is dropped, resetting its deficit — an idle client must not bank
    /// credit.
    fn pop_drr(st: &mut State, quantum: u64) -> Option<Job> {
        loop {
            let client = *st.active.front()?;
            let q = st
                .queues
                .get_mut(&client)
                .expect("active client has a queue");
            let cost = q.jobs.front().expect("active queue is non-empty").0;
            if cost <= q.deficit {
                q.deficit -= cost;
                let (_, job) = q.jobs.pop_front().expect("checked non-empty");
                if q.jobs.is_empty() {
                    st.queues.remove(&client);
                    st.active.pop_front();
                }
                return Some(job);
            }
            q.deficit += quantum;
            st.active.rotate_left(1);
        }
    }
}

/// Calls [`Admission::on_complete`] when dropped — including during the
/// unwind of a panicking job.
struct CompleteGuard(Option<Arc<Admission>>);

impl Drop for CompleteGuard {
    fn drop(&mut self) {
        if let Some(admission) = self.0.take() {
            admission.on_complete();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    fn gate(workers: usize, cfg: AdmissionConfig) -> Arc<Admission> {
        Admission::new(Arc::new(WorkerPool::new("admission-test", workers)), cfg)
    }

    /// Holds `n` workers busy until the returned sender drops.
    fn saturate(adm: &Arc<Admission>, n: usize) -> mpsc::Sender<()> {
        let (tx, rx) = mpsc::channel::<()>();
        let rx = Arc::new(Mutex::new(rx));
        let (started_tx, started_rx) = mpsc::channel::<()>();
        for _ in 0..n {
            let rx = rx.clone();
            let started = started_tx.clone();
            let out = adm.submit(ClientId::new(0), 1, false, move || {
                started.send(()).unwrap();
                // Blocks until the main thread drops `tx`.
                let _ = rx.lock().recv();
            });
            assert_eq!(out, Submitted::Ran);
        }
        for _ in 0..n {
            started_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("saturating job started");
        }
        tx
    }

    #[test]
    fn unsaturated_jobs_run_fifo() {
        let adm = gate(2, AdmissionConfig::default());
        let (tx, rx) = mpsc::channel();
        for i in 0..2 {
            let tx = tx.clone();
            assert_eq!(
                adm.submit(ClientId::new(i), 1, true, move || tx.send(i).unwrap()),
                Submitted::Ran
            );
        }
        let mut got = vec![
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn saturated_jobs_queue_and_drain() {
        let adm = gate(1, AdmissionConfig::default());
        let hold = saturate(&adm, 1);
        let (tx, rx) = mpsc::channel();
        for i in 0..4 {
            let tx = tx.clone();
            assert_eq!(
                adm.submit(ClientId::new(i), 100, false, move || tx.send(i).unwrap()),
                Submitted::Queued
            );
        }
        assert_eq!(adm.queued(), 4);
        drop(hold);
        let mut got: Vec<u32> = (0..4)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        // Queue fully drained once every job ran.
        for _ in 0..100 {
            if adm.queued() == 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("queue never drained: {}", adm.queued());
    }

    #[test]
    fn backlogged_client_bounces_rejectable_jobs_only() {
        let cfg = AdmissionConfig {
            max_client_backlog: 2,
            ..AdmissionConfig::default()
        };
        let adm = gate(1, cfg);
        let hold = saturate(&adm, 1);
        let heavy = ClientId::new(7);
        assert_eq!(adm.submit(heavy, 1, true, || {}), Submitted::Queued);
        assert_eq!(adm.submit(heavy, 1, true, || {}), Submitted::Queued);
        // Backlog full: rejectable (store) jobs bounce...
        assert_eq!(adm.submit(heavy, 1, true, || {}), Submitted::Rejected);
        // ...but non-rejectable (read) jobs still queue.
        assert_eq!(adm.submit(heavy, 1, false, || {}), Submitted::Queued);
        // Other clients are unaffected.
        assert_eq!(
            adm.submit(ClientId::new(8), 1, true, || {}),
            Submitted::Queued
        );
        drop(hold);
    }

    #[test]
    fn drr_interleaves_a_flood_with_a_trickle() {
        // One worker; client 1 floods 32 jobs, client 2 sends one. Under
        // FIFO the trickle would wait behind the whole flood; under DRR it
        // must be admitted within a couple of completions. Quantum equals
        // the per-job cost so each visit admits exactly one job.
        let adm = gate(
            1,
            AdmissionConfig {
                quantum: 1024,
                ..AdmissionConfig::default()
            },
        );
        let hold = saturate(&adm, 1);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..32 {
            let order = order.clone();
            adm.submit(ClientId::new(1), 1024, false, move || {
                order.lock().push((1u32, i));
            });
        }
        {
            let order = order.clone();
            adm.submit(ClientId::new(2), 1024, false, move || {
                order.lock().push((2, 0));
            });
        }
        drop(hold);
        for _ in 0..500 {
            if order.lock().len() == 33 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let order = order.lock();
        assert_eq!(order.len(), 33, "all jobs ran");
        let trickle_pos = order.iter().position(|&(c, _)| c == 2).unwrap();
        assert!(
            trickle_pos <= 2,
            "trickle client served at position {trickle_pos}, FIFO would be 32"
        );
    }

    #[test]
    fn costs_weight_the_round_robin() {
        // Client 1 queues 4 large jobs, client 2 queues 8 small jobs whose
        // total cost matches one large job. Over the drain, client 2's
        // jobs must not all wait for client 1 to finish (byte-fair, not
        // request-fair).
        let cfg = AdmissionConfig {
            quantum: 64 * 1024,
            ..AdmissionConfig::default()
        };
        let adm = gate(1, cfg);
        let hold = saturate(&adm, 1);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4 {
            let order = order.clone();
            adm.submit(ClientId::new(1), 64 * 1024, false, move || {
                order.lock().push((1u32, i));
            });
        }
        for i in 0..8 {
            let order = order.clone();
            adm.submit(ClientId::new(2), 8 * 1024, false, move || {
                order.lock().push((2, i));
            });
        }
        drop(hold);
        for _ in 0..500 {
            if order.lock().len() == 12 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let order = order.lock();
        assert_eq!(order.len(), 12);
        // Within the first half of the drain both clients made progress.
        let first_half: Vec<u32> = order[..6].iter().map(|&(c, _)| c).collect();
        assert!(
            first_half.contains(&1) && first_half.contains(&2),
            "{:?}",
            *order
        );
    }

    #[test]
    fn panicking_job_releases_its_worker_slot() {
        let adm = gate(1, AdmissionConfig::default());
        let ran = Arc::new(AtomicUsize::new(0));
        adm.submit(ClientId::new(1), 1, false, || panic!("boom"));
        let ran2 = ran.clone();
        adm.submit(ClientId::new(1), 1, false, move || {
            ran2.fetch_add(1, Ordering::SeqCst);
        });
        for _ in 0..500 {
            if ran.load(Ordering::SeqCst) == 1 {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("job after a panic never ran — worker slot leaked");
    }
}
