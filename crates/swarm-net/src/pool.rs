//! Per-client connection pool and parallel broadcast: the transport half
//! of the read engine.
//!
//! The paper's client talks to every server in its stripe group, and
//! reconstruction additionally contacts the whole cluster (§2.3.3). Doing
//! that over a fresh connection per call wastes a dial per request and
//! serializes the broadcast; [`ConnectionPool`] keeps a small stack of
//! idle connections per server, tracks per-server health, and fans
//! broadcasts out across threads so a locate costs one round-trip to the
//! slowest *relevant* server, not the sum over the cluster.
//!
//! Pool lifecycle:
//!
//! * [`ConnectionPool::call`] checks a connection out (reusing an idle one
//!   when available), issues the request, and checks the connection back
//!   in on success. A failed call drops the connection and redials once —
//!   a pooled connection may be stale because the server restarted, and
//!   that must be invisible to the caller.
//! * Failed dials put the server in a short backoff window; the next dial
//!   to that server waits out the remainder of the window first. Backoff
//!   rate-limits connection attempts to an unhealthy server without ever
//!   *skipping* one, so a server that comes back is observed immediately
//!   — semantics identical to dial-per-call, just cheaper.
//! * [`ConnectionPool::broadcast`] queries every server in parallel and
//!   returns the replies in server-id order. Servers that fail are
//!   counted (`net.broadcast_errors`) and traced, never silently absent.
//! * [`ConnectionPool::broadcast_first`] is the first-positive-wins mode
//!   used by `Locate`: it returns as soon as any server's reply satisfies
//!   the acceptance predicate, leaving the stragglers to finish (and
//!   check their connections back in) in the background.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use swarm_types::{ClientId, Result, ServerId, SwarmError};

use crate::proto::{Request, Response};
use crate::transport::{Connection, Transport};

/// Idle connections kept per server; more are simply dropped on check-in.
const MAX_IDLE_PER_SERVER: usize = 4;
/// First-failure backoff; doubles per consecutive failure up to the cap.
const BACKOFF_BASE: Duration = Duration::from_micros(500);
/// Backoff cap. Deliberately small: the pool never refuses to dial, it
/// only spaces dials out, so the cap bounds the latency a recovered
/// server can add to the first request after it comes back.
const BACKOFF_CAP: Duration = Duration::from_millis(4);

struct PoolMetrics {
    hits: swarm_metrics::Counter,
    connects: swarm_metrics::Counter,
    reconnects: swarm_metrics::Counter,
    broadcast_errors: swarm_metrics::Counter,
}

fn pool_metrics() -> &'static PoolMetrics {
    static M: std::sync::OnceLock<PoolMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| PoolMetrics {
        hits: swarm_metrics::counter("net.pool_hits"),
        connects: swarm_metrics::counter("net.pool_connects"),
        reconnects: swarm_metrics::counter("net.pool_reconnects"),
        broadcast_errors: swarm_metrics::counter("net.broadcast_errors"),
    })
}

/// Records a broadcast leg failure: counted so a half-deaf cluster shows
/// up in `swarm-admin stats`, traced so the culprit server is named.
pub(crate) fn note_broadcast_error(server: ServerId, err: &SwarmError) {
    pool_metrics().broadcast_errors.inc();
    swarm_metrics::trace!(
        "net.broadcast",
        "server {} dropped from broadcast: {}",
        server,
        err
    );
}

#[derive(Default)]
struct Slot {
    idle: Vec<Box<dyn Connection>>,
    consecutive_failures: u32,
    retry_at: Option<Instant>,
}

/// A per-client pool of cached server connections with health tracking.
///
/// Shared (`Arc<ConnectionPool>`) between the log's read path,
/// reconstruction, recovery, and the cleaner, so they all reuse the same
/// warm connections instead of dialing per call.
pub struct ConnectionPool {
    transport: Arc<dyn Transport>,
    client: ClientId,
    slots: Mutex<HashMap<ServerId, Slot>>,
    /// When false, `broadcast`/`broadcast_first` run serially in server-id
    /// order (benchmark baseline mode; the observable results are the
    /// same).
    fanout: AtomicBool,
}

impl std::fmt::Debug for ConnectionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnectionPool")
            .field("client", &self.client)
            .finish()
    }
}

impl ConnectionPool {
    /// Creates an empty pool for `client` over `transport`.
    pub fn new(transport: Arc<dyn Transport>, client: ClientId) -> ConnectionPool {
        ConnectionPool {
            transport,
            client,
            slots: Mutex::new(HashMap::new()),
            fanout: AtomicBool::new(true),
        }
    }

    /// The transport this pool dials through.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// The client this pool authenticates as.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Enables or disables parallel fan-out for broadcasts (on by
    /// default). Serial mode exists so benchmarks can measure the fan-out
    /// win in isolation.
    pub fn set_fanout(&self, on: bool) {
        self.fanout.store(on, Ordering::Relaxed);
    }

    /// Whether parallel fan-out is enabled (see
    /// [`ConnectionPool::set_fanout`]).
    pub fn fanout_enabled(&self) -> bool {
        self.fanout.load(Ordering::Relaxed)
    }

    /// Checks a connection to `server` out of the pool, dialing a fresh
    /// one if no idle connection is cached.
    ///
    /// # Errors
    ///
    /// Returns the transport's connect error (after waiting out any
    /// backoff window from earlier failed dials).
    pub fn checkout(&self, server: ServerId) -> Result<Box<dyn Connection>> {
        let wait = {
            let mut slots = self.slots.lock();
            let slot = slots.entry(server).or_default();
            if let Some(conn) = slot.idle.pop() {
                pool_metrics().hits.inc();
                return Ok(conn);
            }
            slot.retry_at
                .map(|t| t.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::ZERO)
        };
        if !wait.is_zero() {
            // Rate-limit dials to an unhealthy server — but always dial,
            // so a recovered server is never spuriously reported down.
            std::thread::sleep(wait);
        }
        self.dial(server)
    }

    fn dial(&self, server: ServerId) -> Result<Box<dyn Connection>> {
        match self.transport.connect(server, self.client) {
            Ok(conn) => {
                pool_metrics().connects.inc();
                let mut slots = self.slots.lock();
                let slot = slots.entry(server).or_default();
                slot.consecutive_failures = 0;
                slot.retry_at = None;
                Ok(conn)
            }
            Err(e) => {
                let mut slots = self.slots.lock();
                let slot = slots.entry(server).or_default();
                slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
                let exp = slot.consecutive_failures.min(4);
                let backoff = BACKOFF_BASE.saturating_mul(1 << exp).min(BACKOFF_CAP);
                slot.retry_at = Some(Instant::now() + backoff);
                Err(e)
            }
        }
    }

    /// Number of idle connections currently cached for `server`. A
    /// diagnostic hook: chaos and leak tests assert the count stays
    /// bounded after injected connection failures.
    pub fn idle_count(&self, server: ServerId) -> usize {
        self.slots
            .lock()
            .get(&server)
            .map_or(0, |slot| slot.idle.len())
    }

    /// Returns a connection to the pool for reuse. Connections that
    /// errored should be dropped instead.
    pub fn checkin(&self, conn: Box<dyn Connection>) {
        let server = conn.server();
        let mut slots = self.slots.lock();
        let slot = slots.entry(server).or_default();
        if slot.idle.len() < MAX_IDLE_PER_SERVER {
            slot.idle.push(conn);
        }
    }

    /// Sends one request to `server` over a pooled connection.
    ///
    /// A stale pooled connection (the server restarted since it was
    /// cached) is detected by the call failing; the pool transparently
    /// redials once and retries.
    ///
    /// # Errors
    ///
    /// Propagates transport errors after the one reconnect attempt.
    pub fn call(&self, server: ServerId, request: &Request) -> Result<Response> {
        let mut conn = self.checkout(server)?;
        match conn.call(request) {
            Ok(resp) => {
                self.checkin(conn);
                Ok(resp)
            }
            Err(_) => {
                // The cached connection may be stale (server restart):
                // drop it and retry once on a fresh dial.
                drop(conn);
                pool_metrics().reconnects.inc();
                swarm_metrics::trace!("net.pool", "reconnecting to server {}", server);
                let mut conn = self.dial(server)?;
                let resp = conn.call(request)?;
                self.checkin(conn);
                Ok(resp)
            }
        }
    }

    /// Sends one request to `server` on a *fresh* dial, for callers that
    /// just watched a pooled connection fail mid-use (e.g. a pipelined
    /// call whose channel died): the failure is counted as a pool
    /// reconnect and the idle list — whose connections are likely just as
    /// stale — is bypassed.
    ///
    /// # Errors
    ///
    /// Propagates the dial or call error; no further retry.
    pub fn redial_call(&self, server: ServerId, request: &Request) -> Result<Response> {
        pool_metrics().reconnects.inc();
        swarm_metrics::trace!("net.pool", "reconnecting to server {}", server);
        let mut conn = self.dial(server)?;
        let resp = conn.call(request)?;
        self.checkin(conn);
        Ok(resp)
    }

    /// Sends `request` to every server in parallel, returning the replies
    /// that arrived in server-id order (the paper's broadcast, §2.3.3).
    /// Unreachable servers are counted in `net.broadcast_errors` and
    /// traced.
    pub fn broadcast(&self, request: &Request) -> Vec<(ServerId, Response)> {
        let servers = self.transport.servers();
        if !self.fanout.load(Ordering::Relaxed) {
            let mut replies = Vec::new();
            for server in servers {
                match self.call(server, request) {
                    Ok(resp) => replies.push((server, resp)),
                    Err(e) => note_broadcast_error(server, &e),
                }
            }
            return replies;
        }
        let mut replies: Vec<(ServerId, Response)> = std::thread::scope(|s| {
            let handles: Vec<_> = servers
                .into_iter()
                .map(|server| s.spawn(move || (server, self.call(server, request))))
                .collect();
            handles
                .into_iter()
                .filter_map(|h| {
                    let (server, result) = h.join().expect("broadcast worker panicked");
                    match result {
                        Ok(resp) => Some((server, resp)),
                        Err(e) => {
                            note_broadcast_error(server, &e);
                            None
                        }
                    }
                })
                .collect()
        });
        replies.sort_by_key(|(s, _)| *s);
        replies
    }

    /// First-positive-wins broadcast: sends `request` to every server in
    /// parallel and returns the first reply for which `accept` is true,
    /// without waiting for the remaining servers (a locate hit on server 1
    /// must not wait out server N's timeout).
    ///
    /// Straggler legs keep running detached after the early return. Each
    /// leg goes through [`ConnectionPool::call`], which checks its
    /// connection back in on success and drops it on failure — so a
    /// straggler that completes after the winner neither leaks its
    /// connection nor pools a broken one, and a leg that finds the cancel
    /// flag already set never dials at all. (Regression-tested:
    /// `broadcast_first_stragglers_check_connections_back_in`.)
    ///
    /// Returns `None` when no server's reply is accepted.
    pub fn broadcast_first(
        self: &Arc<Self>,
        request: &Request,
        accept: fn(&Response) -> bool,
    ) -> Option<(ServerId, Response)> {
        let servers = self.transport.servers();
        if !self.fanout.load(Ordering::Relaxed) {
            for server in servers {
                match self.call(server, request) {
                    Ok(resp) if accept(&resp) => return Some((server, resp)),
                    Ok(_) => {}
                    Err(e) => note_broadcast_error(server, &e),
                }
            }
            return None;
        }
        let total = servers.len();
        if total == 0 {
            return None;
        }
        let cancel = Arc::new(AtomicBool::new(false));
        let req = Arc::new(request.clone());
        let (tx, rx) = mpsc::channel::<(ServerId, Option<Response>)>();
        for server in servers {
            let pool = Arc::clone(self);
            let cancel = Arc::clone(&cancel);
            let req = Arc::clone(&req);
            let tx = tx.clone();
            std::thread::spawn(move || {
                // A winner may already have been returned; don't dial.
                if cancel.load(Ordering::Relaxed) {
                    let _ = tx.send((server, None));
                    return;
                }
                match pool.call(server, &req) {
                    Ok(resp) => {
                        let hit = accept(&resp);
                        if hit {
                            cancel.store(true, Ordering::Relaxed);
                        }
                        let _ = tx.send((server, hit.then_some(resp)));
                    }
                    Err(e) => {
                        note_broadcast_error(server, &e);
                        let _ = tx.send((server, None));
                    }
                }
            });
        }
        drop(tx);
        let mut seen = 0;
        while let Ok((server, resp)) = rx.recv() {
            seen += 1;
            if let Some(resp) = resp {
                return Some((server, resp));
            }
            if seen == total {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::testing::EchoStore;
    use crate::mem::MemTransport;

    fn cluster(n: u32) -> Arc<MemTransport> {
        let t = Arc::new(MemTransport::new());
        for i in 0..n {
            t.register(ServerId::new(i), Arc::new(EchoStore::default()));
        }
        t
    }

    fn pool(transport: Arc<MemTransport>) -> Arc<ConnectionPool> {
        Arc::new(ConnectionPool::new(transport, ClientId::new(1)))
    }

    #[test]
    fn call_reuses_idle_connections() {
        let p = pool(cluster(1));
        let hits = swarm_metrics::counter("net.pool_hits");
        let before = hits.get();
        p.call(ServerId::new(0), &Request::Ping).unwrap();
        p.call(ServerId::new(0), &Request::Ping).unwrap();
        p.call(ServerId::new(0), &Request::Ping).unwrap();
        assert!(
            hits.get() >= before + 2,
            "second and third calls must reuse the pooled connection"
        );
    }

    /// A connection dialed before a "restart" (epoch bump) fails its
    /// calls, exactly like a pooled socket whose server came back on the
    /// same address.
    struct EpochConn {
        inner: Box<dyn Connection>,
        born: u64,
        epoch: Arc<std::sync::atomic::AtomicU64>,
    }

    impl Connection for EpochConn {
        fn call(&mut self, request: &Request) -> Result<Response> {
            if self.born != self.epoch.load(Ordering::SeqCst) {
                return Err(SwarmError::ServerUnavailable(self.inner.server()));
            }
            self.inner.call(request)
        }

        fn server(&self) -> ServerId {
            self.inner.server()
        }
    }

    #[test]
    fn stale_pooled_connection_reconnects_transparently() {
        let t = cluster(1);
        let epoch = Arc::new(std::sync::atomic::AtomicU64::new(0));
        struct T {
            inner: Arc<MemTransport>,
            epoch: Arc<std::sync::atomic::AtomicU64>,
        }
        impl Transport for T {
            fn connect(&self, server: ServerId, client: ClientId) -> Result<Box<dyn Connection>> {
                Ok(Box::new(EpochConn {
                    inner: self.inner.connect(server, client)?,
                    born: self.epoch.load(Ordering::SeqCst),
                    epoch: self.epoch.clone(),
                }))
            }
            fn servers(&self) -> Vec<ServerId> {
                self.inner.servers()
            }
        }
        let transport = Arc::new(T {
            inner: t,
            epoch: epoch.clone(),
        });
        let p = Arc::new(ConnectionPool::new(transport, ClientId::new(1)));
        let reconnects = swarm_metrics::counter("net.pool_reconnects");
        p.call(ServerId::new(0), &Request::Ping).unwrap();
        // "Restart" the server: the pooled connection is now stale.
        epoch.fetch_add(1, Ordering::SeqCst);
        let before = reconnects.get();
        assert_eq!(
            p.call(ServerId::new(0), &Request::Ping).unwrap(),
            Response::Ok,
            "stale pooled connection must reconnect transparently"
        );
        assert!(reconnects.get() > before);
    }

    #[test]
    fn down_server_fails_with_backoff_then_recovers() {
        let t = cluster(1);
        let p = pool(t.clone());
        t.set_down(ServerId::new(0), true);
        for _ in 0..3 {
            assert!(p.call(ServerId::new(0), &Request::Ping).is_err());
        }
        // Backoff never refuses a dial: recovery is observed immediately.
        t.set_down(ServerId::new(0), false);
        assert_eq!(
            p.call(ServerId::new(0), &Request::Ping).unwrap(),
            Response::Ok
        );
    }

    #[test]
    fn broadcast_returns_replies_in_server_order() {
        let p = pool(cluster(4));
        let replies = p.broadcast(&Request::Ping);
        let ids: Vec<u32> = replies.iter().map(|(s, _)| s.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn broadcast_counts_down_servers() {
        let t = cluster(3);
        let p = pool(t.clone());
        t.set_down(ServerId::new(1), true);
        let errors = swarm_metrics::counter("net.broadcast_errors");
        let before = errors.get();
        let replies = p.broadcast(&Request::Ping);
        let ids: Vec<u32> = replies.iter().map(|(s, _)| s.raw()).collect();
        assert_eq!(ids, vec![0, 2]);
        assert!(errors.get() > before, "down server must be counted");
    }

    #[test]
    fn broadcast_first_returns_an_accepted_reply() {
        let p = pool(cluster(4));
        let (_, resp) = p
            .broadcast_first(&Request::Ping, |r| matches!(r, Response::Ok))
            .expect("every server answers Ok");
        assert_eq!(resp, Response::Ok);
    }

    #[test]
    fn broadcast_first_rejects_all_yields_none() {
        let p = pool(cluster(3));
        assert!(p.broadcast_first(&Request::Ping, |_| false).is_none());
    }

    /// A handler that parks every request until `n` requests have
    /// arrived, then answers them all — so a broadcast's legs are
    /// provably all mid-call before any winner can return.
    struct GatedEcho {
        inner: EchoStore,
        arrived: std::sync::atomic::AtomicUsize,
        n: usize,
    }

    impl crate::handler::RequestHandler for GatedEcho {
        fn handle(&self, client: ClientId, request: Request) -> Response {
            self.arrived.fetch_add(1, Ordering::SeqCst);
            while self.arrived.load(Ordering::SeqCst) < self.n {
                std::thread::sleep(Duration::from_millis(1));
            }
            self.inner.handle(client, request)
        }
    }

    /// Satellite regression: after `broadcast_first` returns early with a
    /// winner, straggler legs that already dialed still finish and check
    /// their connections back into the pool — they are not leaked with
    /// the abandoned threads. (A leg that observes the cancel flag before
    /// dialing never opens a connection, so there is nothing to return.)
    #[test]
    fn broadcast_first_stragglers_check_connections_back_in() {
        const N: usize = 3;
        let gate = Arc::new(GatedEcho {
            inner: EchoStore::default(),
            arrived: std::sync::atomic::AtomicUsize::new(0),
            n: N,
        });
        let t = Arc::new(MemTransport::new());
        for i in 0..N as u32 {
            t.register(ServerId::new(i), gate.clone());
        }
        let p = pool(t);
        // The gate guarantees all N legs dialed and are in-flight before
        // the first response exists, so none was cancelled pre-dial.
        let (_, resp) = p
            .broadcast_first(&Request::Ping, |r| matches!(r, Response::Ok))
            .expect("every server answers Ok");
        assert_eq!(resp, Response::Ok);
        // Every leg — winner and stragglers — must eventually return its
        // connection to the pool.
        let deadline = Instant::now() + Duration::from_secs(10);
        for server in 0..N as u32 {
            while p.idle_count(ServerId::new(server)) == 0 {
                assert!(
                    Instant::now() < deadline,
                    "server {server}'s broadcast leg never checked its connection back in"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    /// A handler that parks until the global broadcast-error counter
    /// passes a threshold: the winner cannot return before the failing
    /// leg has been counted.
    struct WaitForErrors {
        inner: EchoStore,
        at_least: u64,
    }

    impl crate::handler::RequestHandler for WaitForErrors {
        fn handle(&self, client: ClientId, request: Request) -> Response {
            let errors = swarm_metrics::counter("net.broadcast_errors");
            while errors.get() < self.at_least {
                std::thread::sleep(Duration::from_millis(1));
            }
            self.inner.handle(client, request)
        }
    }

    /// Satellite regression: a leg whose server is down is counted in
    /// `net.broadcast_errors` and drops its failed connection instead of
    /// pooling it.
    #[test]
    fn broadcast_first_down_straggler_is_counted_not_pooled() {
        let errors = swarm_metrics::counter("net.broadcast_errors");
        let before = errors.get();
        let t = Arc::new(MemTransport::new());
        t.register(
            ServerId::new(0),
            Arc::new(WaitForErrors {
                inner: EchoStore::default(),
                at_least: before + 1,
            }),
        );
        t.register(ServerId::new(1), Arc::new(EchoStore::default()));
        t.set_down(ServerId::new(1), true);
        let p = pool(t);
        let (winner, _) = p
            .broadcast_first(&Request::Ping, |r| matches!(r, Response::Ok))
            .expect("the healthy server answers Ok");
        assert_eq!(winner, ServerId::new(0));
        assert!(errors.get() > before, "down leg must be counted");
        assert_eq!(
            p.idle_count(ServerId::new(1)),
            0,
            "a failed leg must not pool a connection"
        );
    }

    #[test]
    fn serial_mode_matches_parallel_results() {
        let t = cluster(3);
        let p = pool(t.clone());
        t.set_down(ServerId::new(2), true);
        p.set_fanout(false);
        let serial = p.broadcast(&Request::Ping);
        p.set_fanout(true);
        let parallel = p.broadcast(&Request::Ping);
        assert_eq!(serial, parallel);
    }
}
