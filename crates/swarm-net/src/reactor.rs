//! Readiness-driven event loop: the engine behind the epoll runtime.
//!
//! The blocking stack parks one OS thread per connection (server) and per
//! in-flight RPC (client) — §2.3's "a client talks to its whole stripe
//! group" costs a thread per member. The [`Reactor`] inverts that: one
//! thread owns an epoll instance and a set of [`Source`]s (listener,
//! server connections, multiplexed client channels), each a small state
//! machine advanced only when its descriptor is ready. Per-connection
//! state is a few hundred bytes instead of a stack, which is what lets
//! one server hold thousands of connections.
//!
//! Pieces:
//!
//! * [`Source`] — a registered descriptor plus its state machine:
//!   `on_ready` (readable/writable edges), `on_notify` (another thread
//!   queued work for it), `on_timer` (its deadline fired).
//! * [`Handle`] — a cheap cross-thread address for a source; worker
//!   threads use it to say "this connection has a response to write".
//! * `TimerWheel` — a hashed timing wheel (16 ms ticks) holding at most
//!   one deadline per source; deadlines drive idle-connection reaping.
//! * [`Runtime`] — the user-facing `blocking | epoll` selector.
//!
//! The reactor thread is the only code that touches sources, so sources
//! need no internal locking; cross-thread communication happens through
//! the command queue + eventfd waker, and through whatever shared state a
//! source chooses to carry (the mux channel shares a mutex-guarded
//! outbox with callers).

use std::collections::HashMap;
use std::io;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use epoll::{Epoll, Events, Interest, RawFd, Waker};
use parking_lot::Mutex;

/// Which I/O engine the TCP transport and server run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Runtime {
    /// Thread-per-connection `std::net` stack: workers park in blocking
    /// reads, the client holds one socket per in-flight RPC.
    Blocking,
    /// Readiness-driven reactor (Linux epoll): a few reactor threads
    /// drive all sockets; the client pipelines RPCs on one connection.
    Epoll,
}

impl Runtime {
    /// The platform default: `Epoll` on Linux, `Blocking` elsewhere.
    pub fn default_for_platform() -> Runtime {
        if cfg!(target_os = "linux") {
            Runtime::Epoll
        } else {
            Runtime::Blocking
        }
    }
}

impl std::fmt::Display for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Runtime::Blocking => write!(f, "blocking"),
            Runtime::Epoll => write!(f, "epoll"),
        }
    }
}

impl FromStr for Runtime {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "blocking" => Ok(Runtime::Blocking),
            "epoll" => Ok(Runtime::Epoll),
            other => Err(format!("unknown runtime {other:?} (want blocking|epoll)")),
        }
    }
}

/// What a readiness or notify callback wants done with its source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ready {
    /// Keep the source registered.
    Continue,
    /// Drop the source (closing its descriptor).
    Close,
}

/// What a timer callback wants done with its source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerVerdict {
    /// No deadline armed any more.
    Disarm,
    /// Fire again at the given instant.
    ReArm(Instant),
    /// Drop the source (deadline expired for real).
    Close,
}

/// A descriptor-owning state machine driven by the reactor thread.
///
/// All methods run on the reactor thread; implementations must never
/// block (socket I/O uses non-blocking descriptors, heavy work is handed
/// to the worker pool).
pub(crate) trait Source: Send {
    /// The descriptor to register.
    fn fd(&self) -> RawFd;

    /// The interest set the source currently wants. Re-queried after
    /// every callback; the reactor issues `EPOLL_CTL_MOD` on change.
    fn interest(&self) -> Interest;

    /// The descriptor is ready. Level-triggered: drain until `WouldBlock`.
    fn on_ready(&mut self, readable: bool, writable: bool, ctx: &mut Ctx<'_>) -> Ready;

    /// Another thread called [`Handle::notify`] for this source.
    fn on_notify(&mut self, ctx: &mut Ctx<'_>) -> Ready {
        let _ = ctx;
        Ready::Continue
    }

    /// The source's armed deadline fired.
    fn on_timer(&mut self, now: Instant, ctx: &mut Ctx<'_>) -> TimerVerdict {
        let _ = (now, ctx);
        TimerVerdict::Disarm
    }
}

enum Cmd {
    Register {
        token: u64,
        source: Box<dyn Source>,
        deadline: Option<Instant>,
    },
    Notify(u64),
    Close(u64),
}

struct Shared {
    epoll: Epoll,
    waker: Waker,
    next_token: AtomicU64,
    cmds: Mutex<Vec<Cmd>>,
    stop: AtomicBool,
}

impl Shared {
    fn push(&self, cmd: Cmd) {
        if self.stop.load(Ordering::SeqCst) {
            return;
        }
        self.cmds.lock().push(cmd);
        let _ = self.waker.wake();
    }
}

/// A cheap cross-thread address for a registered source.
#[derive(Clone)]
pub(crate) struct Handle {
    shared: Arc<Shared>,
    token: u64,
}

impl Handle {
    /// Asks the reactor to run the source's `on_notify` soon. Used by
    /// worker threads after queueing output for a connection. A no-op on
    /// a stopped reactor.
    pub(crate) fn notify(&self) {
        self.shared.push(Cmd::Notify(self.token));
    }

    /// Asks the reactor to drop the source (closing its descriptor).
    pub(crate) fn close(&self) {
        self.shared.push(Cmd::Close(self.token));
    }
}

/// Registration context passed to source callbacks, letting them spawn
/// further sources (the listener spawns one per accepted connection).
pub(crate) struct Ctx<'a> {
    shared: &'a Arc<Shared>,
    pending: &'a mut Vec<Cmd>,
}

impl Ctx<'_> {
    /// Reserves a token and returns its handle, so a new source can embed
    /// its own address before being attached.
    pub(crate) fn reserve(&self) -> Handle {
        Handle {
            shared: Arc::clone(self.shared),
            token: self.shared.next_token.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Attaches a source under a previously [`Ctx::reserve`]d handle,
    /// optionally arming a deadline. Installed when the current callback
    /// returns.
    pub(crate) fn attach(
        &mut self,
        handle: &Handle,
        source: Box<dyn Source>,
        deadline: Option<Instant>,
    ) {
        self.pending.push(Cmd::Register {
            token: handle.token,
            source,
            deadline,
        });
    }
}

/// One reactor: an epoll instance plus the thread that drives it.
///
/// Dropping (or [`Reactor::stop`]ping) the reactor drops every source,
/// which closes every owned descriptor — connections are severed exactly
/// like a process exit.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Reactor")
    }
}

const WAKER_TOKEN: u64 = 0;

impl Reactor {
    /// Creates the epoll instance and spawns the reactor thread.
    pub(crate) fn new(name: &str) -> io::Result<Reactor> {
        let epoll = Epoll::new()?;
        let waker = Waker::new(&epoll, WAKER_TOKEN)?;
        let shared = Arc::new(Shared {
            epoll,
            waker,
            next_token: AtomicU64::new(WAKER_TOKEN + 1),
            cmds: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let shared2 = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || run(&shared2))
            .map_err(|e| io::Error::other(format!("spawn reactor thread: {e}")))?;
        Ok(Reactor {
            shared,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// Registers a source built by `build` (which receives the source's
    /// own handle, so it can hand copies to worker threads). Returns the
    /// handle.
    pub(crate) fn register(
        &self,
        deadline: Option<Instant>,
        build: impl FnOnce(&Handle) -> Box<dyn Source>,
    ) -> Handle {
        let handle = Handle {
            shared: Arc::clone(&self.shared),
            token: self.shared.next_token.fetch_add(1, Ordering::Relaxed),
        };
        let source = build(&handle);
        self.shared.push(Cmd::Register {
            token: handle.token,
            source,
            deadline,
        });
        handle
    }

    /// Stops the reactor thread and joins it, dropping every source (and
    /// so closing every owned socket).
    pub(crate) fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.shared.waker.wake();
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.stop();
    }
}

struct Entry {
    fd: RawFd,
    source: Box<dyn Source>,
    interest: Interest,
}

/// Hashed timing wheel: 16 ms ticks, 512 slots (~8 s per round). Each
/// entry keeps its absolute deadline; insertion rounds *up* to a tick so
/// a deadline never fires early, and entries landing on an occupied slot
/// from a later round simply stay until their round comes up.
struct TimerWheel {
    slots: Vec<Vec<(u64, Instant)>>,
    start: Instant,
    /// Absolute index of the next unprocessed tick.
    next_tick: u64,
    armed: usize,
}

const TICK: Duration = Duration::from_millis(16);
const SLOTS: usize = 512;

impl TimerWheel {
    fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            start: now,
            next_tick: 0,
            armed: 0,
        }
    }

    fn tick_of(&self, when: Instant) -> u64 {
        let offset = when.saturating_duration_since(self.start);
        // Round up: fire at-or-after the deadline, never before.
        offset.as_micros().div_ceil(TICK.as_micros()) as u64
    }

    fn insert(&mut self, token: u64, when: Instant) {
        let tick = self.tick_of(when).max(self.next_tick);
        self.slots[(tick % SLOTS as u64) as usize].push((token, when));
        self.armed += 1;
    }

    /// How long `epoll_wait` may sleep: until the next tick that holds an
    /// entry (scanning at most one wheel round), or forever when no
    /// deadline is armed.
    fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.armed == 0 {
            return None;
        }
        let mut tick = self.next_tick;
        for _ in 0..SLOTS {
            if !self.slots[(tick % SLOTS as u64) as usize].is_empty() {
                break;
            }
            tick += 1;
        }
        // 64-bit math: `TICK * (tick as u32)` would truncate after 2^32
        // ticks (~795 days) and wrap the boundary.
        let boundary = self.start + Duration::from_micros(TICK.as_micros() as u64 * tick.max(1));
        Some(
            boundary
                .saturating_duration_since(now)
                .max(Duration::from_millis(1)),
        )
    }

    /// Advances the wheel to `now`, returning the tokens whose deadline
    /// has passed. Entries from future rounds sharing a slot are kept.
    fn expired(&mut self, now: Instant) -> Vec<u64> {
        let mut due = Vec::new();
        let now_tick = self.tick_of(now).saturating_add(1); // process every slot whose boundary passed
        while self.next_tick < now_tick {
            let slot = &mut self.slots[(self.next_tick % SLOTS as u64) as usize];
            if !slot.is_empty() {
                let before = due.len();
                let mut kept = Vec::new();
                for (token, when) in slot.drain(..) {
                    if when <= now {
                        due.push(token);
                    } else {
                        kept.push((token, when));
                    }
                }
                // Only this slot's expirations: `due` is cumulative across
                // the sweep, and over-subtracting would zero `armed` while
                // deadlines remain, stalling `next_timeout` forever.
                self.armed -= (due.len() - before).min(self.armed);
                *slot = kept;
            }
            self.next_tick += 1;
        }
        due
    }
}

fn run(shared: &Arc<Shared>) {
    let mut entries: HashMap<u64, Entry> = HashMap::new();
    let mut wheel = TimerWheel::new(Instant::now());
    let mut events = Events::with_capacity(256);
    let mut spawned: Vec<Cmd> = Vec::new();

    loop {
        // Install / dispatch queued commands first so a registration is
        // never delayed behind a long epoll sleep.
        let cmds: Vec<Cmd> = std::mem::take(&mut *shared.cmds.lock());
        for cmd in cmds {
            apply(shared, &mut entries, &mut wheel, &mut spawned, cmd);
        }
        while let Some(cmd) = spawned.pop() {
            apply(shared, &mut entries, &mut wheel, &mut spawned, cmd);
        }
        if shared.stop.load(Ordering::SeqCst) {
            // Dropping the entries closes every socket.
            return;
        }

        let timeout = wheel.next_timeout(Instant::now());
        match shared.epoll.wait(&mut events, timeout) {
            Ok(_) => {}
            Err(e) => {
                swarm_metrics::trace!("net.reactor", "epoll_wait failed, stopping: {e}");
                return;
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }

        let collected: Vec<epoll::Event> = events.iter().collect();
        for ev in collected {
            if ev.token == WAKER_TOKEN {
                shared.waker.drain();
                continue;
            }
            let Some(entry) = entries.get_mut(&ev.token) else {
                continue; // closed earlier in this batch
            };
            let mut ctx = Ctx {
                shared,
                pending: &mut spawned,
            };
            let verdict = entry
                .source
                .on_ready(ev.readable || ev.error, ev.writable, &mut ctx);
            finish(shared, &mut entries, ev.token, verdict);
        }

        let now = Instant::now();
        for token in wheel.expired(now) {
            let Some(entry) = entries.get_mut(&token) else {
                continue;
            };
            let mut ctx = Ctx {
                shared,
                pending: &mut spawned,
            };
            match entry.source.on_timer(now, &mut ctx) {
                TimerVerdict::Disarm => {
                    finish(shared, &mut entries, token, Ready::Continue);
                }
                TimerVerdict::ReArm(when) => {
                    wheel.insert(token, when);
                    finish(shared, &mut entries, token, Ready::Continue);
                }
                TimerVerdict::Close => {
                    finish(shared, &mut entries, token, Ready::Close);
                }
            }
        }
    }
}

fn apply(
    shared: &Arc<Shared>,
    entries: &mut HashMap<u64, Entry>,
    wheel: &mut TimerWheel,
    spawned: &mut Vec<Cmd>,
    cmd: Cmd,
) {
    match cmd {
        Cmd::Register {
            token,
            source,
            deadline,
        } => {
            let fd = source.fd();
            let interest = source.interest();
            if shared.epoll.add(fd, token, interest).is_err() {
                // Registration failure closes the connection (source drop);
                // the peer observes a severed socket and redials.
                swarm_metrics::trace!("net.reactor", "failed to register fd, dropping source");
                return;
            }
            entries.insert(
                token,
                Entry {
                    fd,
                    source,
                    interest,
                },
            );
            if let Some(when) = deadline {
                wheel.insert(token, when);
            }
        }
        Cmd::Notify(token) => {
            if let Some(entry) = entries.get_mut(&token) {
                let mut ctx = Ctx {
                    shared,
                    pending: spawned,
                };
                let verdict = entry.source.on_notify(&mut ctx);
                finish(shared, entries, token, verdict);
            }
        }
        Cmd::Close(token) => {
            entries.remove(&token);
        }
    }
}

/// Applies a callback verdict: drop the source on `Close`, otherwise
/// reconcile its interest set with epoll.
fn finish(shared: &Arc<Shared>, entries: &mut HashMap<u64, Entry>, token: u64, verdict: Ready) {
    match verdict {
        Ready::Close => {
            entries.remove(&token);
        }
        Ready::Continue => {
            if let Some(entry) = entries.get_mut(&token) {
                let want = entry.source.interest();
                if want != entry.interest && shared.epoll.modify(entry.fd, token, want).is_ok() {
                    entry.interest = want;
                }
            }
        }
    }
}

/// The process-wide reactor that drives all multiplexed client channels.
/// Lazily spawned; lives for the process (client connections come and go,
/// the loop is shared).
///
/// # Errors
///
/// Fails if the epoll instance cannot be created (e.g. off-Linux).
pub(crate) fn client_reactor() -> io::Result<&'static Reactor> {
    static CLIENT: std::sync::OnceLock<io::Result<Reactor>> = std::sync::OnceLock::new();
    match CLIENT.get_or_init(|| Reactor::new("swarm-mux-client")) {
        Ok(r) => Ok(r),
        Err(e) => Err(io::Error::new(e.kind(), e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_parses_and_displays() {
        assert_eq!("blocking".parse::<Runtime>().unwrap(), Runtime::Blocking);
        assert_eq!("epoll".parse::<Runtime>().unwrap(), Runtime::Epoll);
        assert!("tokio".parse::<Runtime>().is_err());
        assert_eq!(Runtime::Epoll.to_string(), "epoll");
        assert_eq!(Runtime::Blocking.to_string(), "blocking");
        #[cfg(target_os = "linux")]
        assert_eq!(Runtime::default_for_platform(), Runtime::Epoll);
    }

    #[test]
    fn timer_wheel_fires_at_or_after_deadline_and_keeps_future_rounds() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.insert(1, t0 + Duration::from_millis(10));
        wheel.insert(2, t0 + Duration::from_millis(100));
        // A deadline a full round + a bit away shares slots with near ones.
        wheel.insert(3, t0 + TICK * SLOTS as u32 + Duration::from_millis(10));

        assert!(wheel.next_timeout(t0).is_some());
        assert!(wheel.expired(t0).is_empty(), "nothing due at t0");

        let due = wheel.expired(t0 + Duration::from_millis(40));
        assert_eq!(due, vec![1]);
        let due = wheel.expired(t0 + Duration::from_millis(200));
        assert_eq!(due, vec![2]);
        assert!(wheel.next_timeout(t0).is_some(), "far entry still armed");
        let due = wheel.expired(t0 + TICK * (SLOTS as u32 + 4));
        assert_eq!(due, vec![3]);
        assert_eq!(wheel.next_timeout(t0), None, "wheel drained");
    }

    #[test]
    fn timer_wheel_armed_survives_multi_slot_sweep() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        // Three entries in three different slots, all expired by one
        // sweep, plus one far in the future.
        wheel.insert(1, t0 + Duration::from_millis(10));
        wheel.insert(2, t0 + Duration::from_millis(40));
        wheel.insert(3, t0 + Duration::from_millis(70));
        wheel.insert(4, t0 + Duration::from_secs(4));

        let mut due = wheel.expired(t0 + Duration::from_millis(100));
        due.sort_unstable();
        assert_eq!(due, vec![1, 2, 3]);
        // Regression: subtracting the cumulative due count per slot zeroed
        // `armed` here, so the far deadline never woke epoll again.
        assert!(wheel.next_timeout(t0).is_some(), "far entry still armed");
        assert_eq!(wheel.expired(t0 + Duration::from_secs(5)), vec![4]);
        assert_eq!(wheel.next_timeout(t0), None, "wheel drained");
    }

    #[cfg(target_os = "linux")]
    mod live {
        use super::*;
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;
        use std::sync::atomic::AtomicUsize;

        /// Counts readiness callbacks on one accepted socket.
        struct CountSource {
            stream: TcpStream,
            hits: Arc<AtomicUsize>,
            timer_hits: Arc<AtomicUsize>,
        }

        impl Source for CountSource {
            fn fd(&self) -> RawFd {
                self.stream.as_raw_fd()
            }
            fn interest(&self) -> Interest {
                Interest::READABLE
            }
            fn on_ready(&mut self, readable: bool, _w: bool, _ctx: &mut Ctx<'_>) -> Ready {
                use std::io::Read;
                if readable {
                    let mut buf = [0u8; 64];
                    match (&self.stream).read(&mut buf) {
                        Ok(0) => return Ready::Close,
                        Ok(_) => {
                            self.hits.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {}
                        Err(_) => return Ready::Close,
                    }
                }
                Ready::Continue
            }
            fn on_timer(&mut self, _now: Instant, _ctx: &mut Ctx<'_>) -> TimerVerdict {
                self.timer_hits.fetch_add(1, Ordering::SeqCst);
                TimerVerdict::Disarm
            }
        }

        #[test]
        fn reactor_delivers_readiness_and_timers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();

            let reactor = Reactor::new("test-reactor").unwrap();
            let hits = Arc::new(AtomicUsize::new(0));
            let timer_hits = Arc::new(AtomicUsize::new(0));
            let h2 = hits.clone();
            let t2 = timer_hits.clone();
            let deadline = Instant::now() + Duration::from_millis(80);
            let _handle = reactor.register(Some(deadline), move |_h| {
                Box::new(CountSource {
                    stream: server,
                    hits: h2,
                    timer_hits: t2,
                })
            });

            client.write_all(b"x").unwrap();
            let t0 = Instant::now();
            while hits.load(Ordering::SeqCst) == 0 && t0.elapsed() < Duration::from_secs(5) {
                std::thread::sleep(Duration::from_millis(5));
            }
            assert!(hits.load(Ordering::SeqCst) >= 1, "readiness delivered");
            while timer_hits.load(Ordering::SeqCst) == 0 && t0.elapsed() < Duration::from_secs(5) {
                std::thread::sleep(Duration::from_millis(5));
            }
            assert_eq!(timer_hits.load(Ordering::SeqCst), 1, "deadline fired once");
            reactor.stop();
        }
    }
}
