//! The server-side request dispatch interface.

use swarm_types::ClientId;

use crate::proto::{Request, Response};

/// Something that can service storage-server requests.
///
/// Implemented by `swarm_server::StorageServer`; the transports
/// ([`crate::MemTransport`], [`crate::tcp::TcpServer`]) are generic over
/// this trait so the same server logic runs in-process and over sockets.
///
/// `client` is the authenticated identity of the requester: transports
/// establish it at connection time (the TCP handshake carries it; the
/// in-memory transport is told at `connect`). ACL checks key off it.
pub trait RequestHandler: Send + Sync {
    /// Services one request on behalf of `client`.
    ///
    /// Implementations must be infallible at this boundary: internal errors
    /// are reported as [`Response::Err`], never panics, so one bad request
    /// cannot take down a server thread.
    fn handle(&self, client: ClientId, request: Request) -> Response;

    /// Services `request` without blocking, if it can.
    ///
    /// The epoll runtime's reactor thread offers each read here before
    /// queueing it for a worker: answering in place skips the two context
    /// switches of the worker-pool round trip, which dominate the cost of
    /// a memory-resident read on a loaded machine. An implementation may
    /// therefore only answer requests it can serve from memory under
    /// short bookkeeping locks — anything that could touch disk or wait
    /// on I/O must return `None` and take the worker path. The default
    /// declines everything.
    fn try_handle_fast(&self, _client: ClientId, _request: &Request) -> Option<Response> {
        None
    }
}

impl<T: RequestHandler + ?Sized> RequestHandler for std::sync::Arc<T> {
    fn handle(&self, client: ClientId, request: Request) -> Response {
        (**self).handle(client, request)
    }

    fn try_handle_fast(&self, client: ClientId, request: &Request) -> Option<Response> {
        (**self).try_handle_fast(client, request)
    }
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use swarm_types::{Bytes, FragmentId, SwarmError};

    /// Minimal in-memory handler used by transport tests (the real storage
    /// server lives in `swarm-server`; tests here only need the protocol
    /// plumbing).
    #[derive(Default)]
    pub struct EchoStore {
        pub fragments: Mutex<HashMap<FragmentId, Bytes>>,
    }

    impl RequestHandler for EchoStore {
        fn handle(&self, _client: ClientId, request: Request) -> Response {
            match request {
                Request::Ping => Response::Ok,
                Request::Store { fid, data, .. } => {
                    self.fragments.lock().insert(fid, data);
                    Response::Ok
                }
                Request::Read { fid, offset, len } => {
                    let frags = self.fragments.lock();
                    match frags.get(&fid) {
                        None => Response::from_error(&SwarmError::FragmentNotFound(fid)),
                        Some(data) => {
                            let start = offset as usize;
                            let end = start + len as usize;
                            if end > data.len() {
                                Response::from_error(&SwarmError::corrupt("short"))
                            } else {
                                Response::Data(data.slice(start..end))
                            }
                        }
                    }
                }
                _ => Response::Ok,
            }
        }
    }
}
