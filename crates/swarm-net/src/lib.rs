//! Networking substrate for Swarm: framing, the client↔server request
//! protocol, and pluggable transports.
//!
//! The paper's storage servers export a tiny fragment-oriented interface
//! (§2.3): store, read, delete, preallocate, and "query the FID of the last
//! marked fragment", plus ACL management. This crate defines that protocol
//! as typed [`Request`]/[`Response`] enums over a checksummed binary frame
//! format, and a [`Transport`] abstraction with two implementations:
//!
//! * [`MemTransport`] — in-process dispatch with fault injection (server
//!   down, dropped calls). Used by tests, examples, and benchmarks: it is
//!   the moral equivalent of the paper's switched Ethernet for functional
//!   purposes.
//! * [`tcp::TcpTransport`] / [`tcp::TcpServer`] — real sockets via
//!   `std::net`, served through a bounded [`WorkerPool`], matching the
//!   prototype's user-level server processes.
//!
//! The paper locates stripe neighbours by *broadcast* (§2.3.3). Both
//! transports expose the member set, and the [`broadcast`] helper simply
//! queries every server — the same observable semantics on a switched
//! network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod fault;
pub mod frame;
pub mod handler;
pub mod mem;
mod mux;
pub mod pool;
pub mod proto;
pub mod reactor;
pub mod tcp;
pub mod transport;
pub mod workpool;

pub use admission::{Admission, AdmissionConfig, Submitted};
pub use fault::{FaultHandler, FaultPlan, FaultTransport};
pub use frame::{read_frame, write_frame, write_frame_vectored};
pub use handler::RequestHandler;
pub use mem::MemTransport;
pub use pool::ConnectionPool;
pub use proto::{
    BatchItem, BatchReply, HintSpec, PreparedRequest, ReadSpec, Request, Response, ServerStats,
    StoreRange,
};
pub use reactor::Runtime;
pub use transport::{
    broadcast, peer_server_id, Connection, PeerHost, PeerTransport, PendingCall, Transport,
    PEER_SERVER_BASE,
};
pub use workpool::WorkerPool;
