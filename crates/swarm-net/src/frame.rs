//! Checksummed length-prefixed frames.
//!
//! Every message between a client and a storage server travels in one
//! frame:
//!
//! ```text
//! +--------+--------+-----------+-------------------+
//! | magic  | length | crc32     | payload (length)  |
//! | u32 le | u32 le | u32 le    | bytes             |
//! +--------+--------+-----------+-------------------+
//! ```
//!
//! The CRC covers the payload only; the magic catches stream
//! desynchronization and non-Swarm peers. Frames are bounded so a bad
//! length prefix cannot trigger a giant allocation.

use std::io::{Read, Write};

use swarm_types::constants::FRAME_MAGIC;
use swarm_types::crc::Crc32;
use swarm_types::{Result, SwarmError};

/// Maximum frame payload (16 MiB): a fragment plus protocol overhead.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Writes one frame containing `payload` to `w`, flushing it.
///
/// # Errors
///
/// Returns [`SwarmError::Io`] if the underlying writer fails, or
/// [`SwarmError::InvalidArgument`] if the payload exceeds [`MAX_FRAME_LEN`].
pub fn write_frame<W: Write>(w: W, payload: &[u8]) -> Result<()> {
    write_frame_vectored(w, payload, &[])
}

/// Writes one frame whose payload is the concatenation `head ++ tail`,
/// without assembling it contiguously.
///
/// This is the zero-copy store path: `head` is the few-dozen-byte message
/// header encoded by the codec, `tail` is the (possibly megabyte-sized)
/// fragment payload borrowed from its shared buffer. The frame on the
/// wire is byte-identical to `write_frame(w, [head, tail].concat())`.
///
/// # Errors
///
/// Returns [`SwarmError::Io`] if the underlying writer fails, or
/// [`SwarmError::InvalidArgument`] if the combined payload exceeds
/// [`MAX_FRAME_LEN`].
pub fn write_frame_vectored<W: Write>(mut w: W, head: &[u8], tail: &[u8]) -> Result<()> {
    let len = head.len() + tail.len();
    if len > MAX_FRAME_LEN {
        return Err(SwarmError::invalid(format!(
            "frame payload {len} exceeds {MAX_FRAME_LEN}"
        )));
    }
    let mut crc = Crc32::new();
    crc.update(head);
    crc.update(tail);
    let mut header = [0u8; 12];
    header[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
    header[4..8].copy_from_slice(&(len as u32).to_le_bytes());
    header[8..12].copy_from_slice(&crc.finish().to_le_bytes());
    w.write_all(&header)?;
    w.write_all(head)?;
    if !tail.is_empty() {
        w.write_all(tail)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`, verifying magic and checksum.
///
/// # Errors
///
/// Returns [`SwarmError::Io`] on reader failure (including a clean EOF
/// mid-frame) and [`SwarmError::Corrupt`] on bad magic, oversized length,
/// or checksum mismatch.
pub fn read_frame<R: Read>(mut r: R) -> Result<Vec<u8>> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != FRAME_MAGIC {
        return Err(SwarmError::corrupt(format!(
            "bad frame magic {magic:#010x}"
        )));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(SwarmError::corrupt(format!(
            "frame length {len} exceeds {MAX_FRAME_LEN}"
        )));
    }
    let want_crc = u32::from_le_bytes(header[8..12].try_into().unwrap());
    // Reserve + read_to_end instead of a zero-filled Vec: `read_exact`
    // into `vec![0u8; len]` would scrub up to 16 MiB per frame before
    // overwriting every byte. `take` bounds the read at `len`.
    let mut payload = Vec::with_capacity(len);
    (&mut r).take(len as u64).read_to_end(&mut payload)?;
    if payload.len() != len {
        return Err(SwarmError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("frame truncated: wanted {len} bytes, got {}", payload.len()),
        )));
    }
    let mut got_crc = Crc32::new();
    got_crc.update(&payload);
    let got_crc = got_crc.finish();
    if got_crc != want_crc {
        return Err(SwarmError::corrupt(format!(
            "frame checksum mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello swarm").unwrap();
        let got = read_frame(Cursor::new(&buf)).unwrap();
        assert_eq!(got, b"hello swarm");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        assert_eq!(read_frame(Cursor::new(&buf)).unwrap(), b"");
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello swarm").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let err = read_frame(Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SwarmError::Corrupt(_)), "{err}");
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"x").unwrap();
        buf[0] ^= 0x01;
        let err = read_frame(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SwarmError::Io(_)), "{err}");
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn back_to_back_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"one");
        assert_eq!(read_frame(&mut cur).unwrap(), b"two");
    }

    #[test]
    fn vectored_matches_contiguous_on_the_wire() {
        let head = b"header bytes";
        let tail = b"and a payload that follows";
        let mut contiguous = Vec::new();
        write_frame(&mut contiguous, &[&head[..], &tail[..]].concat()).unwrap();
        let mut vectored = Vec::new();
        write_frame_vectored(&mut vectored, head, tail).unwrap();
        assert_eq!(contiguous, vectored);
        let got = read_frame(Cursor::new(&vectored)).unwrap();
        assert_eq!(got, [&head[..], &tail[..]].concat());
    }

    #[test]
    fn vectored_with_empty_tail_is_plain_frame() {
        let mut a = Vec::new();
        write_frame(&mut a, b"solo").unwrap();
        let mut b = Vec::new();
        write_frame_vectored(&mut b, b"solo", b"").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn vectored_oversize_is_rejected() {
        let tail = vec![0u8; MAX_FRAME_LEN];
        let mut sink = Vec::new();
        let err = write_frame_vectored(&mut sink, b"x", &tail).unwrap_err();
        assert!(matches!(err, SwarmError::InvalidArgument(_)), "{err}");
        assert!(sink.is_empty(), "nothing written on reject");
    }
}
