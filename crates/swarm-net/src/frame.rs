//! Checksummed length-prefixed frames.
//!
//! Every message between a client and a storage server travels in one
//! frame:
//!
//! ```text
//! +--------+--------+-----------+-------------------+
//! | magic  | length | crc32     | payload (length)  |
//! | u32 le | u32 le | u32 le    | bytes             |
//! +--------+--------+-----------+-------------------+
//! ```
//!
//! The CRC covers the payload only; the magic catches stream
//! desynchronization and non-Swarm peers. Frames are bounded so a bad
//! length prefix cannot trigger a giant allocation.

use std::io::{Read, Write};

use swarm_types::constants::FRAME_MAGIC;
use swarm_types::{crc32, Result, SwarmError};

/// Maximum frame payload (16 MiB): a fragment plus protocol overhead.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Writes one frame containing `payload` to `w`, flushing it.
///
/// # Errors
///
/// Returns [`SwarmError::Io`] if the underlying writer fails, or
/// [`SwarmError::InvalidArgument`] if the payload exceeds [`MAX_FRAME_LEN`].
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(SwarmError::invalid(format!(
            "frame payload {} exceeds {MAX_FRAME_LEN}",
            payload.len()
        )));
    }
    let mut header = [0u8; 12];
    header[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
    header[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[8..12].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`, verifying magic and checksum.
///
/// # Errors
///
/// Returns [`SwarmError::Io`] on reader failure (including a clean EOF
/// mid-frame) and [`SwarmError::Corrupt`] on bad magic, oversized length,
/// or checksum mismatch.
pub fn read_frame<R: Read>(mut r: R) -> Result<Vec<u8>> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != FRAME_MAGIC {
        return Err(SwarmError::corrupt(format!(
            "bad frame magic {magic:#010x}"
        )));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(SwarmError::corrupt(format!(
            "frame length {len} exceeds {MAX_FRAME_LEN}"
        )));
    }
    let want_crc = u32::from_le_bytes(header[8..12].try_into().unwrap());
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let got_crc = crc32(&payload);
    if got_crc != want_crc {
        return Err(SwarmError::corrupt(format!(
            "frame checksum mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello swarm").unwrap();
        let got = read_frame(Cursor::new(&buf)).unwrap();
        assert_eq!(got, b"hello swarm");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        assert_eq!(read_frame(Cursor::new(&buf)).unwrap(), b"");
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello swarm").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let err = read_frame(Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SwarmError::Corrupt(_)), "{err}");
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"x").unwrap();
        buf[0] ^= 0x01;
        let err = read_frame(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SwarmError::Io(_)), "{err}");
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn back_to_back_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"one");
        assert_eq!(read_frame(&mut cur).unwrap(), b"two");
    }
}
