//! Checksummed length-prefixed frames.
//!
//! Every message between a client and a storage server travels in one
//! frame:
//!
//! ```text
//! +--------+--------+-----------+-------------------+
//! | magic  | length | crc32     | payload (length)  |
//! | u32 le | u32 le | u32 le    | bytes             |
//! +--------+--------+-----------+-------------------+
//! ```
//!
//! The CRC covers the payload only; the magic catches stream
//! desynchronization and non-Swarm peers. Frames are bounded so a bad
//! length prefix cannot trigger a giant allocation.

use std::io::{Read, Write};

use swarm_types::constants::FRAME_MAGIC;
use swarm_types::crc::Crc32;
use swarm_types::{Result, SwarmError};

/// Maximum frame payload (16 MiB): a fragment plus protocol overhead.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Writes one frame containing `payload` to `w`, flushing it.
///
/// # Errors
///
/// Returns [`SwarmError::Io`] if the underlying writer fails, or
/// [`SwarmError::InvalidArgument`] if the payload exceeds [`MAX_FRAME_LEN`].
pub fn write_frame<W: Write>(w: W, payload: &[u8]) -> Result<()> {
    write_frame_vectored(w, payload, &[])
}

/// Writes one frame whose payload is the concatenation `head ++ tail`,
/// without assembling it contiguously.
///
/// This is the zero-copy store path: `head` is the few-dozen-byte message
/// header encoded by the codec, `tail` is the (possibly megabyte-sized)
/// fragment payload borrowed from its shared buffer. The frame on the
/// wire is byte-identical to `write_frame(w, [head, tail].concat())`.
///
/// # Errors
///
/// Returns [`SwarmError::Io`] if the underlying writer fails, or
/// [`SwarmError::InvalidArgument`] if the combined payload exceeds
/// [`MAX_FRAME_LEN`].
pub fn write_frame_vectored<W: Write>(mut w: W, head: &[u8], tail: &[u8]) -> Result<()> {
    let len = head.len() + tail.len();
    if len > MAX_FRAME_LEN {
        return Err(SwarmError::invalid(format!(
            "frame payload {len} exceeds {MAX_FRAME_LEN}"
        )));
    }
    let mut crc = Crc32::new();
    crc.update(head);
    crc.update(tail);
    let mut header = [0u8; 12];
    header[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
    header[4..8].copy_from_slice(&(len as u32).to_le_bytes());
    header[8..12].copy_from_slice(&crc.finish().to_le_bytes());
    w.write_all(&header)?;
    w.write_all(head)?;
    if !tail.is_empty() {
        w.write_all(tail)?;
    }
    w.flush()?;
    Ok(())
}

/// Builds the 12-byte frame header for a payload given as scattered
/// `parts`, without concatenating them.
///
/// The epoll paths queue frames as segment lists (header `Vec` + shared
/// payload `Bytes`) and write them with plain non-blocking `write` calls;
/// this helper produces the exact header `write_frame_vectored` would
/// have emitted for the same bytes.
///
/// # Errors
///
/// Returns [`SwarmError::InvalidArgument`] if the combined payload
/// exceeds [`MAX_FRAME_LEN`].
pub fn frame_header_for(parts: &[&[u8]]) -> Result<[u8; 12]> {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    if len > MAX_FRAME_LEN {
        return Err(SwarmError::invalid(format!(
            "frame payload {len} exceeds {MAX_FRAME_LEN}"
        )));
    }
    let mut crc = Crc32::new();
    for p in parts {
        crc.update(p);
    }
    let mut header = [0u8; 12];
    header[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
    header[4..8].copy_from_slice(&(len as u32).to_le_bytes());
    header[8..12].copy_from_slice(&crc.finish().to_le_bytes());
    Ok(header)
}

/// Outcome of one [`FrameReader::read_from`] pump.
#[derive(Debug)]
pub enum FrameProgress {
    /// A whole frame arrived; payload verified against its checksum.
    Frame(Vec<u8>),
    /// The reader would block; try again on the next readiness event.
    Blocked,
    /// Clean end-of-stream on a frame boundary.
    Eof,
}

/// Incremental frame decoder for non-blocking streams.
///
/// Where [`read_frame`] parks the thread until a whole frame arrives, a
/// `FrameReader` consumes whatever bytes the socket has and parks the
/// *state* instead: header-so-far, then payload-so-far, resuming exactly
/// where it stopped on the next readiness event. One instance per
/// connection; it carries at most one partial frame.
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 12],
    header_filled: usize,
    /// Payload length/CRC parsed from the header (`None` until complete).
    want: Option<(usize, u32)>,
    payload: Vec<u8>,
}

impl FrameReader {
    /// A fresh decoder at a frame boundary.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// True when mid-frame (a reaped connection with `in_frame` lost data).
    pub fn in_frame(&self) -> bool {
        self.header_filled > 0 || self.want.is_some()
    }

    /// Pumps bytes from `r` until a frame completes, the reader would
    /// block, or the stream ends. Returns at most one frame per call;
    /// callers drain by looping until [`FrameProgress::Blocked`].
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] on bad magic, oversized length, or
    /// checksum mismatch, and [`SwarmError::Io`] on reader failure —
    /// including EOF mid-frame, which surfaces as `UnexpectedEof`.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> Result<FrameProgress> {
        loop {
            if self.want.is_none() {
                match r.read(&mut self.header[self.header_filled..]) {
                    Ok(0) => {
                        if self.header_filled == 0 {
                            return Ok(FrameProgress::Eof);
                        }
                        return Err(eof_mid_frame(self.header_filled, 12));
                    }
                    Ok(n) => self.header_filled += n,
                    Err(e) => match e.kind() {
                        std::io::ErrorKind::WouldBlock => return Ok(FrameProgress::Blocked),
                        std::io::ErrorKind::Interrupted => continue,
                        _ => return Err(SwarmError::Io(e)),
                    },
                }
                if self.header_filled < 12 {
                    continue;
                }
                let magic = u32::from_le_bytes(self.header[0..4].try_into().unwrap());
                if magic != FRAME_MAGIC {
                    return Err(SwarmError::corrupt(format!(
                        "bad frame magic {magic:#010x}"
                    )));
                }
                let len = u32::from_le_bytes(self.header[4..8].try_into().unwrap()) as usize;
                if len > MAX_FRAME_LEN {
                    return Err(SwarmError::corrupt(format!(
                        "frame length {len} exceeds {MAX_FRAME_LEN}"
                    )));
                }
                let crc = u32::from_le_bytes(self.header[8..12].try_into().unwrap());
                self.want = Some((len, crc));
                self.payload = Vec::with_capacity(len.min(MAX_FRAME_LEN));
            }

            let (len, want_crc) = self.want.unwrap();
            while self.payload.len() < len {
                // Bounded stack buffer: appends without pre-zeroing the
                // whole (up to 16 MiB) payload allocation.
                let mut chunk = [0u8; 16 * 1024];
                let room = (len - self.payload.len()).min(chunk.len());
                match r.read(&mut chunk[..room]) {
                    Ok(0) => return Err(eof_mid_frame(self.payload.len(), len)),
                    Ok(n) => self.payload.extend_from_slice(&chunk[..n]),
                    Err(e) => match e.kind() {
                        std::io::ErrorKind::WouldBlock => return Ok(FrameProgress::Blocked),
                        std::io::ErrorKind::Interrupted => continue,
                        _ => return Err(SwarmError::Io(e)),
                    },
                }
            }

            let mut got_crc = Crc32::new();
            got_crc.update(&self.payload);
            let got_crc = got_crc.finish();
            if got_crc != want_crc {
                return Err(SwarmError::corrupt(format!(
                    "frame checksum mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"
                )));
            }
            self.header_filled = 0;
            self.want = None;
            return Ok(FrameProgress::Frame(std::mem::take(&mut self.payload)));
        }
    }
}

fn eof_mid_frame(got: usize, want: usize) -> SwarmError {
    SwarmError::Io(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        format!("frame truncated: wanted {want} bytes, got {got}"),
    ))
}

/// Reads one frame from `r`, verifying magic and checksum.
///
/// # Errors
///
/// Returns [`SwarmError::Io`] on reader failure (including a clean EOF
/// mid-frame) and [`SwarmError::Corrupt`] on bad magic, oversized length,
/// or checksum mismatch.
pub fn read_frame<R: Read>(mut r: R) -> Result<Vec<u8>> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != FRAME_MAGIC {
        return Err(SwarmError::corrupt(format!(
            "bad frame magic {magic:#010x}"
        )));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(SwarmError::corrupt(format!(
            "frame length {len} exceeds {MAX_FRAME_LEN}"
        )));
    }
    let want_crc = u32::from_le_bytes(header[8..12].try_into().unwrap());
    // Reserve + read_to_end instead of a zero-filled Vec: `read_exact`
    // into `vec![0u8; len]` would scrub up to 16 MiB per frame before
    // overwriting every byte. `take` bounds the read at `len`.
    let mut payload = Vec::with_capacity(len);
    (&mut r).take(len as u64).read_to_end(&mut payload)?;
    if payload.len() != len {
        return Err(SwarmError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("frame truncated: wanted {len} bytes, got {}", payload.len()),
        )));
    }
    let mut got_crc = Crc32::new();
    got_crc.update(&payload);
    let got_crc = got_crc.finish();
    if got_crc != want_crc {
        return Err(SwarmError::corrupt(format!(
            "frame checksum mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello swarm").unwrap();
        let got = read_frame(Cursor::new(&buf)).unwrap();
        assert_eq!(got, b"hello swarm");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        assert_eq!(read_frame(Cursor::new(&buf)).unwrap(), b"");
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello swarm").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let err = read_frame(Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SwarmError::Corrupt(_)), "{err}");
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"x").unwrap();
        buf[0] ^= 0x01;
        let err = read_frame(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, SwarmError::Io(_)), "{err}");
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(Cursor::new(&buf)).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn back_to_back_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"one");
        assert_eq!(read_frame(&mut cur).unwrap(), b"two");
    }

    #[test]
    fn vectored_matches_contiguous_on_the_wire() {
        let head = b"header bytes";
        let tail = b"and a payload that follows";
        let mut contiguous = Vec::new();
        write_frame(&mut contiguous, &[&head[..], &tail[..]].concat()).unwrap();
        let mut vectored = Vec::new();
        write_frame_vectored(&mut vectored, head, tail).unwrap();
        assert_eq!(contiguous, vectored);
        let got = read_frame(Cursor::new(&vectored)).unwrap();
        assert_eq!(got, [&head[..], &tail[..]].concat());
    }

    #[test]
    fn vectored_with_empty_tail_is_plain_frame() {
        let mut a = Vec::new();
        write_frame(&mut a, b"solo").unwrap();
        let mut b = Vec::new();
        write_frame_vectored(&mut b, b"solo", b"").unwrap();
        assert_eq!(a, b);
    }

    /// A reader that yields its input in `chunk`-byte dribbles with a
    /// `WouldBlock` between each, like a slow non-blocking socket.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        ready: bool,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.ready = false;
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_header_for_matches_write_frame() {
        let head = b"header";
        let tail = b"payload bytes";
        let mut wire = Vec::new();
        write_frame_vectored(&mut wire, head, tail).unwrap();
        let header = frame_header_for(&[head, tail]).unwrap();
        assert_eq!(&wire[..12], &header);
        assert!(frame_header_for(&[&[0u8; MAX_FRAME_LEN], b"x"]).is_err());
    }

    #[test]
    fn frame_reader_reassembles_across_would_blocks() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first frame payload").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let mut r = Dribble {
            data: wire,
            pos: 0,
            chunk: 3,
            ready: false,
        };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match reader.read_from(&mut r).unwrap() {
                FrameProgress::Frame(f) => frames.push(f),
                FrameProgress::Blocked => continue,
                FrameProgress::Eof => break,
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], b"first frame payload");
        assert_eq!(frames[1], b"second");
        assert!(!reader.in_frame());
    }

    #[test]
    fn frame_reader_rejects_corruption_and_mid_frame_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xff;
        let mut reader = FrameReader::new();
        let err = reader.read_from(&mut Cursor::new(&wire)).unwrap_err();
        assert!(matches!(err, SwarmError::Corrupt(_)), "{err}");

        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        wire.truncate(wire.len() - 2);
        let mut reader = FrameReader::new();
        let mut cur = Cursor::new(&wire);
        let err = loop {
            match reader.read_from(&mut cur) {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, SwarmError::Io(_)), "{err}");
        let mut empty = Cursor::new(Vec::new());
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.read_from(&mut empty).unwrap(),
            FrameProgress::Eof
        ));
    }

    #[test]
    fn vectored_oversize_is_rejected() {
        let tail = vec![0u8; MAX_FRAME_LEN];
        let mut sink = Vec::new();
        let err = write_frame_vectored(&mut sink, b"x", &tail).unwrap_err();
        assert!(matches!(err, SwarmError::InvalidArgument(_)), "{err}");
        assert!(sink.is_empty(), "nothing written on reject");
    }
}
