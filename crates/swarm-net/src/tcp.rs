//! TCP transport: the real-sockets equivalent of the paper's prototype,
//! where storage servers are user-level processes reached over switched
//! Ethernet (§3).
//!
//! Connection establishment performs a small handshake so the server knows
//! which client it is talking to (the prototype relied on the transport
//! for identity as well): the client sends a frame containing its
//! [`ClientId`] (optionally prefixed with the mux magic — see
//! `crate::mux`), the server replies with its [`ServerId`].
//!
//! Two runtimes serve the same wire protocol (selected per server via
//! [`ServerConfig::runtime`] and per transport via
//! [`TcpTransport::set_runtime`]; either side may run either runtime):
//!
//! * **Blocking** — thread-per-connection: accepted connections queue for
//!   a [`WorkerPool`] worker that parks in `read_frame`. One request is in
//!   flight per connection.
//! * **Epoll** — a reactor thread drives every connection as a
//!   non-blocking state machine; the worker pool only runs handlers
//!   (file I/O, fragment-store locking). Clients multiplex many
//!   concurrent calls on one connection by request id, and the server
//!   holds thousands of idle connections at a few hundred bytes each.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use swarm_metrics::{Counter, Histogram};
use swarm_types::{ByteWriter, Bytes, ClientId, Decode, Encode, Result, ServerId, SwarmError};

use crate::frame::{
    frame_header_for, read_frame, write_frame, write_frame_vectored, FrameProgress, FrameReader,
};
use crate::handler::RequestHandler;
use crate::mux::{mux_dial, parse_hello, MuxChannel, MuxSource, Seg};
use crate::proto::{PreparedRequest, Request, Response};
use crate::reactor::{Ctx, Handle, Reactor, Ready, Runtime, Source, TimerVerdict};
use crate::transport::{Connection, PendingCall, Transport};
use crate::workpool::{WorkerPool, DEFAULT_WORKERS};

/// How long the accept path backs off after a failed `accept()` before
/// trying again, so a persistent error (fd exhaustion, dead listener)
/// cannot spin a core at 100%.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(10);

/// Consecutive `accept()` failures after which the accept path concludes
/// the listener is dead and stops. A successful accept resets the count.
const ACCEPT_ERROR_LIMIT: u32 = 100;

/// Default read/write timeout for client connections; long enough for a
/// slow disk on the far side, short enough that a hung server surfaces as
/// [`SwarmError::ServerUnavailable`] and the writer's retry path engages.
pub const DEFAULT_CALL_TIMEOUT: Duration = Duration::from_secs(30);

/// Default server-side read deadline: a connection that delivers no bytes
/// for this long while nothing is in flight is reaped. Protects both
/// runtimes from slow-loris peers (a trickled half-frame used to park a
/// blocking worker forever, or pin reactor connection state).
pub const DEFAULT_READ_DEADLINE: Duration = Duration::from_secs(30);

/// Requests a single connection may have in flight (queued or running in
/// the worker pool) before the epoll server pauses reading from it.
const MAX_INFLIGHT_PER_CONN: usize = 64;

pub(crate) struct NetMetrics {
    pub(crate) accept_errors: Counter,
    pub(crate) server_connections: Counter,
    pub(crate) server_requests: Counter,
    pub(crate) server_fast_reads: Counter,
    pub(crate) server_bytes_in: Counter,
    pub(crate) server_bytes_out: Counter,
    pub(crate) conns_reaped: Counter,
    pub(crate) server_request_us: Histogram,
    pub(crate) client_connects: Counter,
    pub(crate) client_call_errors: Counter,
    pub(crate) client_bytes_out: Counter,
    pub(crate) client_bytes_in: Counter,
    pub(crate) client_call_us: Histogram,
}

pub(crate) fn metrics() -> &'static NetMetrics {
    static M: OnceLock<NetMetrics> = OnceLock::new();
    M.get_or_init(|| NetMetrics {
        accept_errors: swarm_metrics::counter("net.server.accept_errors"),
        server_connections: swarm_metrics::counter("net.server.connections"),
        server_requests: swarm_metrics::counter("net.server.requests"),
        server_fast_reads: swarm_metrics::counter("net.server.fast_reads"),
        server_bytes_in: swarm_metrics::counter("net.server.bytes_in"),
        server_bytes_out: swarm_metrics::counter("net.server.bytes_out"),
        conns_reaped: swarm_metrics::counter("net.server.conns_reaped"),
        server_request_us: swarm_metrics::histogram("net.server.request_us"),
        client_connects: swarm_metrics::counter("net.client.connects"),
        client_call_errors: swarm_metrics::counter("net.client.call_errors"),
        client_bytes_out: swarm_metrics::counter("net.client.bytes_out"),
        client_bytes_in: swarm_metrics::counter("net.client.bytes_in"),
        client_call_us: swarm_metrics::histogram("net.client.call_us"),
    })
}

/// Configuration for [`TcpServer::spawn_with_config`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker pool width. Blocking runtime: max connections served
    /// concurrently. Epoll runtime: max handlers running concurrently
    /// (connections themselves are unbounded).
    pub workers: usize,
    /// Which I/O engine serves connections.
    pub runtime: Runtime,
    /// Reap a connection that delivers no bytes for this long while no
    /// request of its is in flight (`None` = never reap — the
    /// pre-deadline behaviour). Clients whose pooled idle connection is
    /// reaped redial transparently.
    pub read_deadline: Option<Duration>,
    /// Server-side fault plan (see [`TcpServer::spawn_with_faults`]).
    pub faults: Option<Arc<crate::fault::FaultPlan>>,
    /// Per-client fairness when the worker pool saturates (epoll runtime
    /// only — the blocking runtime dedicates a worker per connection).
    /// See [`crate::admission::Admission`].
    pub admission: crate::admission::AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: DEFAULT_WORKERS,
            runtime: Runtime::default_for_platform(),
            read_deadline: Some(DEFAULT_READ_DEADLINE),
            faults: None,
            admission: crate::admission::AdmissionConfig::default(),
        }
    }
}

/// A running TCP storage-server endpoint.
///
/// Wraps a [`RequestHandler`] and serves it on a listening socket with the
/// runtime chosen by [`ServerConfig::runtime`] (platform default unless
/// overridden). Dropping the server (or calling [`TcpServer::shutdown`])
/// stops accepting, severs established connections (unblocking any worker
/// parked in a socket read), and joins all threads.
pub struct TcpServer {
    id: ServerId,
    addr: SocketAddr,
    state: ServerState,
}

enum ServerState {
    Blocking {
        stop: Arc<AtomicBool>,
        accept_thread: Option<JoinHandle<()>>,
        conns: Arc<Mutex<Vec<TcpStream>>>,
        pool: Option<Arc<WorkerPool>>,
    },
    Epoll {
        reactor: Option<Reactor>,
        pool: Option<Arc<WorkerPool>>,
    },
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .field("runtime", &self.runtime())
            .finish()
    }
}

impl TcpServer {
    /// Binds `bind_addr` (use port 0 for an ephemeral port) and starts
    /// serving `handler` as server `id` with default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Io`] if the address cannot be bound.
    pub fn spawn(
        id: ServerId,
        bind_addr: &str,
        handler: Arc<dyn RequestHandler>,
    ) -> Result<TcpServer> {
        Self::spawn_with_config(id, bind_addr, handler, ServerConfig::default())
    }

    /// Like [`TcpServer::spawn`], but with a server-side [`FaultPlan`]
    /// hook: when the plan has a pending truncation
    /// ([`FaultPlan::inject_truncate`]), the server processes the request,
    /// writes only a *prefix* of the response frame, and severs the
    /// connection — a genuinely torn frame on a real socket. The client
    /// observes [`SwarmError::ServerUnavailable`] with the ack lost, so a
    /// retried store hits the duplicate-store path.
    ///
    /// [`FaultPlan`]: crate::fault::FaultPlan
    /// [`FaultPlan::inject_truncate`]: crate::fault::FaultPlan::inject_truncate
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Io`] if the address cannot be bound.
    pub fn spawn_with_faults(
        id: ServerId,
        bind_addr: &str,
        handler: Arc<dyn RequestHandler>,
        faults: Option<Arc<crate::fault::FaultPlan>>,
    ) -> Result<TcpServer> {
        Self::spawn_with_config(
            id,
            bind_addr,
            handler,
            ServerConfig {
                faults,
                ..ServerConfig::default()
            },
        )
    }

    /// Like [`TcpServer::spawn_with_faults`], but with an explicit worker
    /// pool width.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Io`] if the address cannot be bound.
    pub fn spawn_with_opts(
        id: ServerId,
        bind_addr: &str,
        handler: Arc<dyn RequestHandler>,
        faults: Option<Arc<crate::fault::FaultPlan>>,
        workers: usize,
    ) -> Result<TcpServer> {
        Self::spawn_with_config(
            id,
            bind_addr,
            handler,
            ServerConfig {
                workers,
                faults,
                ..ServerConfig::default()
            },
        )
    }

    /// Binds `bind_addr` and serves `handler` with full control over the
    /// runtime, worker width, read deadline, and fault plan.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Io`] if the address cannot be bound, or if
    /// the epoll runtime was requested on a platform without epoll.
    pub fn spawn_with_config(
        id: ServerId,
        bind_addr: &str,
        handler: Arc<dyn RequestHandler>,
        config: ServerConfig,
    ) -> Result<TcpServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let pool = Arc::new(WorkerPool::new(
            &format!("swarm-conn-{}", id.raw()),
            config.workers,
        ));
        let state = match config.runtime {
            Runtime::Blocking => {
                let stop = Arc::new(AtomicBool::new(false));
                let stop2 = stop.clone();
                let conns = Arc::new(Mutex::new(Vec::new()));
                let conns2 = conns.clone();
                let pool2 = pool.clone();
                let faults = config.faults;
                let deadline = config.read_deadline;
                let accept_thread = std::thread::Builder::new()
                    .name(format!("swarm-server-{}", id.raw()))
                    .spawn(move || {
                        accept_loop(
                            listener, id, handler, stop2, conns2, faults, deadline, &pool2,
                        )
                    })
                    .expect("spawn server accept thread");
                ServerState::Blocking {
                    stop,
                    accept_thread: Some(accept_thread),
                    conns,
                    pool: Some(pool),
                }
            }
            Runtime::Epoll => {
                listener.set_nonblocking(true)?;
                let reactor = Reactor::new(&format!("swarm-epoll-{}", id.raw()))?;
                let source = ListenerSource {
                    listener,
                    id,
                    handler,
                    faults: config.faults,
                    admission: crate::admission::Admission::new(pool.clone(), config.admission),
                    read_deadline: config.read_deadline,
                    consecutive_errors: 0,
                };
                reactor.register(None, move |_h| Box::new(source));
                ServerState::Epoll {
                    reactor: Some(reactor),
                    pool: Some(pool),
                }
            }
        };
        Ok(TcpServer { id, addr, state })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The runtime this server was spawned with.
    pub fn runtime(&self) -> Runtime {
        match &self.state {
            ServerState::Blocking { .. } => Runtime::Blocking,
            ServerState::Epoll { .. } => Runtime::Epoll,
        }
    }

    /// Stops accepting new connections, severs established ones, and joins
    /// every thread. Like a process exit, in-flight peers see their
    /// sockets close — a client holding a pooled connection must redial.
    pub fn shutdown(&mut self) {
        match &mut self.state {
            ServerState::Blocking {
                stop,
                accept_thread,
                conns,
                pool,
            } => {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept() call with a dummy connection.
                let _ = TcpStream::connect(self.addr);
                if let Some(t) = accept_thread.take() {
                    let _ = t.join();
                }
                for stream in conns.lock().drain(..) {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
                // The accept thread is joined and its pool reference
                // released, so this drop is the last one: it closes the
                // job queue and joins the workers (severing the
                // connections above unblocked any worker parked in a
                // socket read).
                pool.take();
            }
            ServerState::Epoll { reactor, pool } => {
                // Stopping the reactor drops the listener and every
                // connection source, closing their sockets. Workers never
                // park on sockets in this runtime, so closing the job
                // queue then joins promptly; their late notify() calls
                // land on a stopped reactor and are ignored.
                reactor.take();
                pool.take();
            }
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Blocking runtime: accept loop + thread-per-connection serving.
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    id: ServerId,
    handler: Arc<dyn RequestHandler>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    faults: Option<Arc<crate::fault::FaultPlan>>,
    read_deadline: Option<Duration>,
    pool: &WorkerPool,
) {
    let mut consecutive_errors = 0u32;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(err) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // Back off instead of spinning: a persistent accept failure
                // (fd exhaustion, listener torn down) would otherwise loop
                // at 100% CPU. Past the limit the listener is considered
                // dead and the loop exits cleanly.
                metrics().accept_errors.inc();
                consecutive_errors += 1;
                swarm_metrics::trace!(
                    "net.accept",
                    "server {} accept error ({consecutive_errors} consecutive): {err}",
                    id.raw()
                );
                if consecutive_errors >= ACCEPT_ERROR_LIMIT {
                    swarm_metrics::trace!(
                        "net.accept",
                        "server {} giving up on dead listener",
                        id.raw()
                    );
                    return;
                }
                std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                continue;
            }
        };
        consecutive_errors = 0;
        if stop.load(Ordering::SeqCst) {
            return;
        }
        metrics().server_connections.inc();
        // Keep a handle so shutdown can sever the connection (which also
        // unblocks the worker serving it); closed sockets accumulate only
        // until the next shutdown, and a server's connection count is
        // small (one per pooled client). A connection that cannot be
        // cloned is dropped rather than served unseverable — shutdown
        // must be able to unwedge every worker.
        let Ok(clone) = stream.try_clone() else {
            continue;
        };
        conns.lock().push(clone);
        let handler = handler.clone();
        let faults = faults.clone();
        pool.submit(move || {
            // A failed connection only loses that connection.
            let _ = serve_connection(stream, id, &*handler, faults.as_deref(), read_deadline);
        });
    }
}

fn serve_connection(
    stream: TcpStream,
    id: ServerId,
    handler: &dyn RequestHandler,
    faults: Option<&crate::fault::FaultPlan>,
    read_deadline: Option<Duration>,
) -> Result<()> {
    // Actively sever the socket on every exit path. Dropping our
    // reader/writer clones is not enough: the accept loop holds another
    // clone (for shutdown severing), so without an explicit shutdown a
    // reaped or fault-truncated peer would never see EOF.
    let sever = stream.try_clone()?;
    let result = serve_connection_inner(stream, id, handler, faults, read_deadline);
    let _ = sever.shutdown(std::net::Shutdown::Both);
    result
}

fn serve_connection_inner(
    stream: TcpStream,
    id: ServerId,
    handler: &dyn RequestHandler,
    faults: Option<&crate::fault::FaultPlan>,
    read_deadline: Option<Duration>,
) -> Result<()> {
    stream.set_nodelay(true)?;
    // The read deadline doubles as the slow-loris guard: a peer that
    // trickles bytes (or goes silent mid-frame) times the read out, and
    // the connection is reaped instead of parking this worker forever.
    stream.set_read_timeout(read_deadline)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Handshake: client id in (classic or mux hello), server id out.
    let hello = match read_frame(&mut reader) {
        Ok(f) => f,
        Err(SwarmError::Io(e)) => {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                metrics().conns_reaped.inc();
            }
            return Ok(());
        }
        Err(e) => return Err(e),
    };
    let (client, is_mux) = parse_hello(&hello)?;
    let mut w = ByteWriter::new();
    id.encode(&mut w);
    write_frame(&mut writer, w.as_slice())?;

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(SwarmError::Io(e)) => {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    // Deadline hit: no request in flight on this runtime
                    // by construction, so this is an idle or stalled peer.
                    metrics().conns_reaped.inc();
                    swarm_metrics::trace!(
                        "net.deadline",
                        "server {} reaping stalled connection (client {client})",
                        id.raw()
                    );
                }
                return Ok(()); // peer hung up or went silent
            }
            Err(e) => return Err(e),
        };
        // Shared decode: a Store's payload stays a view of this frame
        // allocation all the way into the fragment store.
        let frame = Bytes::from(frame);
        let m = metrics();
        m.server_requests.inc();
        m.server_bytes_in.add(frame.len() as u64);
        // Mux sessions prefix every frame with the request id; echo it on
        // the response so a pipelining client can match replies.
        let (mux_id, body) = if is_mux {
            if frame.len() < 8 {
                return Err(SwarmError::protocol("mux frame shorter than its id"));
            }
            let id = u64::from_le_bytes(frame[..8].try_into().unwrap());
            (Some(id), frame.slice(8..))
        } else {
            (None, frame)
        };
        let span = m.server_request_us.span("net.server.request");
        let response = match Request::decode_all_shared(&body) {
            Ok(request) => handler.handle(client, request),
            Err(e) => Response::from_error(&e),
        };
        drop(span);
        let mut header = ByteWriter::new();
        if let Some(mux_id) = mux_id {
            header.put_raw(&mux_id.to_le_bytes());
        }
        let payload = response.encode_split(&mut header).unwrap_or(&[]);
        m.server_bytes_out
            .add((header.len() + payload.len()) as u64);
        if faults.is_some_and(|p| p.take_truncate()) {
            // Injected truncation: the request was processed, but only a
            // prefix of the response frame goes out before the connection
            // closes. The client's read fails mid-frame — the ack is lost
            // and a retried store must survive the duplicate.
            let mut full = Vec::new();
            write_frame_vectored(&mut full, header.as_slice(), payload)?;
            writer.write_all(&full[..full.len() / 2])?;
            writer.flush()?;
            swarm_metrics::trace!(
                "net.fault",
                "server {} truncating response frame ({} of {} bytes)",
                id.raw(),
                full.len() / 2,
                full.len()
            );
            return Ok(());
        }
        write_frame_vectored(&mut writer, header.as_slice(), payload)?;
    }
}

// ---------------------------------------------------------------------------
// Epoll runtime: listener + per-connection readiness state machines.
// ---------------------------------------------------------------------------

struct ListenerSource {
    listener: TcpListener,
    id: ServerId,
    handler: Arc<dyn RequestHandler>,
    faults: Option<Arc<crate::fault::FaultPlan>>,
    admission: Arc<crate::admission::Admission>,
    read_deadline: Option<Duration>,
    consecutive_errors: u32,
}

impl Source for ListenerSource {
    fn fd(&self) -> epoll::RawFd {
        raw_fd(&self.listener)
    }

    fn interest(&self) -> epoll::Interest {
        epoll::Interest::READABLE
    }

    fn on_ready(&mut self, _readable: bool, _writable: bool, ctx: &mut Ctx<'_>) -> Ready {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.consecutive_errors = 0;
                    metrics().server_connections.inc();
                    if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let handle = ctx.reserve();
                    let deadline = self.read_deadline.map(|d| Instant::now() + d);
                    let conn = ConnSource::new(
                        stream,
                        self.id,
                        self.handler.clone(),
                        self.faults.clone(),
                        self.admission.clone(),
                        handle.clone(),
                        self.read_deadline,
                    );
                    ctx.attach(&handle, Box::new(conn), deadline);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ready::Continue,
                Err(e) => {
                    metrics().accept_errors.inc();
                    self.consecutive_errors += 1;
                    swarm_metrics::trace!(
                        "net.accept",
                        "server {} accept error ({} consecutive): {e}",
                        self.id.raw(),
                        self.consecutive_errors
                    );
                    if self.consecutive_errors >= ACCEPT_ERROR_LIMIT {
                        return Ready::Close;
                    }
                    // Brief blocking backoff mirrors the blocking accept
                    // loop: under fd exhaustion, level-triggered epoll
                    // would otherwise re-deliver readiness instantly.
                    std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                    return Ready::Continue;
                }
            }
        }
    }
}

enum ConnMode {
    Handshake,
    Classic(ClientId),
    Mux(ClientId),
}

/// A finished handler invocation, posted by a worker to the connection's
/// mailbox. `seq` orders classic responses; mux responses go out in
/// completion order (the id prefix lets the client match them).
struct Completion {
    seq: u64,
    segs: Vec<Seg>,
    close_after: bool,
}

struct ConnSource {
    stream: TcpStream,
    id: ServerId,
    handler: Arc<dyn RequestHandler>,
    faults: Option<Arc<crate::fault::FaultPlan>>,
    admission: Arc<crate::admission::Admission>,
    handle: Handle,
    reader: FrameReader,
    mode: ConnMode,
    outbox: VecDeque<Seg>,
    front_off: usize,
    mailbox: Arc<Mutex<Vec<Completion>>>,
    /// Sequence number assigned to the next request read off the wire.
    next_seq: u64,
    /// Next sequence allowed onto the wire (classic mode writes in
    /// arrival order; workers may finish out of order).
    next_write_seq: u64,
    parked: BTreeMap<u64, Completion>,
    inflight: usize,
    read_deadline: Option<Duration>,
    last_activity: Instant,
    /// Flush the outbox, then close; no further reads.
    closing: bool,
}

impl ConnSource {
    fn new(
        stream: TcpStream,
        id: ServerId,
        handler: Arc<dyn RequestHandler>,
        faults: Option<Arc<crate::fault::FaultPlan>>,
        admission: Arc<crate::admission::Admission>,
        handle: Handle,
        read_deadline: Option<Duration>,
    ) -> ConnSource {
        ConnSource {
            stream,
            id,
            handler,
            faults,
            admission,
            handle,
            reader: FrameReader::new(),
            mode: ConnMode::Handshake,
            outbox: VecDeque::new(),
            front_off: 0,
            mailbox: Arc::new(Mutex::new(Vec::new())),
            next_seq: 0,
            next_write_seq: 0,
            parked: BTreeMap::new(),
            inflight: 0,
            read_deadline,
            last_activity: Instant::now(),
            closing: false,
        }
    }

    /// Writes queued output until the socket would block or the queue
    /// drains. Returns false on a fatal socket error.
    fn pump_write(&mut self) -> bool {
        while let Some(front) = self.outbox.front() {
            let slice = &front.as_slice()[self.front_off..];
            match (&self.stream).write(slice) {
                Ok(0) => return false,
                Ok(n) => {
                    self.front_off += n;
                    if self.front_off == front.as_slice().len() {
                        self.outbox.pop_front();
                        self.front_off = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    /// Reads frames: completes the handshake, then dispatches request
    /// frames to the worker pool. Returns false when the connection must
    /// close (EOF, socket error, corrupt stream, protocol breach).
    fn pump_read(&mut self) -> bool {
        loop {
            if self.closing || self.inflight >= MAX_INFLIGHT_PER_CONN {
                // Backpressure: interest() drops EPOLLIN until completions
                // drain; unread requests stay in the socket buffer.
                return true;
            }
            match self.reader.read_from(&mut &self.stream) {
                Ok(FrameProgress::Frame(frame)) => {
                    self.last_activity = Instant::now();
                    if !self.on_frame(frame) {
                        return false;
                    }
                }
                Ok(FrameProgress::Blocked) => return true,
                Ok(FrameProgress::Eof) | Err(_) => return false,
            }
        }
    }

    /// Handles one inbound frame. Returns false to close the connection.
    fn on_frame(&mut self, frame: Vec<u8>) -> bool {
        let client = match self.mode {
            ConnMode::Handshake => {
                let Ok((client, is_mux)) = parse_hello(&frame) else {
                    return false;
                };
                let mut w = ByteWriter::new();
                self.id.encode(&mut w);
                let Ok(fh) = frame_header_for(&[w.as_slice()]) else {
                    return false;
                };
                let mut head = Vec::with_capacity(12 + w.len());
                head.extend_from_slice(&fh);
                head.extend_from_slice(w.as_slice());
                self.outbox.push_back(Seg::Owned(head));
                self.mode = if is_mux {
                    ConnMode::Mux(client)
                } else {
                    ConnMode::Classic(client)
                };
                return true;
            }
            ConnMode::Classic(client) | ConnMode::Mux(client) => client,
        };

        let m = metrics();
        m.server_requests.inc();
        m.server_bytes_in.add(frame.len() as u64);
        let frame = Bytes::from(frame);
        let (mux_id, body) = match self.mode {
            ConnMode::Mux(_) => {
                if frame.len() < 8 {
                    return false; // mux frame shorter than its id
                }
                let id = u64::from_le_bytes(frame[..8].try_into().unwrap());
                (Some(id), frame.slice(8..))
            }
            _ => (None, frame),
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inflight += 1;

        // Reactor fast path: offer reads to the handler before paying the
        // worker-pool round trip (two context switches — the dominant
        // cost of a memory-resident read). Only the Read tag is peeked:
        // decoding anything heavier on the reactor thread would stall
        // every other connection. Fault plans disable the shortcut so
        // injected delays/truncations still cover reads.
        if self.faults.is_none() && body.first() == Some(&crate::proto::tag::READ) {
            if let Ok(request) = Request::decode_all_shared(&body) {
                if let Some(response) = self.handler.try_handle_fast(client, &request) {
                    m.server_fast_reads.inc();
                    let completion = encode_completion(self.id, None, mux_id, seq, response);
                    self.mailbox.lock().push(completion);
                    self.drain_mailbox();
                    return true;
                }
            }
        }

        let handler = self.handler.clone();
        let faults = self.faults.clone();
        let mailbox = self.mailbox.clone();
        let handle = self.handle.clone();
        let server = self.id;
        // Only stores are rejectable under admission backpressure: the
        // writer is the one caller with retry machinery, and a bounced
        // read would surface as a data-path failure.
        let rejectable = body.first() == Some(&crate::proto::tag::STORE);
        let cost = body.len() as u64;
        let outcome = self.admission.submit(client, cost, rejectable, move || {
            let completion = run_request(
                server,
                &*handler,
                faults.as_deref(),
                client,
                mux_id,
                seq,
                &body,
            );
            mailbox.lock().push(completion);
            handle.notify();
        });
        if outcome == crate::admission::Submitted::Rejected {
            // Busy pushback: answered from the reactor thread, bypassing
            // the very queue that is full.
            let response = Response::from_error(&SwarmError::Busy(self.id));
            let completion = encode_completion(self.id, None, mux_id, seq, response);
            self.mailbox.lock().push(completion);
            self.drain_mailbox();
        }
        true
    }

    /// Drains worker completions into the outbox, preserving arrival
    /// order for classic sessions.
    fn drain_mailbox(&mut self) {
        let done: Vec<Completion> = std::mem::take(&mut *self.mailbox.lock());
        for c in done {
            self.inflight = self.inflight.saturating_sub(1);
            match self.mode {
                ConnMode::Mux(_) => self.enqueue(c),
                _ => {
                    // Classic clients expect responses in request order.
                    self.parked.insert(c.seq, c);
                    while let Some(c) = self.parked.remove(&self.next_write_seq) {
                        self.next_write_seq += 1;
                        self.enqueue(c);
                    }
                }
            }
        }
    }

    fn enqueue(&mut self, c: Completion) {
        if self.closing {
            return; // a truncation already sealed this connection
        }
        self.outbox.extend(c.segs);
        if c.close_after {
            self.closing = true;
        }
    }

    /// Post-I/O verdict shared by ready/notify callbacks.
    fn verdict(&mut self, io_ok: bool) -> Ready {
        if !io_ok || (self.closing && self.outbox.is_empty()) {
            return Ready::Close;
        }
        Ready::Continue
    }
}

/// Runs one request through the handler and encodes its response frame as
/// write-ready segments (executed on a worker thread).
fn run_request(
    server: ServerId,
    handler: &dyn RequestHandler,
    faults: Option<&crate::fault::FaultPlan>,
    client: ClientId,
    mux_id: Option<u64>,
    seq: u64,
    body: &Bytes,
) -> Completion {
    let m = metrics();
    let span = m.server_request_us.span("net.server.request");
    let response = match Request::decode_all_shared(body) {
        Ok(request) => handler.handle(client, request),
        Err(e) => Response::from_error(&e),
    };
    drop(span);
    encode_completion(server, faults, mux_id, seq, response)
}

/// Encodes a computed response as write-ready segments. Shared by the
/// worker path ([`run_request`]) and the reactor fast path, so a response
/// frame is byte-identical regardless of which thread produced it.
fn encode_completion(
    server: ServerId,
    faults: Option<&crate::fault::FaultPlan>,
    mux_id: Option<u64>,
    seq: u64,
    response: Response,
) -> Completion {
    let m = metrics();
    let mut header = ByteWriter::new();
    let id_bytes = mux_id.map(u64::to_le_bytes);
    if let Some(b) = &id_bytes {
        header.put_raw(b);
    }
    let _ = response.encode_split(&mut header);
    // Re-borrow the payload as a shared view so the (possibly large) read
    // data rides to the socket without a copy.
    let payload = match &response {
        Response::Data(b) => b.share(),
        Response::Located(Some(b)) => b.share(),
        Response::Batch(reply) => reply.data.share(),
        Response::PeerData { data: Some(b), .. } => b.share(),
        _ => Bytes::new(),
    };
    m.server_bytes_out
        .add((header.len() + payload.len()) as u64);

    let Ok(fh) = frame_header_for(&[header.as_slice(), &payload]) else {
        // Response too large to frame: close without replying (the
        // blocking runtime kills the connection the same way).
        return Completion {
            seq,
            segs: Vec::new(),
            close_after: true,
        };
    };
    let mut head = Vec::with_capacity(12 + header.len());
    head.extend_from_slice(&fh);
    head.extend_from_slice(header.as_slice());

    if faults.is_some_and(|p| p.take_truncate()) {
        // Injected truncation: ship only a prefix of the frame, then close.
        let mut full = head;
        full.extend_from_slice(&payload);
        let keep = full.len() / 2;
        full.truncate(keep);
        swarm_metrics::trace!(
            "net.fault",
            "server {} truncating response frame (kept {keep} bytes)",
            server.raw()
        );
        return Completion {
            seq,
            segs: vec![Seg::Owned(full)],
            close_after: true,
        };
    }

    let mut segs = vec![Seg::Owned(head)];
    if !payload.is_empty() {
        segs.push(Seg::Shared(payload));
    }
    Completion {
        seq,
        segs,
        close_after: false,
    }
}

impl Source for ConnSource {
    fn fd(&self) -> epoll::RawFd {
        raw_fd(&self.stream)
    }

    fn interest(&self) -> epoll::Interest {
        epoll::Interest {
            readable: !self.closing && self.inflight < MAX_INFLIGHT_PER_CONN,
            writable: !self.outbox.is_empty(),
        }
    }

    fn on_ready(&mut self, readable: bool, writable: bool, _ctx: &mut Ctx<'_>) -> Ready {
        if writable && !self.pump_write() {
            return Ready::Close;
        }
        if readable && !self.pump_read() {
            // Keep flushing completed responses if any are queued; a peer
            // that half-closed after its last request still gets replies
            // only if the write side survives — ours is gone with Close,
            // matching the blocking runtime (connection == session).
            return Ready::Close;
        }
        // Reads answered on the fast path during pump_read are sitting in
        // the outbox now; flush them in this pass rather than waiting for
        // the next writability event.
        if !self.outbox.is_empty() && !self.pump_write() {
            return Ready::Close;
        }
        self.verdict(true)
    }

    fn on_notify(&mut self, _ctx: &mut Ctx<'_>) -> Ready {
        self.drain_mailbox();
        let ok = self.pump_write();
        self.verdict(ok)
    }

    fn on_timer(&mut self, now: Instant, _ctx: &mut Ctx<'_>) -> TimerVerdict {
        let Some(deadline) = self.read_deadline else {
            return TimerVerdict::Disarm;
        };
        // Never reap a connection with work in flight or output queued —
        // the deadline guards against *silent* peers, not slow handlers.
        let busy = self.inflight > 0 || !self.outbox.is_empty();
        let due = self.last_activity + deadline;
        if busy || now < due {
            return TimerVerdict::ReArm(if busy { now + deadline } else { due });
        }
        metrics().conns_reaped.inc();
        swarm_metrics::trace!(
            "net.deadline",
            "server {} reaping stalled connection (mid-frame: {})",
            self.id.raw(),
            self.reader.in_frame()
        );
        TimerVerdict::Close
    }
}

fn raw_fd<T: std::os::fd::AsRawFd>(t: &T) -> epoll::RawFd {
    t.as_raw_fd()
}

// ---------------------------------------------------------------------------
// Client transport.
// ---------------------------------------------------------------------------

/// Client-side transport over TCP.
///
/// Maps [`ServerId`]s to socket addresses; `connect` dials and performs
/// the handshake. The server set is fixed at construction (plus
/// [`TcpTransport::add_server`]), mirroring the prototype where clients
/// know the cluster membership.
///
/// With the epoll runtime (the platform default, see
/// [`TcpTransport::set_runtime`]), all connections between one
/// `(server, client)` pair share a single multiplexed socket: every
/// [`Connection`] handed out is a lightweight handle onto that channel,
/// and any number of calls proceed concurrently, matched by request id.
/// With the blocking runtime each connection owns its socket and carries
/// one call at a time.
///
/// Calls time out after [`DEFAULT_CALL_TIMEOUT`] unless overridden with
/// [`TcpTransport::set_call_timeout`], so a hung server surfaces as
/// [`SwarmError::ServerUnavailable`] instead of wedging the caller.
pub struct TcpTransport {
    servers: Mutex<BTreeMap<ServerId, SocketAddr>>,
    /// Client-embedded peer responders (cooperative cache), each backed by
    /// its own tiny listener. Kept apart from `servers` so they never
    /// appear in [`Transport::servers`] — locate broadcasts and
    /// reconstruction fan-out must not dial peers.
    peers: Mutex<HashMap<ServerId, PeerEntry>>,
    call_timeout: Mutex<Option<Duration>>,
    runtime: Mutex<Runtime>,
    channels: Mutex<HashMap<(ServerId, ClientId), Arc<MuxChannel>>>,
    /// Per-pair dial locks: concurrent `connect_mux` calls for the same
    /// `(server, client)` collapse to one socket without holding the
    /// `channels` map lock across the dial (one unreachable server must
    /// not stall connects to every other server).
    dialing: Mutex<HashMap<(ServerId, ClientId), DialLock>>,
}

/// Lock serializing dials for one `(server, client)` pair.
type DialLock = Arc<Mutex<()>>;

/// A published peer responder: the listener serving it plus its address.
/// Dropping the entry shuts the listener down and joins its threads.
struct PeerEntry {
    addr: SocketAddr,
    _server: TcpServer,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("servers", &*self.servers.lock())
            .field("runtime", &self.runtime())
            .finish()
    }
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpTransport {
    /// Creates a transport with no servers.
    pub fn new() -> Self {
        TcpTransport {
            servers: Mutex::new(BTreeMap::new()),
            peers: Mutex::new(HashMap::new()),
            call_timeout: Mutex::new(Some(DEFAULT_CALL_TIMEOUT)),
            runtime: Mutex::new(Runtime::default_for_platform()),
            channels: Mutex::new(HashMap::new()),
            dialing: Mutex::new(HashMap::new()),
        }
    }

    /// Creates a transport pointing at the given running servers.
    pub fn with_servers(servers: impl IntoIterator<Item = (ServerId, SocketAddr)>) -> Self {
        let t = Self::new();
        t.servers.lock().extend(servers);
        t
    }

    /// Sets the per-call timeout for connections opened after this call
    /// (`None` = block forever, the pre-timeout behaviour).
    pub fn set_call_timeout(&self, timeout: Option<Duration>) {
        *self.call_timeout.lock() = timeout;
    }

    /// The currently configured per-call timeout.
    pub fn call_timeout(&self) -> Option<Duration> {
        *self.call_timeout.lock()
    }

    /// Selects the client runtime for subsequently opened connections:
    /// `Epoll` multiplexes calls on one socket per `(server, client)`
    /// pair; `Blocking` opens a socket per connection.
    pub fn set_runtime(&self, runtime: Runtime) {
        *self.runtime.lock() = runtime;
    }

    /// The currently configured client runtime.
    pub fn runtime(&self) -> Runtime {
        *self.runtime.lock()
    }

    /// Adds (or re-addresses) a server. Re-addressing closes any
    /// multiplexed channel to the old address (the server it pointed at
    /// is gone; pending calls fail over to the retry path).
    pub fn add_server(&self, id: ServerId, addr: SocketAddr) {
        let prev = self.servers.lock().insert(id, addr);
        if prev.is_some() && prev != Some(addr) {
            self.close_channels_for(id);
        }
    }

    /// Removes a server from the membership, closing its channels.
    pub fn remove_server(&self, id: ServerId) {
        self.servers.lock().remove(&id);
        self.close_channels_for(id);
    }

    /// Number of live multiplexed channels (diagnostic: each is one
    /// socket shared by every connection to its `(server, client)` pair).
    pub fn mux_channels(&self) -> usize {
        self.channels
            .lock()
            .values()
            .filter(|c| c.is_alive())
            .count()
    }

    /// High-water mark of concurrently in-flight calls across multiplexed
    /// channels (diagnostic for pipelining tests).
    pub fn mux_inflight_peak(&self) -> usize {
        self.channels
            .lock()
            .values()
            .map(|c| c.inflight_peak())
            .max()
            .unwrap_or(0)
    }

    fn close_channels_for(&self, id: ServerId) {
        let mut channels = self.channels.lock();
        channels.retain(|(server, _), ch| {
            if *server == id {
                ch.shutdown();
                false
            } else {
                true
            }
        });
        drop(channels);
        self.dialing.lock().retain(|(server, _), _| *server != id);
    }

    /// Returns the live channel for the pair, pruning a dead one.
    fn live_channel(&self, server: ServerId, client: ClientId) -> Option<Arc<MuxChannel>> {
        let mut channels = self.channels.lock();
        if let Some(ch) = channels.get(&(server, client)) {
            if ch.is_alive() {
                return Some(ch.clone());
            }
            channels.remove(&(server, client));
        }
        None
    }

    fn connect_mux(
        &self,
        reactor: &'static Reactor,
        addr: SocketAddr,
        server: ServerId,
        client: ClientId,
    ) -> Result<Box<dyn Connection>> {
        let timeout = self.call_timeout();
        if let Some(channel) = self.live_channel(server, client) {
            return Ok(Box::new(MuxConnection {
                server,
                channel,
                timeout,
            }));
        }
        // Serialize dials per pair, never transport-wide: concurrent
        // connects to the same pair collapse onto one socket, while a dial
        // to an unreachable server (bounded by the call timeout inside
        // `mux_dial`, but still seconds) cannot block connects to healthy
        // servers — parallel `broadcast_first` legs dial independently.
        let pair_lock = self
            .dialing
            .lock()
            .entry((server, client))
            .or_default()
            .clone();
        let _dial_guard = pair_lock.lock();
        if let Some(channel) = self.live_channel(server, client) {
            // Lost the race; the winner's channel serves this pair.
            return Ok(Box::new(MuxConnection {
                server,
                channel,
                timeout,
            }));
        }
        metrics().client_connects.inc();
        swarm_metrics::trace!("net.connect", "client {client} -> server {server} (mux)");
        let stream = mux_dial(addr, server, client, timeout)?;
        let channel = MuxChannel::new(server);
        let ch2 = channel.clone();
        reactor.register(None, move |h| {
            ch2.set_handle(h.clone());
            Box::new(MuxSource::new(stream, ch2.clone()))
        });
        self.channels
            .lock()
            .insert((server, client), channel.clone());
        Ok(Box::new(MuxConnection {
            server,
            channel,
            timeout,
        }))
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // The global client reactor outlives any transport; without this,
        // its sources would hold the transport's sockets open forever.
        for ch in self.channels.lock().values() {
            ch.shutdown();
        }
    }
}

impl Transport for TcpTransport {
    fn connect(&self, server: ServerId, client: ClientId) -> Result<Box<dyn Connection>> {
        let addr = match self.servers.lock().get(&server) {
            Some(addr) => *addr,
            // Not a cluster member — maybe a published peer responder.
            None => self
                .peers
                .lock()
                .get(&server)
                .map(|p| p.addr)
                .ok_or(SwarmError::ServerUnavailable(server))?,
        };
        if self.runtime() == Runtime::Epoll {
            // Fall back to the blocking stack only when the platform has
            // no reactor at all; dial failures propagate (the server is
            // genuinely unreachable either way).
            if let Ok(reactor) = crate::reactor::client_reactor() {
                return self.connect_mux(reactor, addr, server, client);
            }
        }
        // Every connection-setup failure — dial, socket options, stream
        // clone, or a garbled handshake reply — maps to ServerUnavailable
        // so the writer's retry path always engages; only a *successful*
        // handshake with the wrong identity is a protocol error.
        let unavailable = |_| SwarmError::ServerUnavailable(server);
        let stream = TcpStream::connect(addr).map_err(unavailable)?;
        stream.set_nodelay(true).map_err(unavailable)?;
        let timeout = self.call_timeout();
        stream.set_read_timeout(timeout).map_err(unavailable)?;
        stream.set_write_timeout(timeout).map_err(unavailable)?;
        metrics().client_connects.inc();
        swarm_metrics::trace!("net.connect", "client {client} -> server {server}");
        let mut reader = BufReader::new(stream.try_clone().map_err(unavailable)?);
        let mut writer = BufWriter::new(stream);

        // A server that stalls mid-handshake is indistinguishable from a
        // down one: surface frame I/O failures (including the socket
        // timeouts set above) as ServerUnavailable so retry engages.
        let mut w = ByteWriter::new();
        client.encode(&mut w);
        write_frame(&mut writer, w.as_slice())
            .map_err(|_| SwarmError::ServerUnavailable(server))?;
        let ack = read_frame(&mut reader).map_err(|_| SwarmError::ServerUnavailable(server))?;
        let got = ServerId::decode_all(&ack).map_err(|_| SwarmError::ServerUnavailable(server))?;
        if got != server {
            return Err(SwarmError::protocol(format!(
                "handshake: expected server {server}, got {got}"
            )));
        }

        Ok(Box::new(TcpConnection {
            server,
            reader,
            writer,
        }))
    }

    fn servers(&self) -> Vec<ServerId> {
        self.servers.lock().keys().copied().collect()
    }
}

impl crate::transport::PeerHost for TcpTransport {
    fn publish(&self, peer: ServerId, handler: Arc<dyn RequestHandler>) -> Result<()> {
        // A peer responder serves cache-resident blocks only, so a narrow
        // worker pool is plenty; the listener dies with the entry.
        let server = TcpServer::spawn_with_config(
            peer,
            "127.0.0.1:0",
            handler,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )?;
        let addr = server.addr();
        self.peers.lock().insert(
            peer,
            PeerEntry {
                addr,
                _server: server,
            },
        );
        Ok(())
    }

    fn withdraw(&self, peer: ServerId) {
        self.close_channels_for(peer);
        // Dropping the entry shuts the responder down and joins it.
        self.peers.lock().remove(&peer);
    }
}

struct TcpConnection {
    server: ServerId,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpConnection {
    /// Ships one `header ++ payload` request frame and reads the reply.
    /// The payload is borrowed all the way to the socket — this function
    /// never copies it.
    fn exchange(&mut self, header: &[u8], payload: &[u8]) -> Result<Response> {
        let m = metrics();
        let span = m.client_call_us.span("net.client.call");
        // Any socket-level failure — including a read/write timeout on a
        // hung server — becomes ServerUnavailable so the log layer's retry
        // and reconnect machinery engages.
        let unavailable = |server| {
            metrics().client_call_errors.inc();
            SwarmError::ServerUnavailable(server)
        };
        write_frame_vectored(&mut self.writer, header, payload)
            .map_err(|_| unavailable(self.server))?;
        m.client_bytes_out
            .add((header.len() + payload.len()) as u64);
        let frame = read_frame(&mut self.reader).map_err(|_| unavailable(self.server))?;
        m.client_bytes_in.add(frame.len() as u64);
        drop(span);
        // Shared decode: Data/Located payloads alias the reply frame.
        Response::decode_all_shared(&Bytes::from(frame))
    }
}

impl Connection for TcpConnection {
    fn call(&mut self, request: &Request) -> Result<Response> {
        let mut header = ByteWriter::new();
        let payload = request.encode_split(&mut header);
        self.exchange(header.as_slice(), payload.unwrap_or(&[]))
    }

    fn call_prepared(&mut self, prepared: &PreparedRequest) -> Result<Response> {
        // The header was encoded when the request was prepared; retries
        // reuse it and the shared payload byte-for-byte.
        self.exchange(prepared.header(), prepared.payload())
    }

    fn server(&self) -> ServerId {
        self.server
    }
}

/// A lightweight handle onto a shared [`MuxChannel`]: every call is
/// tagged with a fresh request id and may overlap with calls from any
/// number of sibling connections on the same socket.
struct MuxConnection {
    server: ServerId,
    channel: Arc<MuxChannel>,
    timeout: Option<Duration>,
}

impl MuxConnection {
    fn exchange(&mut self, header: &[u8], payload: &Bytes) -> Result<Response> {
        let m = metrics();
        let span = m.client_call_us.span("net.client.call");
        let reply = self
            .channel
            .call(header, payload, self.timeout)
            .inspect_err(|_| m.client_call_errors.inc())?;
        drop(span);
        Response::decode_all_shared(&reply)
    }
}

impl Connection for MuxConnection {
    fn call(&mut self, request: &Request) -> Result<Response> {
        let mut header = ByteWriter::new();
        let _ = request.encode_split(&mut header);
        // Re-borrow the Store payload as a shared view (no copy); other
        // requests have no payload.
        let payload = match request {
            Request::Store { data, .. } => data.share(),
            _ => Bytes::new(),
        };
        self.exchange(header.as_slice(), &payload)
    }

    fn call_prepared(&mut self, prepared: &PreparedRequest) -> Result<Response> {
        self.exchange(prepared.header(), prepared.payload())
    }

    fn start_prepared(&mut self, prepared: &PreparedRequest) -> PendingCall {
        // Put the frame on the wire now; hand the caller a completion that
        // blocks on this request id only. The deadline is fixed at start
        // time so a windowed caller can't stretch it by harvesting late.
        let started = Instant::now();
        let id = match self.channel.begin(prepared.header(), prepared.payload()) {
            Ok(id) => id,
            Err(e) => {
                metrics().client_call_errors.inc();
                return PendingCall::ready(Err(e));
            }
        };
        let channel = self.channel.clone();
        let deadline = self.timeout.map(|t| started + t);
        PendingCall::deferred(move || {
            let m = metrics();
            let reply = channel
                .finish(id, deadline)
                .inspect_err(|_| m.client_call_errors.inc())?;
            m.client_call_us.record(started.elapsed());
            Response::decode_all_shared(&reply)
        })
    }

    fn pipeline_width(&self) -> usize {
        // Matches the server's per-connection inflight cap; going wider
        // would only park frames in the server's backpressure window.
        MAX_INFLIGHT_PER_CONN
    }

    fn server(&self) -> ServerId {
        self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::testing::EchoStore;
    use swarm_types::FragmentId;

    fn spawn_echo(id: u32, runtime: Runtime) -> TcpServer {
        TcpServer::spawn_with_config(
            ServerId::new(id),
            "127.0.0.1:0",
            Arc::new(EchoStore::default()),
            ServerConfig {
                runtime,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    fn roundtrip_against(server: &TcpServer, client_runtime: Runtime) {
        let transport = TcpTransport::with_servers([(server.id(), server.addr())]);
        transport.set_runtime(client_runtime);
        let mut conn = transport.connect(server.id(), ClientId::new(5)).unwrap();
        assert_eq!(conn.call(&Request::Ping).unwrap(), Response::Ok);

        let fid = FragmentId::new(ClientId::new(5), 1);
        let data = (0..255u8).collect::<Vec<_>>();
        conn.call(&Request::Store {
            fid,
            marked: true,
            ranges: vec![],
            data: data.clone().into(),
        })
        .unwrap();
        let resp = conn
            .call(&Request::Read {
                fid,
                offset: 10,
                len: 5,
            })
            .unwrap();
        assert_eq!(resp, Response::Data(data[10..15].to_vec().into()));
    }

    #[test]
    fn tcp_roundtrip() {
        let server = TcpServer::spawn(
            ServerId::new(0),
            "127.0.0.1:0",
            Arc::new(EchoStore::default()),
        )
        .unwrap();
        roundtrip_against(&server, Runtime::default_for_platform());
    }

    /// Every client/server runtime combination speaks the same protocol:
    /// the hello negotiation makes the pairs interoperable.
    #[test]
    fn runtime_matrix_interoperates() {
        for server_rt in [Runtime::Blocking, Runtime::Epoll] {
            if server_rt == Runtime::Epoll && !cfg!(target_os = "linux") {
                continue;
            }
            let server = spawn_echo(1, server_rt);
            for client_rt in [Runtime::Blocking, Runtime::Epoll] {
                roundtrip_against(&server, client_rt);
            }
        }
    }

    /// Peer responders published through [`PeerHost`] are dialable like
    /// servers — over a real socket, speaking the PeerRead protocol —
    /// but stay out of the member list, and withdrawing one makes later
    /// dials fail.
    #[test]
    fn published_peer_responders_serve_peer_reads_over_tcp() {
        use crate::transport::{peer_server_id, PeerHost};
        use swarm_types::{BlockAddr, SwarmError};

        struct OneBlock {
            addr: BlockAddr,
            data: Vec<u8>,
        }
        impl crate::handler::RequestHandler for OneBlock {
            fn handle(&self, _client: ClientId, request: Request) -> Response {
                match request {
                    Request::PeerRead { addr, .. } => Response::PeerData {
                        data: (addr == self.addr).then(|| self.data.clone().into()),
                        hints: vec![crate::proto::HintSpec {
                            addr: self.addr,
                            holder: ClientId::new(7),
                        }],
                    },
                    _ => Response::from_error(&SwarmError::invalid("peer only")),
                }
            }
        }

        let server = spawn_echo(1, Runtime::default_for_platform());
        let transport = Arc::new(TcpTransport::with_servers([(server.id(), server.addr())]));
        let addr = BlockAddr::new(FragmentId::new(ClientId::new(7), 3), 128, 11);
        let peer = peer_server_id(ClientId::new(7));
        transport
            .publish(
                peer,
                Arc::new(OneBlock {
                    addr,
                    data: b"peer bytes!".to_vec(),
                }),
            )
            .unwrap();

        assert_eq!(
            transport.servers(),
            vec![server.id()],
            "peers must not join the member list"
        );

        let mut conn = transport.connect(peer, ClientId::new(8)).unwrap();
        match conn
            .call(&Request::PeerRead {
                addr,
                hints: vec![],
            })
            .unwrap()
        {
            Response::PeerData { data, hints } => {
                assert_eq!(data.as_deref(), Some(&b"peer bytes!"[..]));
                assert_eq!(hints.len(), 1);
                assert_eq!(hints[0].holder, ClientId::new(7));
            }
            other => panic!("unexpected response: {other:?}"),
        }
        drop(conn);

        transport.withdraw(peer);
        assert!(
            transport.connect(peer, ClientId::new(8)).is_err(),
            "withdrawn peers must not be dialable"
        );
    }

    #[test]
    fn multiple_clients_share_a_server() {
        let server = TcpServer::spawn(
            ServerId::new(3),
            "127.0.0.1:0",
            Arc::new(EchoStore::default()),
        )
        .unwrap();
        let transport = TcpTransport::with_servers([(ServerId::new(3), server.addr())]);
        let mut handles = Vec::new();
        let transport = Arc::new(transport);
        for c in 0..4u32 {
            let t = transport.clone();
            handles.push(std::thread::spawn(move || {
                let mut conn = t.connect(ServerId::new(3), ClientId::new(c)).unwrap();
                for i in 0..20u64 {
                    let fid = FragmentId::new(ClientId::new(c), i);
                    conn.call(&Request::Store {
                        fid,
                        marked: false,
                        ranges: vec![],
                        data: vec![c as u8; 64].into(),
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn connect_to_stopped_server_is_unavailable() {
        let mut server = TcpServer::spawn(
            ServerId::new(0),
            "127.0.0.1:0",
            Arc::new(EchoStore::default()),
        )
        .unwrap();
        let addr = server.addr();
        server.shutdown();
        drop(server);
        let transport = TcpTransport::with_servers([(ServerId::new(0), addr)]);
        // Either connect fails or the first call does; both surface as
        // ServerUnavailable.
        match transport.connect(ServerId::new(0), ClientId::new(0)) {
            Err(e) => assert!(matches!(e, SwarmError::ServerUnavailable(_)), "{e}"),
            Ok(mut conn) => {
                let err = conn.call(&Request::Ping).unwrap_err();
                assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
            }
        }
    }

    #[test]
    fn unknown_server_id_fails_fast() {
        let transport = TcpTransport::new();
        assert!(transport
            .connect(ServerId::new(1), ClientId::new(0))
            .is_err());
    }

    /// Regression test: a server that accepts the handshake but never
    /// answers a request used to wedge the client forever; with call
    /// timeouts the call fails as ServerUnavailable within the timeout.
    #[test]
    fn call_times_out_on_hung_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stall = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let _hello = read_frame(&mut reader).unwrap();
            let mut w = ByteWriter::new();
            ServerId::new(9).encode(&mut w);
            write_frame(&mut writer, w.as_slice()).unwrap();
            // Swallow the request and never reply; exit when the client
            // hangs up (the read fails once the connection is dropped).
            let _req = read_frame(&mut reader);
            let _ = read_frame(&mut reader);
        });

        let transport = TcpTransport::with_servers([(ServerId::new(9), addr)]);
        transport.set_call_timeout(Some(Duration::from_millis(200)));
        let mut conn = transport
            .connect(ServerId::new(9), ClientId::new(1))
            .unwrap();
        let start = std::time::Instant::now();
        let err = conn.call(&Request::Ping).unwrap_err();
        assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "hung for {:?} instead of timing out",
            start.elapsed()
        );
        drop(conn);
        // Dropping the transport closes the mux socket (the stall thread
        // is blocked reading from it).
        drop(transport);
        stall.join().unwrap();
    }

    /// A peer that completes the dial but sends a garbled handshake ack
    /// must surface as ServerUnavailable (so retry engages), not as a raw
    /// decode error.
    #[test]
    fn garbled_handshake_is_unavailable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let imposter = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let _hello = read_frame(&mut reader).unwrap();
            // Reply with a frame that is not a ServerId encoding.
            write_frame(&mut writer, b"not a server id").unwrap();
        });
        let transport = TcpTransport::with_servers([(ServerId::new(2), addr)]);
        let err = match transport.connect(ServerId::new(2), ClientId::new(1)) {
            Ok(_) => panic!("garbled handshake should fail to connect"),
            Err(err) => err,
        };
        assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
        imposter.join().unwrap();
    }

    /// Large stores arrive intact through the vectored write path and a
    /// prepared request can be replayed on a fresh connection without
    /// re-encoding.
    #[test]
    fn vectored_store_and_prepared_call_roundtrip() {
        let server = TcpServer::spawn(
            ServerId::new(0),
            "127.0.0.1:0",
            Arc::new(EchoStore::default()),
        )
        .unwrap();
        let transport = TcpTransport::with_servers([(ServerId::new(0), server.addr())]);
        let mut conn = transport
            .connect(ServerId::new(0), ClientId::new(5))
            .unwrap();
        let data: Vec<u8> = (0..(256 * 1024u32)).map(|i| (i % 251) as u8).collect();
        let fid = FragmentId::new(ClientId::new(5), 7);
        let prepared = PreparedRequest::new(Request::Store {
            fid,
            marked: false,
            ranges: vec![],
            data: data.clone().into(),
        });
        assert_eq!(conn.call_prepared(&prepared).unwrap(), Response::Ok);
        let resp = conn
            .call(&Request::Read {
                fid,
                offset: 0,
                len: data.len() as u32,
            })
            .unwrap();
        assert_eq!(resp, Response::Data(data.into()));
    }

    /// The configured timeout is observable and `None` restores blocking
    /// semantics for newly opened connections.
    #[test]
    fn call_timeout_is_configurable() {
        let transport = TcpTransport::new();
        assert_eq!(transport.call_timeout(), Some(DEFAULT_CALL_TIMEOUT));
        transport.set_call_timeout(Some(Duration::from_secs(1)));
        assert_eq!(transport.call_timeout(), Some(Duration::from_secs(1)));
        transport.set_call_timeout(None);
        assert_eq!(transport.call_timeout(), None);
    }

    /// One multiplexed connection sustains at least 8 concurrently
    /// in-flight calls: a barrier handler refuses to answer any of the 8
    /// until all 8 have *arrived*, which is only possible if they share
    /// the socket and pipeline.
    #[cfg(target_os = "linux")]
    #[test]
    fn pipelined_calls_share_one_connection() {
        struct BarrierHandler(std::sync::Barrier);
        impl RequestHandler for BarrierHandler {
            fn handle(&self, _client: ClientId, _request: Request) -> Response {
                self.0.wait();
                Response::Ok
            }
        }
        const CALLS: usize = 8;
        let server = TcpServer::spawn_with_config(
            ServerId::new(7),
            "127.0.0.1:0",
            Arc::new(BarrierHandler(std::sync::Barrier::new(CALLS))),
            ServerConfig {
                runtime: Runtime::Epoll,
                workers: CALLS,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let transport = Arc::new(TcpTransport::with_servers([(
            ServerId::new(7),
            server.addr(),
        )]));
        let handles: Vec<_> = (0..CALLS)
            .map(|_| {
                let t = transport.clone();
                std::thread::spawn(move || {
                    let mut conn = t.connect(ServerId::new(7), ClientId::new(1)).unwrap();
                    conn.call(&Request::Ping).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), Response::Ok);
        }
        assert_eq!(
            transport.mux_channels(),
            1,
            "all 8 calls must share one socket"
        );
        assert!(
            transport.mux_inflight_peak() >= CALLS,
            "peak in-flight {} < {CALLS}",
            transport.mux_inflight_peak()
        );
    }

    /// Satellite regression: a connection that goes silent mid-frame is
    /// reaped by the read deadline while a healthy connection on the same
    /// server keeps serving. Covers both runtimes.
    #[test]
    fn stalled_connection_is_reaped_while_healthy_conn_serves() {
        for runtime in [Runtime::Blocking, Runtime::Epoll] {
            if runtime == Runtime::Epoll && !cfg!(target_os = "linux") {
                continue;
            }
            let server = TcpServer::spawn_with_config(
                ServerId::new(4),
                "127.0.0.1:0",
                Arc::new(EchoStore::default()),
                ServerConfig {
                    runtime,
                    read_deadline: Some(Duration::from_millis(150)),
                    ..ServerConfig::default()
                },
            )
            .unwrap();

            // Slow loris: real handshake, then 4 bytes of a frame header,
            // then silence.
            let mut loris = TcpStream::connect(server.addr()).unwrap();
            write_frame(&mut loris, &{
                let mut w = ByteWriter::new();
                ClientId::new(99).encode(&mut w);
                w.as_slice().to_vec()
            })
            .unwrap();
            let ack = read_frame(&mut loris).unwrap();
            assert_eq!(ServerId::decode_all(&ack).unwrap(), ServerId::new(4));
            loris
                .write_all(&swarm_types::constants::FRAME_MAGIC.to_le_bytes())
                .unwrap();
            loris.flush().unwrap();

            let reaped_before = swarm_metrics::snapshot().counter("net.server.conns_reaped");

            // Healthy client keeps getting served across the loris's
            // reaping. Tests share one core, so this client may itself go
            // quiet past the (short) deadline and be reaped — that is the
            // deadline working as designed, and a real client redials; the
            // assertion is that the *server* keeps answering throughout.
            let transport = TcpTransport::with_servers([(ServerId::new(4), server.addr())]);
            let mut conn = transport
                .connect(ServerId::new(4), ClientId::new(1))
                .unwrap();
            let mut ping = move || {
                let resp = match conn.call(&Request::Ping) {
                    Ok(resp) => resp,
                    Err(_) => {
                        conn = transport
                            .connect(ServerId::new(4), ClientId::new(1))
                            .unwrap();
                        conn.call(&Request::Ping).unwrap()
                    }
                };
                assert_eq!(resp, Response::Ok);
            };

            // The loris is severed when its socket reads EOF/reset (a
            // read *timeout* is not severance — keep waiting).
            loris
                .set_read_timeout(Some(Duration::from_millis(50)))
                .unwrap();
            let deadline = Instant::now() + Duration::from_secs(30);
            let mut buf = [0u8; 16];
            use std::io::Read;
            loop {
                ping();
                match loris.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => panic!("{runtime}: reaped conn sent {n} bytes"),
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        assert!(
                            Instant::now() < deadline,
                            "{runtime}: stalled connection was never reaped"
                        );
                    }
                    Err(_) => break, // reset is also a severed connection
                }
            }
            let reaped_after = swarm_metrics::snapshot().counter("net.server.conns_reaped");
            assert!(reaped_after > reaped_before, "{runtime}: reap not counted");
            // And the server still answers after the reap.
            ping();
        }
    }

    /// A healthy-but-idle pooled connection is also reaped (freeing
    /// server state); the client transparently redials on next use.
    #[cfg(target_os = "linux")]
    #[test]
    fn idle_connection_reap_is_transparent_to_pool() {
        let server = TcpServer::spawn_with_config(
            ServerId::new(6),
            "127.0.0.1:0",
            Arc::new(EchoStore::default()),
            ServerConfig {
                runtime: Runtime::Epoll,
                read_deadline: Some(Duration::from_millis(100)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let transport = Arc::new(TcpTransport::with_servers([(
            ServerId::new(6),
            server.addr(),
        )]));
        let pool = crate::pool::ConnectionPool::new(transport.clone(), ClientId::new(1));
        assert_eq!(
            pool.call(ServerId::new(6), &Request::Ping).unwrap(),
            Response::Ok
        );
        // Idle well past the server deadline; the channel dies server-side.
        std::thread::sleep(Duration::from_millis(400));
        // The pool's transparent redial absorbs the reaped connection.
        assert_eq!(
            pool.call(ServerId::new(6), &Request::Ping).unwrap(),
            Response::Ok
        );
    }

    /// A saturated epoll server with a bounded per-client backlog answers
    /// excess stores with `Busy` pushback instead of queueing unboundedly;
    /// reads are never bounced.
    #[cfg(target_os = "linux")]
    #[test]
    fn saturated_epoll_server_bounces_stores_with_busy() {
        struct SlowStore;
        impl RequestHandler for SlowStore {
            fn handle(&self, _client: ClientId, _request: Request) -> Response {
                std::thread::sleep(Duration::from_millis(5));
                Response::Ok
            }
        }
        let server = TcpServer::spawn_with_config(
            ServerId::new(9),
            "127.0.0.1:0",
            Arc::new(SlowStore),
            ServerConfig {
                runtime: Runtime::Epoll,
                workers: 1,
                admission: crate::admission::AdmissionConfig {
                    quantum: 4096,
                    max_client_backlog: 1,
                },
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let throttled_before = swarm_metrics::snapshot().counter("server.client_throttled");
        let transport = TcpTransport::with_servers([(server.id(), server.addr())]);
        transport.set_runtime(Runtime::Epoll);
        let mut conn = transport.connect(server.id(), ClientId::new(1)).unwrap();
        // Pipeline a burst of stores: with one worker, a 5 ms handler, and
        // a backlog of one, most of the burst must bounce.
        let mut pending = Vec::new();
        for i in 0..48 {
            let prepared = PreparedRequest::new(Request::Store {
                fid: FragmentId::new(ClientId::new(1), i),
                marked: false,
                ranges: vec![],
                data: vec![0u8; 512].into(),
            });
            pending.push(conn.start_prepared(&prepared));
        }
        let mut busy = 0;
        for p in pending {
            match p.wait().unwrap().into_result() {
                Ok(_) => {}
                Err(SwarmError::Busy(s)) => {
                    assert_eq!(s, server.id(), "Busy names the throttling server");
                    busy += 1;
                }
                Err(e) => panic!("unexpected store outcome: {e}"),
            }
        }
        assert!(busy > 0, "no store was throttled");
        let throttled_after = swarm_metrics::snapshot().counter("server.client_throttled");
        assert!(
            throttled_after - throttled_before >= busy,
            "throttle counter moved by {} for {busy} bounces",
            throttled_after - throttled_before
        );
        // A read on the same saturated connection queues rather than
        // bouncing (only stores are rejectable).
        let resp = conn
            .call(&Request::Read {
                fid: FragmentId::new(ClientId::new(1), 0),
                offset: 0,
                len: 1,
            })
            .unwrap();
        assert!(
            !matches!(resp.into_result(), Err(SwarmError::Busy(_))),
            "a read must never bounce with Busy"
        );
    }
}
