//! TCP transport: the real-sockets equivalent of the paper's prototype,
//! where storage servers are user-level processes reached over switched
//! Ethernet (§3).
//!
//! Connection establishment performs a small handshake so the server knows
//! which client it is talking to (the prototype relied on the transport
//! for identity as well): the client sends a frame containing its
//! [`ClientId`], the server replies with its [`ServerId`]. After that,
//! each request frame is answered by exactly one response frame.

use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use swarm_metrics::{Counter, Histogram};
use swarm_types::{ByteWriter, Bytes, ClientId, Decode, Encode, Result, ServerId, SwarmError};

use crate::frame::{read_frame, write_frame, write_frame_vectored};
use crate::handler::RequestHandler;
use crate::proto::{PreparedRequest, Request, Response};
use crate::transport::{Connection, Transport};
use crate::workpool::{WorkerPool, DEFAULT_WORKERS};

/// How long the accept loop sleeps after a failed `accept()` before trying
/// again, so a persistent error (fd exhaustion, dead listener) cannot spin
/// a core at 100%.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(10);

/// Consecutive `accept()` failures after which the accept loop concludes
/// the listener is dead and exits. A successful accept resets the count.
const ACCEPT_ERROR_LIMIT: u32 = 100;

/// Default read/write timeout for client connections; long enough for a
/// slow disk on the far side, short enough that a hung server surfaces as
/// [`SwarmError::ServerUnavailable`] and the writer's retry path engages.
pub const DEFAULT_CALL_TIMEOUT: Duration = Duration::from_secs(30);

struct NetMetrics {
    accept_errors: Counter,
    server_connections: Counter,
    server_requests: Counter,
    server_bytes_in: Counter,
    server_bytes_out: Counter,
    server_request_us: Histogram,
    client_connects: Counter,
    client_call_errors: Counter,
    client_bytes_out: Counter,
    client_bytes_in: Counter,
    client_call_us: Histogram,
}

fn metrics() -> &'static NetMetrics {
    static M: OnceLock<NetMetrics> = OnceLock::new();
    M.get_or_init(|| NetMetrics {
        accept_errors: swarm_metrics::counter("net.server.accept_errors"),
        server_connections: swarm_metrics::counter("net.server.connections"),
        server_requests: swarm_metrics::counter("net.server.requests"),
        server_bytes_in: swarm_metrics::counter("net.server.bytes_in"),
        server_bytes_out: swarm_metrics::counter("net.server.bytes_out"),
        server_request_us: swarm_metrics::histogram("net.server.request_us"),
        client_connects: swarm_metrics::counter("net.client.connects"),
        client_call_errors: swarm_metrics::counter("net.client.call_errors"),
        client_bytes_out: swarm_metrics::counter("net.client.bytes_out"),
        client_bytes_in: swarm_metrics::counter("net.client.bytes_in"),
        client_call_us: swarm_metrics::histogram("net.client.call_us"),
    })
}

/// A running TCP storage-server endpoint.
///
/// Wraps a [`RequestHandler`] and serves it on a listening socket through
/// a bounded [`WorkerPool`] ([`DEFAULT_WORKERS`] wide unless overridden
/// via [`TcpServer::spawn_with_opts`]): accepted connections queue for a
/// free worker instead of each spawning an unbounded thread, so a
/// connection flood degrades to queueing, not resource exhaustion.
/// Dropping the server (or calling [`TcpServer::shutdown`]) stops the
/// accept loop, severs established connections (unblocking their
/// workers), and joins the pool.
pub struct TcpServer {
    id: ServerId,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    pool: Option<Arc<WorkerPool>>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .finish()
    }
}

impl TcpServer {
    /// Binds `bind_addr` (use port 0 for an ephemeral port) and starts
    /// serving `handler` as server `id`.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Io`] if the address cannot be bound.
    pub fn spawn(
        id: ServerId,
        bind_addr: &str,
        handler: Arc<dyn RequestHandler>,
    ) -> Result<TcpServer> {
        Self::spawn_with_faults(id, bind_addr, handler, None)
    }

    /// Like [`TcpServer::spawn`], but with a server-side [`FaultPlan`]
    /// hook: when the plan has a pending truncation
    /// ([`FaultPlan::inject_truncate`]), the server processes the request,
    /// writes only a *prefix* of the response frame, and severs the
    /// connection — a genuinely torn frame on a real socket. The client
    /// observes [`SwarmError::ServerUnavailable`] with the ack lost, so a
    /// retried store hits the duplicate-store path.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Io`] if the address cannot be bound.
    pub fn spawn_with_faults(
        id: ServerId,
        bind_addr: &str,
        handler: Arc<dyn RequestHandler>,
        faults: Option<Arc<crate::fault::FaultPlan>>,
    ) -> Result<TcpServer> {
        Self::spawn_with_opts(id, bind_addr, handler, faults, DEFAULT_WORKERS)
    }

    /// Like [`TcpServer::spawn_with_faults`], but with an explicit worker
    /// pool width — the maximum number of connections served concurrently
    /// (further connections queue for a free worker).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Io`] if the address cannot be bound.
    pub fn spawn_with_opts(
        id: ServerId,
        bind_addr: &str,
        handler: Arc<dyn RequestHandler>,
        faults: Option<Arc<crate::fault::FaultPlan>>,
        workers: usize,
    ) -> Result<TcpServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let conns = Arc::new(Mutex::new(Vec::new()));
        let conns2 = conns.clone();
        let pool = Arc::new(WorkerPool::new(
            &format!("swarm-conn-{}", id.raw()),
            workers,
        ));
        let pool2 = pool.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("swarm-server-{}", id.raw()))
            .spawn(move || accept_loop(listener, id, handler, stop2, conns2, faults, &pool2))
            .expect("spawn server accept thread");
        Ok(TcpServer {
            id,
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
            pool: Some(pool),
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Stops accepting new connections, severs established ones, and joins
    /// the accept thread. Like a process exit, in-flight peers see their
    /// sockets close — a client holding a pooled connection must redial.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for stream in self.conns.lock().drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // The accept thread is joined and its pool reference released, so
        // this drop is the last one: it closes the job queue and joins the
        // workers (severing the connections above unblocked any worker
        // parked in a socket read).
        self.pool.take();
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    id: ServerId,
    handler: Arc<dyn RequestHandler>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    faults: Option<Arc<crate::fault::FaultPlan>>,
    pool: &WorkerPool,
) {
    let mut consecutive_errors = 0u32;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(err) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // Back off instead of spinning: a persistent accept failure
                // (fd exhaustion, listener torn down) would otherwise loop
                // at 100% CPU. Past the limit the listener is considered
                // dead and the loop exits cleanly.
                metrics().accept_errors.inc();
                consecutive_errors += 1;
                swarm_metrics::trace!(
                    "net.accept",
                    "server {} accept error ({consecutive_errors} consecutive): {err}",
                    id.raw()
                );
                if consecutive_errors >= ACCEPT_ERROR_LIMIT {
                    swarm_metrics::trace!(
                        "net.accept",
                        "server {} giving up on dead listener",
                        id.raw()
                    );
                    return;
                }
                std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                continue;
            }
        };
        consecutive_errors = 0;
        if stop.load(Ordering::SeqCst) {
            return;
        }
        metrics().server_connections.inc();
        // Keep a handle so shutdown can sever the connection (which also
        // unblocks the worker serving it); closed sockets accumulate only
        // until the next shutdown, and a server's connection count is
        // small (one per pooled client). A connection that cannot be
        // cloned is dropped rather than served unseverable — shutdown
        // must be able to unwedge every worker.
        let Ok(clone) = stream.try_clone() else {
            continue;
        };
        conns.lock().push(clone);
        let handler = handler.clone();
        let faults = faults.clone();
        pool.submit(move || {
            // A failed connection only loses that connection.
            let _ = serve_connection(stream, id, &*handler, faults.as_deref());
        });
    }
}

fn serve_connection(
    stream: TcpStream,
    id: ServerId,
    handler: &dyn RequestHandler,
    faults: Option<&crate::fault::FaultPlan>,
) -> Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Handshake: client id in, server id out.
    let hello = read_frame(&mut reader)?;
    let client = ClientId::decode_all(&hello)?;
    let mut w = ByteWriter::new();
    id.encode(&mut w);
    write_frame(&mut writer, w.as_slice())?;

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(SwarmError::Io(_)) => return Ok(()), // peer hung up
            Err(e) => return Err(e),
        };
        // Shared decode: a Store's payload stays a view of this frame
        // allocation all the way into the fragment store.
        let frame = Bytes::from(frame);
        let m = metrics();
        m.server_requests.inc();
        m.server_bytes_in.add(frame.len() as u64);
        let span = m.server_request_us.span("net.server.request");
        let response = match Request::decode_all_shared(&frame) {
            Ok(request) => handler.handle(client, request),
            Err(e) => Response::from_error(&e),
        };
        drop(span);
        let mut header = ByteWriter::new();
        let payload = response.encode_split(&mut header).unwrap_or(&[]);
        m.server_bytes_out
            .add((header.len() + payload.len()) as u64);
        if faults.is_some_and(|p| p.take_truncate()) {
            // Injected truncation: the request was processed, but only a
            // prefix of the response frame goes out before the connection
            // closes. The client's read fails mid-frame — the ack is lost
            // and a retried store must survive the duplicate.
            let mut full = Vec::new();
            write_frame_vectored(&mut full, header.as_slice(), payload)?;
            use std::io::Write;
            writer.write_all(&full[..full.len() / 2])?;
            writer.flush()?;
            swarm_metrics::trace!(
                "net.fault",
                "server {} truncating response frame ({} of {} bytes)",
                id.raw(),
                full.len() / 2,
                full.len()
            );
            return Ok(());
        }
        write_frame_vectored(&mut writer, header.as_slice(), payload)?;
    }
}

/// Client-side transport over TCP.
///
/// Maps [`ServerId`]s to socket addresses; `connect` dials and performs the
/// handshake. The server set is fixed at construction (plus
/// [`TcpTransport::add_server`]), mirroring the prototype where clients
/// know the cluster membership.
///
/// Connections carry read/write socket timeouts
/// ([`DEFAULT_CALL_TIMEOUT`] unless overridden with
/// [`TcpTransport::set_call_timeout`]), so a hung server surfaces as
/// [`SwarmError::ServerUnavailable`] instead of wedging the caller forever.
#[derive(Debug)]
pub struct TcpTransport {
    servers: Mutex<BTreeMap<ServerId, SocketAddr>>,
    call_timeout: Mutex<Option<Duration>>,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpTransport {
    /// Creates a transport with no servers.
    pub fn new() -> Self {
        TcpTransport {
            servers: Mutex::new(BTreeMap::new()),
            call_timeout: Mutex::new(Some(DEFAULT_CALL_TIMEOUT)),
        }
    }

    /// Creates a transport pointing at the given running servers.
    pub fn with_servers(servers: impl IntoIterator<Item = (ServerId, SocketAddr)>) -> Self {
        TcpTransport {
            servers: Mutex::new(servers.into_iter().collect()),
            call_timeout: Mutex::new(Some(DEFAULT_CALL_TIMEOUT)),
        }
    }

    /// Sets the per-call socket timeout for connections opened after this
    /// call (`None` = block forever, the pre-timeout behaviour).
    pub fn set_call_timeout(&self, timeout: Option<Duration>) {
        *self.call_timeout.lock() = timeout;
    }

    /// The currently configured per-call socket timeout.
    pub fn call_timeout(&self) -> Option<Duration> {
        *self.call_timeout.lock()
    }

    /// Adds (or re-addresses) a server.
    pub fn add_server(&self, id: ServerId, addr: SocketAddr) {
        self.servers.lock().insert(id, addr);
    }

    /// Removes a server from the membership.
    pub fn remove_server(&self, id: ServerId) {
        self.servers.lock().remove(&id);
    }
}

impl Transport for TcpTransport {
    fn connect(&self, server: ServerId, client: ClientId) -> Result<Box<dyn Connection>> {
        let addr = *self
            .servers
            .lock()
            .get(&server)
            .ok_or(SwarmError::ServerUnavailable(server))?;
        // Every connection-setup failure — dial, socket options, stream
        // clone, or a garbled handshake reply — maps to ServerUnavailable
        // so the writer's retry path always engages; only a *successful*
        // handshake with the wrong identity is a protocol error.
        let unavailable = |_| SwarmError::ServerUnavailable(server);
        let stream = TcpStream::connect(addr).map_err(unavailable)?;
        stream.set_nodelay(true).map_err(unavailable)?;
        let timeout = self.call_timeout();
        stream.set_read_timeout(timeout).map_err(unavailable)?;
        stream.set_write_timeout(timeout).map_err(unavailable)?;
        metrics().client_connects.inc();
        swarm_metrics::trace!("net.connect", "client {client} -> server {server}");
        let mut reader = BufReader::new(stream.try_clone().map_err(unavailable)?);
        let mut writer = BufWriter::new(stream);

        // A server that stalls mid-handshake is indistinguishable from a
        // down one: surface frame I/O failures (including the socket
        // timeouts set above) as ServerUnavailable so retry engages.
        let mut w = ByteWriter::new();
        client.encode(&mut w);
        write_frame(&mut writer, w.as_slice())
            .map_err(|_| SwarmError::ServerUnavailable(server))?;
        let ack = read_frame(&mut reader).map_err(|_| SwarmError::ServerUnavailable(server))?;
        let got = ServerId::decode_all(&ack).map_err(|_| SwarmError::ServerUnavailable(server))?;
        if got != server {
            return Err(SwarmError::protocol(format!(
                "handshake: expected server {server}, got {got}"
            )));
        }

        Ok(Box::new(TcpConnection {
            server,
            reader,
            writer,
        }))
    }

    fn servers(&self) -> Vec<ServerId> {
        self.servers.lock().keys().copied().collect()
    }
}

struct TcpConnection {
    server: ServerId,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpConnection {
    /// Ships one `header ++ payload` request frame and reads the reply.
    /// The payload is borrowed all the way to the socket — this function
    /// never copies it.
    fn exchange(&mut self, header: &[u8], payload: &[u8]) -> Result<Response> {
        let m = metrics();
        let span = m.client_call_us.span("net.client.call");
        // Any socket-level failure — including a read/write timeout on a
        // hung server — becomes ServerUnavailable so the log layer's retry
        // and reconnect machinery engages.
        let unavailable = |server| {
            metrics().client_call_errors.inc();
            SwarmError::ServerUnavailable(server)
        };
        write_frame_vectored(&mut self.writer, header, payload)
            .map_err(|_| unavailable(self.server))?;
        m.client_bytes_out
            .add((header.len() + payload.len()) as u64);
        let frame = read_frame(&mut self.reader).map_err(|_| unavailable(self.server))?;
        m.client_bytes_in.add(frame.len() as u64);
        drop(span);
        // Shared decode: Data/Located payloads alias the reply frame.
        Response::decode_all_shared(&Bytes::from(frame))
    }
}

impl Connection for TcpConnection {
    fn call(&mut self, request: &Request) -> Result<Response> {
        let mut header = ByteWriter::new();
        let payload = request.encode_split(&mut header);
        self.exchange(header.as_slice(), payload.unwrap_or(&[]))
    }

    fn call_prepared(&mut self, prepared: &PreparedRequest) -> Result<Response> {
        // The header was encoded when the request was prepared; retries
        // reuse it and the shared payload byte-for-byte.
        self.exchange(prepared.header(), prepared.payload())
    }

    fn server(&self) -> ServerId {
        self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::testing::EchoStore;
    use swarm_types::FragmentId;

    #[test]
    fn tcp_roundtrip() {
        let server = TcpServer::spawn(
            ServerId::new(0),
            "127.0.0.1:0",
            Arc::new(EchoStore::default()),
        )
        .unwrap();
        let transport = TcpTransport::with_servers([(ServerId::new(0), server.addr())]);
        let mut conn = transport
            .connect(ServerId::new(0), ClientId::new(5))
            .unwrap();
        assert_eq!(conn.call(&Request::Ping).unwrap(), Response::Ok);

        let fid = FragmentId::new(ClientId::new(5), 1);
        let data = (0..255u8).collect::<Vec<_>>();
        conn.call(&Request::Store {
            fid,
            marked: true,
            ranges: vec![],
            data: data.clone().into(),
        })
        .unwrap();
        let resp = conn
            .call(&Request::Read {
                fid,
                offset: 10,
                len: 5,
            })
            .unwrap();
        assert_eq!(resp, Response::Data(data[10..15].to_vec().into()));
    }

    #[test]
    fn multiple_clients_share_a_server() {
        let server = TcpServer::spawn(
            ServerId::new(3),
            "127.0.0.1:0",
            Arc::new(EchoStore::default()),
        )
        .unwrap();
        let transport = TcpTransport::with_servers([(ServerId::new(3), server.addr())]);
        let mut handles = Vec::new();
        let transport = Arc::new(transport);
        for c in 0..4u32 {
            let t = transport.clone();
            handles.push(std::thread::spawn(move || {
                let mut conn = t.connect(ServerId::new(3), ClientId::new(c)).unwrap();
                for i in 0..20u64 {
                    let fid = FragmentId::new(ClientId::new(c), i);
                    conn.call(&Request::Store {
                        fid,
                        marked: false,
                        ranges: vec![],
                        data: vec![c as u8; 64].into(),
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn connect_to_stopped_server_is_unavailable() {
        let mut server = TcpServer::spawn(
            ServerId::new(0),
            "127.0.0.1:0",
            Arc::new(EchoStore::default()),
        )
        .unwrap();
        let addr = server.addr();
        server.shutdown();
        drop(server);
        let transport = TcpTransport::with_servers([(ServerId::new(0), addr)]);
        // Either connect fails or the first call does; both surface as
        // ServerUnavailable.
        match transport.connect(ServerId::new(0), ClientId::new(0)) {
            Err(e) => assert!(matches!(e, SwarmError::ServerUnavailable(_)), "{e}"),
            Ok(mut conn) => {
                let err = conn.call(&Request::Ping).unwrap_err();
                assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
            }
        }
    }

    #[test]
    fn unknown_server_id_fails_fast() {
        let transport = TcpTransport::new();
        assert!(transport
            .connect(ServerId::new(1), ClientId::new(0))
            .is_err());
    }

    /// Regression test: a server that accepts the handshake but never
    /// answers a request used to wedge the client forever; with socket
    /// timeouts the call fails as ServerUnavailable within the timeout.
    #[test]
    fn call_times_out_on_hung_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stall = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let _hello = read_frame(&mut reader).unwrap();
            let mut w = ByteWriter::new();
            ServerId::new(9).encode(&mut w);
            write_frame(&mut writer, w.as_slice()).unwrap();
            // Swallow the request and never reply; exit when the client
            // hangs up (the read fails once the connection is dropped).
            let _req = read_frame(&mut reader);
            let _ = read_frame(&mut reader);
        });

        let transport = TcpTransport::with_servers([(ServerId::new(9), addr)]);
        transport.set_call_timeout(Some(Duration::from_millis(200)));
        let mut conn = transport
            .connect(ServerId::new(9), ClientId::new(1))
            .unwrap();
        let start = std::time::Instant::now();
        let err = conn.call(&Request::Ping).unwrap_err();
        assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "hung for {:?} instead of timing out",
            start.elapsed()
        );
        drop(conn);
        stall.join().unwrap();
    }

    /// A peer that completes the dial but sends a garbled handshake ack
    /// must surface as ServerUnavailable (so retry engages), not as a raw
    /// decode error.
    #[test]
    fn garbled_handshake_is_unavailable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let imposter = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let _hello = read_frame(&mut reader).unwrap();
            // Reply with a frame that is not a ServerId encoding.
            write_frame(&mut writer, b"not a server id").unwrap();
        });
        let transport = TcpTransport::with_servers([(ServerId::new(2), addr)]);
        let err = match transport.connect(ServerId::new(2), ClientId::new(1)) {
            Ok(_) => panic!("garbled handshake should fail to connect"),
            Err(err) => err,
        };
        assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
        imposter.join().unwrap();
    }

    /// Large stores arrive intact through the vectored write path and a
    /// prepared request can be replayed on a fresh connection without
    /// re-encoding.
    #[test]
    fn vectored_store_and_prepared_call_roundtrip() {
        let server = TcpServer::spawn(
            ServerId::new(0),
            "127.0.0.1:0",
            Arc::new(EchoStore::default()),
        )
        .unwrap();
        let transport = TcpTransport::with_servers([(ServerId::new(0), server.addr())]);
        let mut conn = transport
            .connect(ServerId::new(0), ClientId::new(5))
            .unwrap();
        let data: Vec<u8> = (0..(256 * 1024u32)).map(|i| (i % 251) as u8).collect();
        let fid = FragmentId::new(ClientId::new(5), 7);
        let prepared = PreparedRequest::new(Request::Store {
            fid,
            marked: false,
            ranges: vec![],
            data: data.clone().into(),
        });
        assert_eq!(conn.call_prepared(&prepared).unwrap(), Response::Ok);
        let resp = conn
            .call(&Request::Read {
                fid,
                offset: 0,
                len: data.len() as u32,
            })
            .unwrap();
        assert_eq!(resp, Response::Data(data.into()));
    }

    /// The configured timeout is observable and `None` restores blocking
    /// semantics for newly opened connections.
    #[test]
    fn call_timeout_is_configurable() {
        let transport = TcpTransport::new();
        assert_eq!(transport.call_timeout(), Some(DEFAULT_CALL_TIMEOUT));
        transport.set_call_timeout(Some(Duration::from_secs(1)));
        assert_eq!(transport.call_timeout(), Some(Duration::from_secs(1)));
        transport.set_call_timeout(None);
        assert_eq!(transport.call_timeout(), None);
    }
}
