//! Deterministic fault injection for both transports.
//!
//! Swarm's headline claim is tolerance of server failures, so the test
//! suite needs to *cause* them precisely: a server that is down, a server
//! that dies after N requests, a connection that drops mid-call, a reply
//! that never arrives. The [`FaultPlan`] expresses those scenarios
//! deterministically (no wall-clock or RNG in the plan itself) so failing
//! tests replay exactly.
//!
//! Three consumers read a plan:
//!
//! * [`crate::MemTransport`] consults its own per-member plans on every
//!   connect and call (the original, mem-only fault path).
//! * [`FaultTransport`] decorates *any* [`Transport`] — including
//!   [`crate::tcp::TcpTransport`] — and applies the same plan semantics
//!   client-side, so one fault schedule replays identically on mem and
//!   TCP.
//! * [`FaultHandler`] wraps a [`RequestHandler`] server-side (disk-full
//!   on store), and [`crate::tcp::TcpServer::spawn_with_faults`] consumes
//!   truncation server-side so a genuinely torn frame crosses a real
//!   socket.
//!
//! ## Fault semantics
//!
//! | fault            | request delivered? | observable error            |
//! |------------------|--------------------|-----------------------------|
//! | down             | no                 | `ServerUnavailable`         |
//! | connection reset | no                 | `ServerUnavailable`, severed|
//! | delay            | yes                | none (slow reply)           |
//! | truncated frame  | **yes**            | `ServerUnavailable`, severed|
//! | disk-full        | yes                | `OutOfSpace` response       |
//!
//! The truncation row is the interesting one: the server processed the
//! request but the ack was lost, so a retried store hits
//! `FragmentExists` — exactly the duplicate-ack-loss case the writer's
//! retry path must treat as success.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use swarm_types::{ClientId, Result, ServerId, SwarmError};

use crate::handler::RequestHandler;
use crate::proto::{PreparedRequest, Request, Response};
use crate::transport::{Connection, Transport};

/// Per-server fault state consulted by [`crate::MemTransport`],
/// [`FaultTransport`], [`FaultHandler`], and the TCP server's truncation
/// hook on every connect and call.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Server refuses connections and calls entirely.
    down: AtomicBool,
    /// Fail calls once this many have been served (u64::MAX = never).
    fail_after: AtomicU64,
    /// Calls served so far (for `fail_after`).
    served: AtomicU64,
    /// Pending connection resets: each one severs a connection *before*
    /// the request is delivered.
    reset_next: AtomicU64,
    /// One-shot delay (microseconds) applied before the next call.
    delay_next_us: AtomicU64,
    /// Pending truncations: the request is processed but the response
    /// frame is cut short and the connection severed (ack lost).
    truncate_next: AtomicU64,
    /// One-shot server-side stall (milliseconds) applied to the next
    /// store: models a wedged disk / journal committer held mid-commit.
    stall_next_ms: AtomicU64,
    /// While set, stores and preallocations fail with `OutOfSpace`.
    disk_full: AtomicBool,
}

fn take_one(counter: &AtomicU64) -> bool {
    counter
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> Self {
        FaultPlan {
            down: AtomicBool::new(false),
            fail_after: AtomicU64::new(u64::MAX),
            served: AtomicU64::new(0),
            reset_next: AtomicU64::new(0),
            delay_next_us: AtomicU64::new(0),
            truncate_next: AtomicU64::new(0),
            stall_next_ms: AtomicU64::new(0),
            disk_full: AtomicBool::new(false),
        }
    }

    /// Marks the server down (or back up).
    pub fn set_down(&self, down: bool) {
        let was = self.down.swap(down, Ordering::SeqCst);
        if down && !was {
            static DOWNS: std::sync::OnceLock<swarm_metrics::Counter> = std::sync::OnceLock::new();
            DOWNS
                .get_or_init(|| swarm_metrics::counter("net.fault.down_transitions"))
                .inc();
            swarm_metrics::trace!("net.fault", "server marked down");
        }
    }

    /// Is the server currently down?
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Makes the server fail permanently after serving `n` more calls
    /// (counting from now).
    pub fn fail_after(&self, n: u64) {
        let served = self.served.load(Ordering::SeqCst);
        self.fail_after
            .store(served.saturating_add(n), Ordering::SeqCst);
    }

    /// Schedules `n` connection resets: each severs a connection before
    /// the request reaches the server (the request is *not* processed).
    pub fn inject_reset(&self, n: u64) {
        self.reset_next.fetch_add(n, Ordering::SeqCst);
    }

    /// Consumes one pending reset, if any.
    pub fn take_reset(&self) -> bool {
        take_one(&self.reset_next)
    }

    /// Delays the next call by `micros` microseconds (one-shot).
    pub fn inject_delay_us(&self, micros: u64) {
        self.delay_next_us.store(micros, Ordering::SeqCst);
    }

    /// Consumes the pending delay, returning it (0 = none).
    pub fn take_delay_us(&self) -> u64 {
        self.delay_next_us.swap(0, Ordering::SeqCst)
    }

    /// Schedules `n` response truncations: the request *is* processed,
    /// but the reply frame is cut short and the connection severed, so
    /// the client never sees the ack.
    pub fn inject_truncate(&self, n: u64) {
        self.truncate_next.fetch_add(n, Ordering::SeqCst);
    }

    /// Consumes one pending truncation, if any.
    pub fn take_truncate(&self) -> bool {
        take_one(&self.truncate_next)
    }

    /// Stalls the next store for `millis` milliseconds server-side
    /// (one-shot): [`FaultHandler`] sleeps *before* delegating, modelling
    /// a journal committer held mid-commit. With group commit, stores
    /// queued behind the stalled one must still commit exactly once —
    /// late, not lost.
    pub fn inject_stall_ms(&self, millis: u64) {
        self.stall_next_ms.store(millis, Ordering::SeqCst);
    }

    /// Consumes the pending server-side stall, returning it (0 = none).
    pub fn take_stall_ms(&self) -> u64 {
        self.stall_next_ms.swap(0, Ordering::SeqCst)
    }

    /// Simulates a full (or freed) disk: while set, [`FaultHandler`]
    /// rejects stores and preallocations with [`SwarmError::OutOfSpace`].
    pub fn set_disk_full(&self, full: bool) {
        self.disk_full.store(full, Ordering::SeqCst);
    }

    /// Is the injected disk-full condition active?
    pub fn is_disk_full(&self) -> bool {
        self.disk_full.load(Ordering::SeqCst)
    }

    /// Clears pending one-shot injections (resets, delay, truncations)
    /// without touching down / fail-after / disk-full state. Chaos
    /// schedules call this at quiesce points so unconsumed transients
    /// cannot leak into verification.
    pub fn clear_transients(&self) {
        self.reset_next.store(0, Ordering::SeqCst);
        self.delay_next_us.store(0, Ordering::SeqCst);
        self.truncate_next.store(0, Ordering::SeqCst);
        self.stall_next_ms.store(0, Ordering::SeqCst);
    }

    /// Clears every fault: scheduled failures, transients, and disk-full.
    pub fn clear(&self) {
        self.set_down(false);
        self.fail_after.store(u64::MAX, Ordering::SeqCst);
        self.set_disk_full(false);
        self.clear_transients();
    }

    /// Records one attempted call; returns `true` if it should fail.
    pub fn on_call(&self) -> bool {
        if self.is_down() {
            return true;
        }
        let served = self.served.fetch_add(1, Ordering::SeqCst);
        if served >= self.fail_after.load(Ordering::SeqCst) {
            self.down.store(true, Ordering::SeqCst);
            true
        } else {
            false
        }
    }
}

/// A fault-injecting decorator over any [`Transport`].
///
/// Holds one [`FaultPlan`] per server (created on demand) and applies it
/// client-side on every connect and call, so the same fault schedule
/// drives [`crate::MemTransport`] and [`crate::tcp::TcpTransport`]
/// identically. Server-side faults (disk-full, TCP frame truncation) share
/// the same plan objects via [`FaultTransport::plan`].
pub struct FaultTransport {
    inner: Arc<dyn Transport>,
    plans: RwLock<BTreeMap<ServerId, Arc<FaultPlan>>>,
    /// When true (the default), pending truncations are consumed
    /// client-side: the inner call completes (request processed) and the
    /// response is discarded. A TCP cluster whose servers were spawned
    /// with [`crate::tcp::TcpServer::spawn_with_faults`] disables this so
    /// the truncation happens at the socket, byte-for-byte.
    client_truncation: AtomicBool,
}

impl std::fmt::Debug for FaultTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultTransport")
            .field("servers", &self.plans.read().keys().collect::<Vec<_>>())
            .finish()
    }
}

impl FaultTransport {
    /// Wraps `inner` with an empty fault registry.
    pub fn new(inner: Arc<dyn Transport>) -> FaultTransport {
        FaultTransport {
            inner,
            plans: RwLock::new(BTreeMap::new()),
            client_truncation: AtomicBool::new(true),
        }
    }

    /// Chooses where truncation faults are consumed (see the field docs on
    /// the type). Affects connections opened after the call.
    pub fn set_client_truncation(&self, on: bool) {
        self.client_truncation.store(on, Ordering::SeqCst);
    }

    /// The fault plan for `server`, created on first use. The same `Arc`
    /// may be shared with a server-side [`FaultHandler`] or
    /// [`crate::tcp::TcpServer::spawn_with_faults`].
    pub fn plan(&self, server: ServerId) -> Arc<FaultPlan> {
        if let Some(plan) = self.plans.read().get(&server) {
            return plan.clone();
        }
        self.plans
            .write()
            .entry(server)
            .or_insert_with(|| Arc::new(FaultPlan::new()))
            .clone()
    }

    /// Clears every registered plan completely.
    pub fn clear_all(&self) {
        for plan in self.plans.read().values() {
            plan.clear();
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &Arc<dyn Transport> {
        &self.inner
    }
}

impl Transport for FaultTransport {
    fn connect(&self, server: ServerId, client: ClientId) -> Result<Box<dyn Connection>> {
        let plan = self.plan(server);
        if plan.is_down() {
            return Err(SwarmError::ServerUnavailable(server));
        }
        let inner = self.inner.connect(server, client)?;
        Ok(Box::new(FaultConnection {
            server,
            plan,
            inner: Some(inner),
            client_truncation: self.client_truncation.load(Ordering::SeqCst),
        }))
    }

    fn servers(&self) -> Vec<ServerId> {
        self.inner.servers()
    }
}

struct FaultConnection {
    server: ServerId,
    plan: Arc<FaultPlan>,
    /// `None` after an injected sever — like a dead socket, every
    /// subsequent call on this connection fails until the caller redials.
    inner: Option<Box<dyn Connection>>,
    client_truncation: bool,
}

impl FaultConnection {
    fn exchange(
        &mut self,
        f: impl FnOnce(&mut Box<dyn Connection>) -> Result<Response>,
    ) -> Result<Response> {
        if self.plan.on_call() {
            self.inner = None;
            return Err(SwarmError::ServerUnavailable(self.server));
        }
        if self.plan.take_reset() {
            // Severed before the request left: the server never sees it.
            self.inner = None;
            swarm_metrics::trace!("net.fault", "injected reset to server {}", self.server);
            return Err(SwarmError::ServerUnavailable(self.server));
        }
        let delay = self.plan.take_delay_us();
        if delay > 0 {
            std::thread::sleep(Duration::from_micros(delay));
        }
        let Some(inner) = self.inner.as_mut() else {
            return Err(SwarmError::ServerUnavailable(self.server));
        };
        if self.client_truncation && self.plan.take_truncate() {
            // The request is delivered and processed; the ack is lost and
            // the connection severed — the duplicate-store case.
            let _ = f(inner);
            self.inner = None;
            swarm_metrics::trace!(
                "net.fault",
                "injected truncation from server {}",
                self.server
            );
            return Err(SwarmError::ServerUnavailable(self.server));
        }
        f(inner)
    }
}

impl Connection for FaultConnection {
    fn call(&mut self, request: &Request) -> Result<Response> {
        self.exchange(|c| c.call(request))
    }

    fn call_prepared(&mut self, prepared: &PreparedRequest) -> Result<Response> {
        self.exchange(|c| c.call_prepared(prepared))
    }

    fn server(&self) -> ServerId {
        self.server
    }
}

/// A server-side [`RequestHandler`] decorator driven by the same
/// [`FaultPlan`]: while [`FaultPlan::set_disk_full`] is active, `Store`
/// and `Preallocate` requests fail with [`SwarmError::OutOfSpace`] —
/// exercising the client's non-retryable store-error path on both
/// transports without filling a real disk.
pub struct FaultHandler {
    inner: Arc<dyn RequestHandler>,
    plan: Arc<FaultPlan>,
}

impl FaultHandler {
    /// Wraps `inner`, consulting `plan` on every request.
    pub fn new(inner: Arc<dyn RequestHandler>, plan: Arc<FaultPlan>) -> FaultHandler {
        FaultHandler { inner, plan }
    }
}

impl RequestHandler for FaultHandler {
    fn handle(&self, client: ClientId, request: Request) -> Response {
        if self.plan.is_disk_full()
            && matches!(request, Request::Store { .. } | Request::Preallocate { .. })
        {
            return Response::from_error(&SwarmError::OutOfSpace("injected disk-full".to_string()));
        }
        if matches!(request, Request::Store { .. }) {
            let stall = self.plan.take_stall_ms();
            if stall > 0 {
                swarm_metrics::trace!("net.fault", "injected store stall of {stall}ms");
                std::thread::sleep(Duration::from_millis(stall));
            }
        }
        self.inner.handle(client, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plan_never_fails() {
        let plan = FaultPlan::new();
        for _ in 0..1000 {
            assert!(!plan.on_call());
        }
    }

    #[test]
    fn down_fails_immediately_and_recovers() {
        let plan = FaultPlan::new();
        plan.set_down(true);
        assert!(plan.on_call());
        plan.set_down(false);
        assert!(!plan.on_call());
    }

    #[test]
    fn fail_after_counts_calls() {
        let plan = FaultPlan::new();
        plan.fail_after(3);
        assert!(!plan.on_call());
        assert!(!plan.on_call());
        assert!(!plan.on_call());
        assert!(plan.on_call());
        // …and stays down.
        assert!(plan.is_down());
        assert!(plan.on_call());
    }

    #[test]
    fn clear_resets_everything() {
        let plan = FaultPlan::new();
        plan.fail_after(0);
        assert!(plan.on_call());
        plan.clear();
        assert!(!plan.on_call());
    }

    #[test]
    fn one_shot_injections_are_counted() {
        let plan = FaultPlan::new();
        assert!(!plan.take_reset());
        plan.inject_reset(2);
        assert!(plan.take_reset());
        assert!(plan.take_reset());
        assert!(!plan.take_reset());

        plan.inject_truncate(1);
        assert!(plan.take_truncate());
        assert!(!plan.take_truncate());

        plan.inject_delay_us(500);
        assert_eq!(plan.take_delay_us(), 500);
        assert_eq!(plan.take_delay_us(), 0);

        plan.inject_stall_ms(25);
        assert_eq!(plan.take_stall_ms(), 25);
        assert_eq!(plan.take_stall_ms(), 0);
    }

    #[test]
    fn clear_transients_leaves_persistent_state() {
        let plan = FaultPlan::new();
        plan.inject_reset(3);
        plan.inject_truncate(3);
        plan.inject_delay_us(1000);
        plan.inject_stall_ms(40);
        plan.set_disk_full(true);
        plan.clear_transients();
        assert!(!plan.take_reset());
        assert!(!plan.take_truncate());
        assert_eq!(plan.take_delay_us(), 0);
        assert_eq!(plan.take_stall_ms(), 0);
        assert!(plan.is_disk_full(), "disk-full is not a transient");
        plan.clear();
        assert!(!plan.is_disk_full());
    }
}
