//! Deterministic fault injection for the in-memory transport.
//!
//! Swarm's headline claim is tolerance of server failures, so the test
//! suite needs to *cause* them precisely: a server that is down, a server
//! that dies after N requests, a connection that drops mid-call. The
//! [`FaultPlan`] expresses those scenarios deterministically (no wall-clock
//! or RNG in the plan itself) so failing tests replay exactly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Per-server fault state consulted by [`crate::MemTransport`] on every
/// connect and call.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Server refuses connections and calls entirely.
    down: AtomicBool,
    /// Fail calls once this many have been served (u64::MAX = never).
    fail_after: AtomicU64,
    /// Calls served so far (for `fail_after`).
    served: AtomicU64,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> Self {
        FaultPlan {
            down: AtomicBool::new(false),
            fail_after: AtomicU64::new(u64::MAX),
            served: AtomicU64::new(0),
        }
    }

    /// Marks the server down (or back up).
    pub fn set_down(&self, down: bool) {
        let was = self.down.swap(down, Ordering::SeqCst);
        if down && !was {
            static DOWNS: std::sync::OnceLock<swarm_metrics::Counter> = std::sync::OnceLock::new();
            DOWNS
                .get_or_init(|| swarm_metrics::counter("net.fault.down_transitions"))
                .inc();
            swarm_metrics::trace!("net.fault", "server marked down");
        }
    }

    /// Is the server currently down?
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Makes the server fail permanently after serving `n` more calls
    /// (counting from now).
    pub fn fail_after(&self, n: u64) {
        let served = self.served.load(Ordering::SeqCst);
        self.fail_after
            .store(served.saturating_add(n), Ordering::SeqCst);
    }

    /// Clears any scheduled failure.
    pub fn clear(&self) {
        self.set_down(false);
        self.fail_after.store(u64::MAX, Ordering::SeqCst);
    }

    /// Records one attempted call; returns `true` if it should fail.
    pub fn on_call(&self) -> bool {
        if self.is_down() {
            return true;
        }
        let served = self.served.fetch_add(1, Ordering::SeqCst);
        if served >= self.fail_after.load(Ordering::SeqCst) {
            self.down.store(true, Ordering::SeqCst);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plan_never_fails() {
        let plan = FaultPlan::new();
        for _ in 0..1000 {
            assert!(!plan.on_call());
        }
    }

    #[test]
    fn down_fails_immediately_and_recovers() {
        let plan = FaultPlan::new();
        plan.set_down(true);
        assert!(plan.on_call());
        plan.set_down(false);
        assert!(!plan.on_call());
    }

    #[test]
    fn fail_after_counts_calls() {
        let plan = FaultPlan::new();
        plan.fail_after(3);
        assert!(!plan.on_call());
        assert!(!plan.on_call());
        assert!(!plan.on_call());
        assert!(plan.on_call());
        // …and stays down.
        assert!(plan.is_down());
        assert!(plan.on_call());
    }

    #[test]
    fn clear_resets_everything() {
        let plan = FaultPlan::new();
        plan.fail_after(0);
        assert!(plan.on_call());
        plan.clear();
        assert!(!plan.on_call());
    }
}
