//! Bounded worker pool for serving connections.
//!
//! The original server spawned one OS thread per accepted connection —
//! unbounded: a burst of clients (or a misbehaving one redialing in a
//! loop) could exhaust threads and memory. [`WorkerPool`] caps server-side
//! concurrency at a fixed number of eagerly spawned workers; accepted
//! connections become jobs on an unbounded queue and wait for a free
//! worker. Requests from different connections execute truly concurrently
//! up to the pool width — which is what the sharded store and journal
//! group commit in `swarm-server` are built to exploit.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Default number of workers when the caller does not specify one.
pub const DEFAULT_WORKERS: usize = 16;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-width pool of job-running threads.
///
/// Jobs are queued unbounded and executed FIFO by the first free worker.
/// Dropping the pool closes the queue and joins every worker after it
/// finishes its current job — callers that need prompt shutdown must
/// arrange for in-flight jobs to terminate (the TCP server severs its
/// connections first, which unblocks workers parked in socket reads).
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads (clamped to at least 1) named
    /// `{name}-{i}`.
    pub fn new(name: &str, workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (sender, receiver) = std::sync::mpsc::channel::<Job>();
        // std's Receiver is single-consumer; sharing it behind a mutex
        // gives the multi-consumer queue (a worker holds the lock only to
        // dequeue, never while running a job).
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let receiver = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers: handles,
        }
    }

    /// Enqueues a job; the first free worker runs it. Returns `false` if
    /// the pool is already shut down (the job is dropped).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.sender {
            Some(s) => s.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// Number of worker threads.
    pub fn width(&self) -> usize {
        self.workers.len()
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Holding the queue lock only across recv keeps dequeue FIFO and
        // lets other workers pull the next job while this one runs.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a worker panicked holding the lock
        };
        match job {
            Ok(job) => {
                // A panicking job must not kill the worker: on a width-N
                // pool, N poisoned connections would silently stop the
                // server accepting work forever. Contain the unwind, count
                // it, and move on to the next job.
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                    swarm_metrics::counter("net.workpool_panics").inc();
                    swarm_metrics::trace!("net.workpool", "job panicked; worker continues");
                }
            }
            Err(_) => return, // queue closed: pool shut down
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes every idle worker with Err; busy ones
        // exit after their current job.
        drop(self.sender.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_job() {
        let pool = WorkerPool::new("test-pool", 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = done.clone();
            assert!(pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // joins workers, so all jobs have run
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_beyond_width_queue_instead_of_spawning() {
        let pool = WorkerPool::new("test-queue", 2);
        assert_eq!(pool.width(), 2);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let running = running.clone();
            let peak = peak.clone();
            pool.submit(move || {
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(10));
                running.fetch_sub(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "ran {} jobs at once on a width-2 pool",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        // Width 1: if the panic killed the worker, no later job could run.
        let pool = WorkerPool::new("test-panic", 1);
        let panics_before = swarm_metrics::snapshot().counter("net.workpool_panics");
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..6 {
            let done = done.clone();
            pool.submit(move || {
                if i % 2 == 0 {
                    panic!("poisoned job {i}");
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins the worker, so every job has been attempted
        assert_eq!(
            done.load(Ordering::SeqCst),
            3,
            "jobs after a panic must still run"
        );
        let panics_after = swarm_metrics::snapshot().counter("net.workpool_panics");
        assert_eq!(panics_after - panics_before, 3, "each panic is counted");
    }

    #[test]
    fn zero_width_is_clamped_to_one() {
        let pool = WorkerPool::new("test-clamp", 0);
        assert_eq!(pool.width(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        pool.submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
