//! Property-based equivalence of Sting against a reference model under
//! arbitrary operation sequences — including across a crash+recovery
//! boundary and with a server failure at verification time.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use sting::{StingConfig, StingFs, StingService};
use swarm_log::{recover, Log, LogConfig};
use swarm_net::MemTransport;
use swarm_server::{MemStore, StorageServer};
use swarm_services::Service;
use swarm_types::{ClientId, ServerId, ServiceId};

const STING_SVC: ServiceId = ServiceId::new(2);

fn cluster(n: u32) -> Arc<MemTransport> {
    let transport = Arc::new(MemTransport::new());
    for i in 0..n {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    transport
}

fn log_config() -> LogConfig {
    LogConfig::new(ClientId::new(1), (0..3).map(ServerId::new).collect())
        .unwrap()
        .fragment_size(16 * 1024)
}

fn sting_config() -> StingConfig {
    StingConfig {
        service: STING_SVC,
        block_size: 1024, // small blocks exercise multi-block paths
        cache_blocks: 8,
    }
}

#[derive(Debug, Clone)]
enum FsAction {
    Write {
        file: u8,
        offset: u16,
        byte: u8,
        len: u16,
    },
    Truncate {
        file: u8,
        size: u16,
    },
    Unlink {
        file: u8,
    },
    Rename {
        from: u8,
        to: u8,
    },
    Checkpoint,
}

fn action_strategy() -> impl Strategy<Value = FsAction> {
    prop_oneof![
        5 => (0u8..6, 0u16..8000, any::<u8>(), 1u16..3000)
            .prop_map(|(file, offset, byte, len)| FsAction::Write { file, offset, byte, len }),
        2 => (0u8..6, 0u16..8000).prop_map(|(file, size)| FsAction::Truncate { file, size }),
        1 => (0u8..6).prop_map(|file| FsAction::Unlink { file }),
        1 => (0u8..6, 0u8..6).prop_map(|(from, to)| FsAction::Rename { from, to }),
        1 => Just(FsAction::Checkpoint),
    ]
}

fn path(file: u8) -> String {
    format!("/p{file}")
}

fn apply_model(model: &mut BTreeMap<String, Vec<u8>>, action: &FsAction) {
    match action {
        FsAction::Write {
            file,
            offset,
            byte,
            len,
        } => {
            let f = model.entry(path(*file)).or_default();
            let end = *offset as usize + *len as usize;
            if f.len() < end {
                f.resize(end, 0);
            }
            f[*offset as usize..end].fill(*byte);
        }
        FsAction::Truncate { file, size } => {
            if let Some(f) = model.get_mut(&path(*file)) {
                f.resize(*size as usize, 0);
            }
        }
        FsAction::Unlink { file } => {
            model.remove(&path(*file));
        }
        FsAction::Rename { from, to } => {
            if from != to {
                if let Some(content) = model.remove(&path(*from)) {
                    model.insert(path(*to), content);
                }
            }
        }
        FsAction::Checkpoint => {}
    }
}

fn apply_fs(fs: &StingFs, model: &BTreeMap<String, Vec<u8>>, action: &FsAction) {
    match action {
        FsAction::Write {
            file,
            offset,
            byte,
            len,
        } => {
            fs.write_file(&path(*file), *offset as u64, &vec![*byte; *len as usize])
                .unwrap();
        }
        FsAction::Truncate { file, size } => {
            if model.contains_key(&path(*file)) {
                fs.truncate(&path(*file), *size as u64).unwrap();
            }
        }
        FsAction::Unlink { file } => {
            if model.contains_key(&path(*file)) {
                fs.unlink(&path(*file)).unwrap();
            }
        }
        FsAction::Rename { from, to } => {
            if from != to && model.contains_key(&path(*from)) {
                fs.rename(&path(*from), &path(*to)).unwrap();
            }
        }
        FsAction::Checkpoint => fs.checkpoint().unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_sting_matches_model_across_crash_and_server_failure(
        actions in proptest::collection::vec(action_strategy(), 1..35),
        dead in 0u32..3,
    ) {
        let transport = cluster(3);
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        {
            let log = Arc::new(Log::create(transport.clone(), log_config()).unwrap());
            let fs = StingFs::format(log, sting_config()).unwrap();
            for action in &actions {
                // Model order matters: check preconditions against the
                // model *before* applying to it.
                apply_fs(&fs, &model, action);
                apply_model(&mut model, action);
            }
            fs.flush().unwrap();
        }

        // Crash + recover.
        let (log, replay) = recover(transport.clone(), log_config(), &[STING_SVC]).unwrap();
        let fs = StingFs::bare(Arc::new(log), sting_config());
        let mut svc = StingService::new(fs.clone());
        if let Some(c) = replay.checkpoint_data(STING_SVC) {
            svc.restore_checkpoint(c).unwrap();
        }
        for e in replay.records_for(STING_SVC) {
            svc.replay(e).unwrap();
        }

        // Verify with one server dead.
        transport.set_down(ServerId::new(dead), true);
        for file in 0..6u8 {
            let p = path(file);
            match model.get(&p) {
                None => prop_assert!(!fs.exists(&p), "{p} should not exist"),
                Some(want) => {
                    let got = fs.read_to_end(&p).unwrap();
                    prop_assert_eq!(&got, want, "{} mismatch", p);
                }
            }
        }
    }
}
